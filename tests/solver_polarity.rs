//! Properties of the constraint solver and the coverage-guided
//! campaign built on it.
//!
//! 1. **Witness soundness** — whenever the solver claims a witness for
//!    a `(constraint, polarity)` target, evaluating the constraint on
//!    that witness through `Constraint::evaluate` produces exactly the
//!    requested polarity (boundary witnesses additionally sit on a
//!    finite range bound).
//! 2. **Determinism** — the witness set and every solved config are
//!    stable across solver instances.
//! 3. **Campaign coverage** — a solver-seeded campaign reaches 100% of
//!    the achievable polarity universe on the full 64-dependency set,
//!    which the legacy dependency-aware generator does not.

use std::collections::BTreeSet;

use confdep_suite::confdep::{
    extract_scenario, models, ConstraintSet, ExtractOptions, Polarity, Solver, Verdict,
};
use confdep_suite::contools::fuzz::{fuzz_campaign, FuzzOptions, PolarityCoverage, Strategy};
use confdep_suite::contools::ConBugCk;

fn compiled() -> ConstraintSet {
    let deps = extract_scenario(&models::all(), ExtractOptions::default())
        .expect("extraction succeeds on the bundled models");
    ConstraintSet::compile(deps)
}

/// Every witness the solver produces evaluates to the polarity it was
/// solved for, through the same `Constraint::evaluate` the checkers use.
#[test]
fn every_witness_evaluates_to_its_polarity() {
    let set = compiled();
    let solver = Solver::new(&set);
    let witnesses = solver.witness_targets();
    assert!(
        witnesses.len() >= 60,
        "achievable universe collapsed: {} targets",
        witnesses.len()
    );
    for (idx, polarity, witness) in &witnesses {
        let constraint = &solver.constraints().constraints()[*idx];
        let verdict = constraint.evaluate(&[&witness.mkfs, &witness.mount]);
        match polarity {
            Polarity::Satisfy => assert_eq!(
                verdict,
                Verdict::Satisfied,
                "satisfy witness for {} evaluates to {verdict:?}",
                constraint.signature()
            ),
            Polarity::Violate => assert_eq!(
                verdict,
                Verdict::Violated,
                "violate witness for {} evaluates to {verdict:?}",
                constraint.signature()
            ),
            Polarity::Boundary => {
                assert_eq!(
                    verdict,
                    Verdict::Satisfied,
                    "boundary witness for {} evaluates to {verdict:?}",
                    constraint.signature()
                );
                assert!(
                    solver.hits(constraint, Polarity::Boundary, &witness.mkfs, &witness.mount),
                    "boundary witness for {} is not on a finite bound",
                    constraint.signature()
                );
            }
        }
        // the solver's own verification agrees with the direct check
        assert!(solver.hits(constraint, *polarity, &witness.mkfs, &witness.mount));
        // and the witness is renderable into real invocations
        assert!(
            witness.render().is_some(),
            "witness for {} {polarity} does not render",
            constraint.signature()
        );
    }
}

/// Per-signature solving agrees with the witness enumeration: every
/// enumerated target is individually solvable, and a solved config for
/// it hits the same polarity.
#[test]
fn solve_signature_covers_the_enumerated_universe() {
    let set = compiled();
    let solver = Solver::new(&set);
    for (idx, polarity, _) in solver.witness_targets() {
        let constraint = &solver.constraints().constraints()[idx];
        let solved = solver
            .solve_signature(constraint.signature(), polarity)
            .unwrap_or_else(|| {
                panic!("{} {polarity} enumerated but not solvable", constraint.signature())
            });
        assert!(solver.hits(constraint, polarity, &solved.mkfs, &solved.mount));
    }
}

/// The witness set is deterministic across solver instances.
#[test]
fn witnesses_are_deterministic() {
    let set = compiled();
    let a: Vec<_> = Solver::new(&set)
        .witness_targets()
        .into_iter()
        .map(|(i, p, w)| (i, p, w.mkfs.canonical_key(), w.mount.canonical_key()))
        .collect();
    let b: Vec<_> = Solver::new(&set)
        .witness_targets()
        .into_iter()
        .map(|(i, p, w)| (i, p, w.mkfs.canonical_key(), w.mount.canonical_key()))
        .collect();
    assert_eq!(a, b);
}

/// A solver-seeded campaign covers the full achievable universe on the
/// 64-dependency set; the legacy dependency-aware stream alone does not
/// come close — coverage is what the solver buys.
#[test]
fn solver_campaign_reaches_full_polarity_coverage() {
    let set = compiled();
    let opts = FuzzOptions {
        seed: 7,
        rounds: 2,
        batch: 16,
        threads: 1,
        strategy: Strategy::Solver,
        store_path: None,
    };
    let outcome = fuzz_campaign(&set, &opts);
    assert_eq!(
        outcome.report.coverage_covered, outcome.report.coverage_universe,
        "solver campaign missed achievable targets"
    );
    assert!(outcome.report.coverage_universe >= 60);

    // legacy baseline: run the aware generator's stream through the
    // same coverage tracker
    let solver = Solver::new(&set);
    let mut coverage = PolarityCoverage::new(&solver);
    let mut aware = ConBugCk::new(7).expect("generator initialises");
    let mut seen = BTreeSet::new();
    for cfg in aware.generate(outcome.report.generated) {
        if seen.insert(cfg.state_id()) {
            coverage.observe(&solver, &cfg);
        }
    }
    assert!(
        coverage.covered() < outcome.report.coverage_universe / 2,
        "the aware generator unexpectedly covers {} of {} targets",
        coverage.covered(),
        outcome.report.coverage_universe
    );
}

/// The campaign's verdict stream is deterministic in (seed, rounds,
/// batch) and invariant in the worker count.
#[test]
fn campaign_verdicts_are_thread_invariant() {
    let set = compiled();
    let base = FuzzOptions {
        seed: 11,
        rounds: 2,
        batch: 12,
        threads: 1,
        strategy: Strategy::Solver,
        store_path: None,
    };
    let one = fuzz_campaign(&set, &base);
    let four = fuzz_campaign(&set, &FuzzOptions { threads: 4, ..base.clone() });
    assert_eq!(one.verdicts, four.verdicts);
    assert!(one.report.same_verdicts(&four.report));
}
