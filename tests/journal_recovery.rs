//! End-to-end journal crash-consistency: a metadata update committed to
//! the journal but never checkpointed (power loss) is recovered by
//! replay at the next mount.

use confdep_suite::blockdev::MemDevice;
use confdep_suite::e2fstools::{E2fsck, FsckMode, Mke2fs};
use confdep_suite::ext4sim::{Ext4Fs, InodeNo, MountOptions};

fn journalled_image() -> MemDevice {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/j", "12288"]).unwrap();
    m.run(MemDevice::new(1024, 16384)).unwrap().0
}

#[test]
fn fresh_image_has_a_formatted_journal() {
    let fs = Ext4Fs::mount(journalled_image(), &MountOptions::read_only()).unwrap();
    let region = fs.journal_region().unwrap().expect("journal present");
    assert!(region.len() >= 256, "journal has {} blocks", region.len());
    // the journal superblock carries the jbd2 magic
    let raw = {
        use confdep_suite::blockdev::BlockDevice;
        fs.device().read_block_vec(region[0]).unwrap()
    };
    assert_eq!(
        u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]),
        confdep_suite::ext4sim::JBD_MAGIC
    );
}

#[test]
fn crash_between_commit_and_checkpoint_is_recovered() {
    // mount rw and make changes that alter the free counts
    let mut fs = Ext4Fs::mount(journalled_image(), &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    let f = fs.create_file(root, "precious").unwrap();
    fs.write_file(f, 0, &[0x77; 5000]).unwrap();
    let free_after_write = fs.statfs().1;

    // power fails right after the journal commit: the home superblock /
    // GDT never see the update
    fs.set_crash_after_journal_commit(true);
    let dev = match fs.unmount() {
        Ok(d) => d,
        Err(_) => panic!("journal commit must succeed"),
    };

    // the on-disk (home) superblock still carries the stale counts, but
    // mounting replays the journal and recovers the committed state
    let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    assert_eq!(fs.statfs().1, free_after_write, "replay must recover the free count");
    let e = fs.lookup(fs.root_inode(), "precious").unwrap().expect("file present");
    assert_eq!(fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), vec![0x77; 5000]);

    // and the image is fully consistent afterwards
    let dev = fs.unmount().unwrap();
    let (_, res) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(res.exit_code, 0, "{:?}", res.report.inconsistencies);
}

#[test]
fn noload_skips_replay() {
    // same crash, but a noload mount must NOT replay (and therefore
    // requires ro on the dirty image)
    let mut fs = Ext4Fs::mount(journalled_image(), &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    fs.create_file(root, "x").unwrap();
    // what the home superblock says before the flush
    let stale_free = fs.statfs().1;
    fs.set_crash_after_journal_commit(true);
    let dev = fs.unmount().unwrap();
    let opts = MountOptions { noload: true, read_only: true, ..MountOptions::default() };
    let fs = Ext4Fs::mount(dev, &opts).unwrap();
    // without replay the in-memory state comes from the stale home copy;
    // the counts differ from the journalled truth only through the flush,
    // so simply assert the mount worked and the journal is untouched
    let region = fs.journal_region().unwrap().expect("journal present");
    assert!(!region.is_empty());
    let _ = stale_free;
}

#[test]
fn replay_is_idempotent_across_mounts() {
    let mut fs = Ext4Fs::mount(journalled_image(), &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    fs.create_file(root, "once").unwrap();
    fs.set_crash_after_journal_commit(true);
    let dev = fs.unmount().unwrap();
    // first mount replays
    let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let free1 = fs.statfs().1;
    let dev = fs.unmount().unwrap();
    // second mount: nothing left to replay, same state
    let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    assert_eq!(fs.statfs().1, free1);
}

#[test]
fn no_journal_fs_mounts_without_replay() {
    let m = Mke2fs::from_args(&["-b", "1024", "-O", "^has_journal", "/dev/j", "12288"]).unwrap();
    let dev = m.run(MemDevice::new(1024, 16384)).unwrap().0;
    let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    assert!(fs.journal_region().unwrap().is_none());
}

#[test]
fn e2fsck_replays_the_journal_before_checking() {
    // crash after commit: the home metadata is stale
    let mut fs = Ext4Fs::mount(journalled_image(), &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    fs.create_file(root, "via-fsck").unwrap();
    fs.set_crash_after_journal_commit(true);
    let dev = fs.unmount().unwrap();
    // e2fsck -y recovers via the journal, like the real tool
    let (dev, res) = E2fsck::with_mode(FsckMode::Fix).forced().run(dev).unwrap();
    assert!(res.exit_code <= 1, "{:?}", res.report.inconsistencies);
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    assert!(fs.lookup(fs.root_inode(), "via-fsck").unwrap().is_some());
}

#[test]
fn check_only_mode_does_not_replay() {
    let mut fs = Ext4Fs::mount(journalled_image(), &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    fs.create_file(root, "pending").unwrap();
    fs.set_crash_after_journal_commit(true);
    let dev = fs.unmount().unwrap();
    let before = dev.clone();
    let (after, _) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    // -n must leave every block untouched (no replay, no repair)
    use confdep_suite::blockdev::BlockDevice;
    for b in 0..before.num_blocks() {
        let mut x = vec![0u8; 1024];
        let mut y = vec![0u8; 1024];
        before.read_block(b, &mut x).unwrap();
        after.read_block(b, &mut y).unwrap();
        assert_eq!(x, y, "block {b} modified by -n run");
    }
}
