//! Property-based tests (proptest) on the core data structures and on
//! whole-filesystem behaviour against reference models.

use std::collections::BTreeMap;

use proptest::prelude::*;

use confdep_suite::blockdev::MemDevice;
use confdep_suite::e2fstools::Resize2fs;
use confdep_suite::ext4sim::{
    check_image, Bitmap, Ext4Fs, ExtentTree, Inode, MkfsParams, MountOptions, Superblock,
};

// ---------------------------------------------------------------------
// bitmap vs a reference set
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BitOp {
    Set(u32),
    Clear(u32),
}

fn bit_ops(len: u32) -> impl Strategy<Value = Vec<BitOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..len).prop_map(BitOp::Set),
            (0..len).prop_map(BitOp::Clear),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn bitmap_matches_reference_set(ops in bit_ops(256)) {
        let mut bm = Bitmap::new(256, 32);
        let mut model = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                BitOp::Set(i) => {
                    let prev = bm.set(i);
                    prop_assert_eq!(prev, !model.insert(i));
                }
                BitOp::Clear(i) => {
                    let prev = bm.clear(i);
                    prop_assert_eq!(prev, model.remove(&i));
                }
            }
        }
        prop_assert_eq!(bm.count_set() as usize, model.len());
        for i in 0..256u32 {
            prop_assert_eq!(bm.get(i), model.contains(&i));
        }
        // round trip through bytes
        let back = Bitmap::from_bytes(bm.as_bytes(), 256);
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn bitmap_find_clear_run_is_truthful(ops in bit_ops(128), want in 1u32..16) {
        let mut bm = Bitmap::new(128, 16);
        for op in ops {
            match op {
                BitOp::Set(i) => { bm.set(i % 128); }
                BitOp::Clear(i) => { bm.clear(i % 128); }
            }
        }
        if let Some(start) = bm.find_clear_run(0, want) {
            for i in start..start + want {
                prop_assert!(!bm.get(i), "bit {i} in the returned run is set");
            }
        } else {
            // verify there really is no run of that length
            let mut run = 0u32;
            for i in 0..128u32 {
                if bm.get(i) { run = 0; } else { run += 1; }
                prop_assert!(run < want, "a clear run exists at {}", i + 1 - want);
            }
        }
    }
}

// ---------------------------------------------------------------------
// extent tree vs a reference map
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn extent_tree_maps_like_a_btreemap(
        appends in prop::collection::vec((0u32..500, 1_000u64..100_000), 1..60)
    ) {
        let mut tree = ExtentTree::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut next_logical = 0u32;
        for (gap, physical) in appends {
            let logical = next_logical + gap % 3; // mostly contiguous, some holes
            if tree.append(logical, physical).is_ok() {
                model.insert(logical, physical);
                next_logical = logical + 1;
            }
        }
        for (&l, &p) in &model {
            prop_assert_eq!(tree.map(l), Some(p), "logical {}", l);
        }
        prop_assert_eq!(tree.mapped_blocks() as usize, model.len());
    }

    #[test]
    fn extent_tree_inline_round_trip(
        appends in prop::collection::vec(1_000u64..1_000_000, 1..4)
    ) {
        // up to 4 discontiguous extents fit inline
        let mut tree = ExtentTree::new();
        for (i, p) in appends.iter().enumerate() {
            tree.append(i as u32 * 10, *p).unwrap();
        }
        let mut area = [0u8; 60];
        prop_assert!(tree.encode_inline(&mut area).is_none());
        match ExtentTree::decode_inline(&area).unwrap() {
            confdep_suite::ext4sim::ExtentRoot::Inline(back) => prop_assert_eq!(back, tree),
            other => return Err(TestCaseError::fail(format!("expected inline, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// on-disk codec round trips
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn superblock_round_trips(
        blocks in 64u64..u32::MAX as u64,
        free in 0u64..u32::MAX as u64,
        inodes in 16u32..1_000_000,
        bpg in 1u32..65536,
        label in "[a-z]{0,16}",
    ) {
        let mut sb = Superblock {
            blocks_count: blocks,
            free_blocks_count: free,
            inodes_count: inodes,
            blocks_per_group: bpg,
            clusters_per_group: bpg,
            inodes_per_group: inodes.max(16),
            ..Superblock::default()
        };
        sb.set_label(&label);
        let back = Superblock::from_bytes(&sb.to_bytes()).unwrap();
        prop_assert_eq!(back, sb);
    }

    #[test]
    fn inode_round_trips(
        size in 0u64..1u64 << 40,
        links in 0u16..1000,
        blocks in 0u32..1_000_000,
        area in prop::array::uniform32(0u8..)
    ) {
        let mut ino = Inode::new_file(false);
        ino.size = size;
        ino.links_count = links;
        ino.blocks = blocks;
        ino.block_area[..32].copy_from_slice(&area);
        let back = Inode::from_bytes(&ino.to_bytes(128));
        prop_assert_eq!(back, ino);
    }
}

// ---------------------------------------------------------------------
// whole-filesystem behaviour vs an in-memory reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    Write(u8, u16, u8),
    Unlink(u8),
}

fn fs_ops() -> impl Strategy<Value = Vec<FsOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12).prop_map(FsOp::Create),
            (0u8..12, 0u16..5000, 0u8..255).prop_map(|(f, len, byte)| FsOp::Write(f, len, byte)),
            (0u8..12).prop_map(FsOp::Unlink),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn file_operations_match_reference_model(ops in fs_ops()) {
        let dev = MemDevice::new(1024, 16384);
        let mut fs = Ext4Fs::format(
            dev,
            &MkfsParams { block_size: Some(1024), ..MkfsParams::default() },
        ).unwrap();
        let root = fs.root_inode();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                FsOp::Create(i) => {
                    let name = format!("f{i}");
                    let r = fs.create_file(root, &name);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(name) {
                        r.unwrap();
                        e.insert(Vec::new());
                    } else {
                        prop_assert!(r.is_err(), "duplicate create must fail");
                    }
                }
                FsOp::Write(i, len, byte) => {
                    let name = format!("f{i}");
                    if let Some(content) = model.get_mut(&name) {
                        let e = fs.lookup(root, &name).unwrap().unwrap();
                        let data = vec![byte; len as usize];
                        fs.write_file(confdep_suite::ext4sim::InodeNo(e.inode), 0, &data).unwrap();
                        if content.len() < data.len() {
                            *content = data;
                        } else {
                            content[..data.len()].copy_from_slice(&data);
                        }
                    }
                }
                FsOp::Unlink(i) => {
                    let name = format!("f{i}");
                    let r = fs.unlink(root, &name);
                    if model.remove(&name).is_some() {
                        r.unwrap();
                    } else {
                        prop_assert!(r.is_err(), "unlink of a missing file must fail");
                    }
                }
            }
        }
        // contents match the model
        for (name, content) in &model {
            let e = fs.lookup(root, name).unwrap().expect(name);
            let data = fs.read_file_to_vec(confdep_suite::ext4sim::InodeNo(e.inode)).unwrap();
            prop_assert_eq!(&data, content);
        }
        // survive a remount
        let dev = fs.unmount().unwrap();
        let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
        for name in model.keys() {
            prop_assert!(fs.lookup(fs.root_inode(), name).unwrap().is_some());
        }
        // image is fully consistent
        let report = check_image(&fs).unwrap();
        prop_assert!(report.is_clean(), "{:#?}", report.inconsistencies);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn resize_sequences_preserve_consistency(
        targets in prop::collection::vec(9_000u64..30_000, 1..5)
    ) {
        let m = confdep_suite::e2fstools::Mke2fs::from_args(
            &["-b", "1024", "/dev/prop", "12288"],
        ).unwrap();
        let mut dev = m.run(MemDevice::new(1024, 32768)).unwrap().0;
        for t in targets {
            dev = match Resize2fs::to_size(t).run(dev) {
                Ok((d, _)) => d,
                Err(confdep_suite::e2fstools::ToolError::Refused(_)) => return Ok(()),
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
            let report = check_image(&fs).unwrap();
            prop_assert!(report.is_clean(), "after resize to {t}: {:#?}", report.inconsistencies);
            dev = fs.unmount().unwrap();
        }
    }
}
