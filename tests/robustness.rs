//! Fault-injection robustness tests: the ecosystem against failing and
//! corrupting devices.

use confdep_suite::blockdev::{FaultPlan, FaultyDevice, InjectedFault, MemDevice};
use confdep_suite::e2fstools::{E2fsck, FsckMode, Mke2fs, ToolError};
use confdep_suite::ext4sim::{Ext4Fs, FsError, MountOptions};

fn clean_image() -> MemDevice {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/r", "12288"]).unwrap();
    m.run(MemDevice::new(1024, 16384)).unwrap().0
}

#[test]
fn write_failure_during_format_surfaces_as_error() {
    let plan = FaultPlan::new().with(InjectedFault::FailWrite(10));
    let dev = FaultyDevice::new(MemDevice::new(1024, 16384), plan);
    let result = Mke2fs::from_args(&["-b", "1024", "/dev/r", "12288"]).unwrap().run(dev);
    match result {
        Err(ToolError::Fs(FsError::Device(_))) => {}
        other => panic!("expected a device error, got {other:?}"),
    }
}

#[test]
fn device_gone_mid_workload() {
    let dev = clean_image();
    // let a generous number of writes through, then yank the device
    let plan = FaultPlan::new().with(InjectedFault::DeviceGone(50));
    let dev = FaultyDevice::new(dev, plan);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    let mut failed = false;
    for i in 0..200u32 {
        let r = fs
            .create_file(root, &format!("f{i}"))
            .and_then(|f| fs.write_file(f, 0, &[0u8; 2048]));
        if r.is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the yanked device must eventually fail a write");
}

#[test]
fn corrupted_superblock_magic_rejected_and_recovered() {
    let mut dev = clean_image();
    // destroy the primary superblock's magic (block 1, offset 0x38)
    dev.corrupt_byte(1, 0x38, 0x00).unwrap();
    dev.corrupt_byte(1, 0x39, 0x00).unwrap();
    assert!(matches!(
        Ext4Fs::mount(dev.clone(), &MountOptions::default()),
        Err(FsError::BadMagic { .. })
    ));
    // e2fsck -b 8193 recovers from the group-1 backup
    let ck = E2fsck::with_mode(FsckMode::Fix).with_backup_superblock(8193, 1024);
    let (dev, res) = ck.run(dev).unwrap();
    assert!(res.exit_code <= 1);
    // the primary is restored
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    assert_eq!(fs.superblock().blocks_count, 12288);
}

#[test]
fn silent_bitmap_corruption_detected_by_fsck() {
    let dev = clean_image();
    let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
    let bitmap_block = fs.groups()[0].block_bitmap;
    let mut dev = fs.unmount().unwrap();
    // flip allocation bits behind the file system's back
    dev.corrupt_byte(bitmap_block, 900, 0xFF).unwrap();
    let (_, res) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(res.exit_code, 4, "fsck must notice the flipped bits");
    assert!(!res.report.of_tag("group_free_blocks").is_empty());
}

#[test]
fn fsck_repairs_silent_bitmap_corruption() {
    let dev = clean_image();
    let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
    let bitmap_block = fs.groups()[0].block_bitmap;
    let mut dev = fs.unmount().unwrap();
    dev.corrupt_byte(bitmap_block, 900, 0xFF).unwrap();
    let (dev, res) = E2fsck::with_mode(FsckMode::Fix).forced().run(dev).unwrap();
    assert_eq!(res.exit_code, 1);
    let (_, res2) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(res2.exit_code, 0, "post-repair check: {:?}", res2.report);
}

#[test]
fn torn_superblock_write_detected_via_backup() {
    // a torn write that half-updates the primary superblock leaves a
    // checksum/geometry mismatch a maintenance open can still survive
    // through the backup path
    let mut dev = clean_image();
    // simulate the tear: zero the tail of the primary superblock block
    for off in 128..256 {
        dev.corrupt_byte(1, off, 0).unwrap();
    }
    // primary may still parse (magic intact) — e2fsck from the backup
    // must succeed regardless
    let ck = E2fsck::with_mode(FsckMode::Fix).with_backup_superblock(8193, 1024);
    let (dev, res) = ck.run(dev).unwrap();
    assert!(res.exit_code <= 1, "backup recovery failed: {:?}", res.report);
    Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
}

#[test]
fn read_fault_surfaces_cleanly() {
    let dev = clean_image();
    let plan = FaultPlan::new().with(InjectedFault::FailRead(0));
    let dev = FaultyDevice::new(dev, plan);
    // the very first read (superblock) fails -> clean error, no panic
    match Ext4Fs::mount(dev, &MountOptions::default()) {
        Err(FsError::Device(_)) => {}
        other => panic!("expected device error, got {other:?}"),
    }
}

#[test]
fn stats_wrapper_is_transparent() {
    use confdep_suite::blockdev::StatsDevice;
    let dev = StatsDevice::new(clean_image());
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    let entries = fs.readdir(fs.root_inode()).unwrap();
    assert!(entries.iter().any(|e| e.name == "lost+found"));
    assert!(fs.device().stats().reads > 0);
    assert_eq!(fs.device().stats().writes, 0, "a ro mount must not write");
}
