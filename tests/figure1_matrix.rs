//! The Figure 1 condition matrix, exhaustively: the corruption requires
//! *both* dependencies (sparse_super2 enabled AND size > current) and is
//! repaired by e2fsck, after which the image is clean and usable.

use confdep_suite::blockdev::MemDevice;
use confdep_suite::e2fstools::{E2fsck, FsckMode, Mke2fs, Resize2fs, ResizeQuirks};
use confdep_suite::ext4sim::{Ext4Fs, InodeNo, MountOptions};

fn image(sparse_super2: bool) -> MemDevice {
    let features = if sparse_super2 {
        "sparse_super2,^sparse_super,^resize_inode"
    } else {
        "^resize_inode"
    };
    let m = Mke2fs::from_args(&["-b", "1024", "-O", features, "/dev/f1", "12288"]).unwrap();
    m.run(MemDevice::new(1024, 16384)).unwrap().0
}

fn is_corrupted(dev: MemDevice) -> (MemDevice, bool) {
    let (dev, res) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    (dev, res.exit_code != 0)
}

#[test]
fn corruption_requires_both_conditions() {
    // (sparse_super2, expand) -> corrupted
    let (_, corrupted) = {
        let (dev, _) = Resize2fs::to_size(16384).run(image(true)).unwrap();
        is_corrupted(dev)
    };
    assert!(corrupted, "both conditions met must corrupt");

    // (sparse_super2, no expand) -> clean
    let (_, corrupted) = {
        let (dev, _) = Resize2fs::to_size(12288).run(image(true)).unwrap();
        is_corrupted(dev)
    };
    assert!(!corrupted, "no expansion, no corruption");

    // (no sparse_super2, expand) -> clean
    let (_, corrupted) = {
        let (dev, _) = Resize2fs::to_size(16384).run(image(false)).unwrap();
        is_corrupted(dev)
    };
    assert!(!corrupted, "no sparse_super2, no corruption");

    // (no sparse_super2, no expand) -> clean
    let (_, corrupted) = {
        let (dev, _) = Resize2fs::to_size(12288).run(image(false)).unwrap();
        is_corrupted(dev)
    };
    assert!(!corrupted);
}

#[test]
fn shrink_does_not_trigger_the_bug() {
    // the bug specifically concerns expansion ("size larger than the
    // Ext4 size")
    let (dev, res) = Resize2fs::to_size(9000).run(image(true)).unwrap();
    assert_eq!(res.new_blocks, 9000);
    let (_, corrupted) = is_corrupted(dev);
    assert!(!corrupted, "shrinking must not corrupt");
}

#[test]
fn fixed_quirk_matrix_is_fully_clean() {
    let quirks = ResizeQuirks { sparse_super2_resize_bug: false };
    for (ss2, target) in [(true, 16384u64), (true, 12288), (false, 16384)] {
        let (dev, _) = Resize2fs::to_size(target).with_quirks(quirks).run(image(ss2)).unwrap();
        let (_, corrupted) = is_corrupted(dev);
        assert!(!corrupted, "fixed resize2fs corrupted (ss2={ss2}, target={target})");
    }
}

#[test]
fn e2fsck_repairs_the_figure1_damage() {
    let (dev, _) = Resize2fs::to_size(16384).run(image(true)).unwrap();
    // preen fixes the counter damage
    let (dev, res) = E2fsck::with_mode(FsckMode::Preen).forced().run(dev).unwrap();
    assert_eq!(res.exit_code, 1, "fixes: {:?}", res.fixes);
    assert!(res.fixes.iter().any(|f| f.contains("free blocks")));
    // second check: clean, and the fs is fully usable
    let (dev, res2) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(res2.exit_code, 0);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let f = fs.create_file(fs.root_inode(), "after-repair").unwrap();
    fs.write_file(f, 0, b"usable again").unwrap();
    assert_eq!(fs.read_file_to_vec(f).unwrap(), b"usable again");
}

#[test]
fn corrupted_free_count_is_an_undercount() {
    // the buggy path loses the newly added blocks: recorded < actual
    let (dev, _) = Resize2fs::to_size(16384).run(image(true)).unwrap();
    let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
    let report = confdep_suite::ext4sim::check_image(&fs).unwrap();
    let sb_finding = report
        .inconsistencies
        .iter()
        .find_map(|i| match &i.kind {
            confdep_suite::ext4sim::InconsistencyKind::SuperFreeBlocks { recorded, actual } => {
                Some((*recorded, *actual))
            }
            _ => None,
        })
        .expect("superblock free-count mismatch");
    assert!(
        sb_finding.0 < sb_finding.1,
        "recorded {} must under-count actual {}",
        sb_finding.0,
        sb_finding.1
    );
    // and the delta is exactly the extension of the last group (4096 blocks)
    assert_eq!(sb_finding.1 - sb_finding.0, 4096);
}

#[test]
fn data_survives_the_buggy_resize() {
    // Figure 1 corrupts *metadata accounting*; file contents survive,
    // which is precisely why the bug is dangerous (silent until fsck)
    let dev = image(true);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let f = fs.create_file(fs.root_inode(), "data").unwrap();
    fs.write_file(f, 0, &[0x5A; 8000]).unwrap();
    let dev = fs.unmount().unwrap();
    let (dev, _) = Resize2fs::to_size(16384).run(dev).unwrap();
    let fs = Ext4Fs::mount(dev, &MountOptions { force: true, ..MountOptions::read_only() }).unwrap();
    let e = fs.lookup(fs.root_inode(), "data").unwrap().unwrap();
    assert_eq!(fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), vec![0x5A; 8000]);
}
