//! Integration tests driving the whole ecosystem across crates:
//! lifecycle flows that span mke2fs, mount, the file system, e4defrag,
//! resize2fs, and e2fsck.

use confdep_suite::blockdev::{FileDevice, MemDevice};
use confdep_suite::e2fstools::{E2fsck, E4defrag, FsckMode, Mke2fs, MountCmd, Resize2fs};
use confdep_suite::ext4sim::{check_image, Ext4Fs, InodeNo, MountOptions};

fn format_default(blocks: u64, device_blocks: u64) -> MemDevice {
    let blocks_str = blocks.to_string();
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/e2e", &blocks_str]).unwrap();
    m.run(MemDevice::new(1024, device_blocks)).unwrap().0
}

#[test]
fn full_lifecycle_with_data_integrity() {
    // create
    let dev = format_default(12288, 16384);
    // mount + populate
    let mut fs = MountCmd::from_option_string("").unwrap().run(dev).unwrap();
    let root = fs.root_inode();
    let mut expected = Vec::new();
    for i in 0..20u32 {
        let name = format!("file-{i:02}");
        let f = fs.create_file(root, &name).unwrap();
        let payload: Vec<u8> = (0..(i * 137) % 5000).map(|j| (j % 251) as u8).collect();
        fs.write_file(f, 0, &payload).unwrap();
        expected.push((name, payload));
    }
    let dev = fs.unmount().unwrap();

    // offline grow
    let (dev, res) = Resize2fs::to_size(16384).run(dev).unwrap();
    assert_eq!(res.new_blocks, 16384);

    // fsck: must be clean after a correct resize
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(fsck.exit_code, 0, "{:?}", fsck.report);

    // remount and verify every byte
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    for (name, payload) in &expected {
        let e = fs.lookup(fs.root_inode(), name).unwrap().expect(name);
        assert_eq!(&fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), payload);
    }
}

#[test]
fn crash_fsck_remount_cycle() {
    let dev = format_default(12288, 16384);
    // mount rw, write, crash (no unmount)
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    let f = fs.create_file(root, "survivor").unwrap();
    fs.write_file(f, 0, b"written before crash").unwrap();
    let dev = fs.into_device_dirty();

    // rw mount is refused on the dirty image
    assert!(Ext4Fs::mount(dev.clone(), &MountOptions::default()).is_err());

    // e2fsck -y repairs the dirty state
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Fix).run(dev).unwrap();
    assert_eq!(fsck.exit_code, 1);

    // now mountable, data intact
    let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let e = fs.lookup(fs.root_inode(), "survivor").unwrap().unwrap();
    assert_eq!(fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), b"written before crash");
}

#[test]
fn grow_shrink_grow_stays_consistent() {
    let dev = format_default(10000, 32768);
    let (dev, _) = Resize2fs::to_size(20000).run(dev).unwrap();
    let (dev, _) = Resize2fs::to_size(12000).run(dev).unwrap();
    let (dev, res) = Resize2fs::to_size(30000).run(dev).unwrap();
    assert_eq!(res.new_blocks, 30000);
    let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
    let report = check_image(&fs).unwrap();
    assert!(report.is_clean(), "findings: {:#?}", report.inconsistencies);
}

#[test]
fn defrag_then_check_clean() {
    let dev = format_default(12288, 16384);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    let a = fs.create_file(root, "frag-a").unwrap();
    let b = fs.create_file(root, "frag-b").unwrap();
    for i in 0..16u64 {
        fs.write_file(a, i * 1024, &[0x11; 1024]).unwrap();
        fs.write_file(b, i * 1024, &[0x22; 1024]).unwrap();
    }
    let report = E4defrag::new().run(&mut fs).unwrap();
    assert!(report.extents_after < report.extents_before);
    let dev = fs.unmount().unwrap();
    let (_, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(fsck.exit_code, 0, "defrag must leave a consistent image: {:?}", fsck.report);
}

#[test]
fn image_persists_through_a_file_backed_device() {
    let mut path = std::env::temp_dir();
    path.push(format!("confdep-e2e-{}.img", std::process::id()));
    {
        let dev = FileDevice::create(&path, 1024, 8192).unwrap();
        let (dev, _) = Mke2fs::from_args(&["-b", "1024", "/dev/img"]).unwrap().run(dev).unwrap();
        let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let root = fs.root_inode();
        let f = fs.create_file(root, "persisted.txt").unwrap();
        fs.write_file(f, 0, b"on real disk").unwrap();
        fs.unmount().unwrap();
    }
    // reopen the image from disk in a fresh device
    let dev = FileDevice::open(&path, 1024).unwrap();
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    let e = fs.lookup(fs.root_inode(), "persisted.txt").unwrap().unwrap();
    assert_eq!(fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), b"on real disk");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn deep_directory_tree_survives_lifecycle() {
    let dev = format_default(12288, 16384);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let mut dir = fs.root_inode();
    for depth in 0..8 {
        dir = fs.mkdir(dir, &format!("level-{depth}")).unwrap();
        let f = fs.create_file(dir, "marker").unwrap();
        fs.write_file(f, 0, format!("depth {depth}").as_bytes()).unwrap();
    }
    let dev = fs.unmount().unwrap();
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(fsck.exit_code, 0, "{:?}", fsck.report.inconsistencies);
    // walk back down
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    let mut dir = fs.root_inode();
    for depth in 0..8 {
        let e = fs.lookup(dir, &format!("level-{depth}")).unwrap().unwrap();
        dir = InodeNo(e.inode);
        let m = fs.lookup(dir, "marker").unwrap().unwrap();
        assert_eq!(fs.read_file_to_vec(InodeNo(m.inode)).unwrap(), format!("depth {depth}").as_bytes());
    }
}

#[test]
fn many_files_unlink_half_then_check() {
    let dev = format_default(12288, 16384);
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    let root = fs.root_inode();
    for i in 0..120u32 {
        let f = fs.create_file(root, &format!("n{i}")).unwrap();
        fs.write_file(f, 0, &vec![i as u8; (i as usize * 31) % 2048]).unwrap();
    }
    for i in (0..120u32).step_by(2) {
        fs.unlink(root, &format!("n{i}")).unwrap();
    }
    let dev = fs.unmount().unwrap();
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
    assert_eq!(fsck.exit_code, 0, "{:?}", fsck.report.inconsistencies);
    let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
    for i in 0..120u32 {
        let found = fs.lookup(fs.root_inode(), &format!("n{i}")).unwrap();
        assert_eq!(found.is_some(), i % 2 == 1, "file n{i}");
    }
}

#[test]
fn block_device_stats_show_io_amplification() {
    use confdep_suite::blockdev::StatsDevice;
    let dev = StatsDevice::new(MemDevice::new(1024, 16384));
    let (dev, _) = Mke2fs::from_args(&["-b", "1024", "/dev/x", "12288"]).unwrap().run(dev).unwrap();
    let format_writes = dev.stats().writes;
    assert!(format_writes > 100, "format touches many metadata blocks: {format_writes}");
}
