//! The buffered metadata cache must be invisible on disk: any workload
//! run under `CachePolicy::WriteBack` has to leave the unmounted device
//! byte-identical to the same workload under the write-through
//! baseline, across mkfs configurations — and crash exploration of a
//! journaled workload recorded through the cached mount path must
//! classify every crash point exactly as the legacy replay engine does.

use proptest::prelude::*;

use confdep_suite::blockdev::{digest_device, MemDevice};
use confdep_suite::crashsim::{explore, journaled_write_workload, ExploreOptions};
use confdep_suite::e2fstools::Mke2fs;
use confdep_suite::ext4sim::{CachePolicy, Ext4Fs, FsError, InodeNo, MountOptions};

/// Valid `-O` sets the generator samples (invalid combinations are
/// conbugck's business; here both arms must get past the format).
const FEATURE_SETS: [&str; 6] = [
    "",
    "has_journal",
    "inline_data",
    "metadata_csum",
    "bigalloc,^resize_inode",
    "sparse_super2,^sparse_super,^resize_inode",
];

const BLOCK_SIZES: [u32; 3] = [1024, 2048, 4096];

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8, u8),
    Write(u8, u8, u16, u8),
    Truncate(u8, u8),
    Unlink(u8, u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(Op::Mkdir),
            (0u8..4, 0u8..6).prop_map(|(d, f)| Op::Create(d, f)),
            (0u8..4, 0u8..6, 0u16..9000, 1u8..255)
                .prop_map(|(d, f, len, byte)| Op::Write(d, f, len, byte)),
            (0u8..4, 0u8..6).prop_map(|(d, f)| Op::Truncate(d, f)),
            (0u8..4, 0u8..6).prop_map(|(d, f)| Op::Unlink(d, f)),
        ],
        1..30,
    )
}

/// Runs the op sequence on a freshly formatted image under `policy` and
/// returns the unmounted device, or `None` if the configuration was
/// rejected at format time (the caller asserts rejection is
/// policy-independent).
fn run_workload(
    bs: u32,
    features: &str,
    ops: &[Op],
    policy: CachePolicy,
) -> Option<MemDevice> {
    let bs_str = bs.to_string();
    let mut argv = vec!["-b", bs_str.as_str()];
    if !features.is_empty() {
        argv.push("-O");
        argv.push(features);
    }
    argv.push("/dev/equiv");
    let num_blocks = 8 * 1024 * 1024 / u64::from(bs);
    let mkfs = Mke2fs::from_args(&argv).ok()?.with_cache_policy(policy);
    let (dev, _) = mkfs.run(MemDevice::new(bs, num_blocks)).ok()?;

    let mut fs = Ext4Fs::mount_with_policy(dev, &MountOptions::default(), policy)
        .expect("a freshly formatted image mounts");
    let root = fs.root_inode();
    // `dir 0` aliases the root; the rest are real directories created up
    // front so every op has a resolvable parent
    let mut dirs = vec![root];
    for d in 1..4 {
        dirs.push(fs.mkdir(root, &format!("base{d}")).expect("fresh image has room"));
    }
    let resolve = |fs: &Ext4Fs<MemDevice>, dir: InodeNo, f: u8| -> Option<InodeNo> {
        fs.lookup(dir, &format!("f{f}"))
            .expect("lookup on a healthy image")
            .map(|e| InodeNo(e.inode))
    };
    for op in ops {
        // results are allowed to be errors (duplicate create, missing
        // unlink target, a full fs) — but must not poison the image
        let _: Result<(), FsError> = match *op {
            Op::Mkdir(d) => {
                let parent = dirs[d as usize % dirs.len()];
                fs.mkdir(parent, "sub").map(|_| ())
            }
            Op::Create(d, f) => {
                let parent = dirs[d as usize % dirs.len()];
                fs.create_file(parent, &format!("f{f}")).map(|_| ())
            }
            Op::Write(d, f, len, byte) => {
                let parent = dirs[d as usize % dirs.len()];
                match resolve(&fs, parent, f) {
                    Some(ino) => fs.write_file(ino, 0, &vec![byte; len as usize]),
                    None => Ok(()),
                }
            }
            Op::Truncate(d, f) => {
                let parent = dirs[d as usize % dirs.len()];
                match resolve(&fs, parent, f) {
                    Some(ino) => fs.truncate(ino),
                    None => Ok(()),
                }
            }
            Op::Unlink(d, f) => {
                let parent = dirs[d as usize % dirs.len()];
                fs.unlink(parent, &format!("f{f}"))
            }
        };
    }
    Some(fs.unmount().expect("clean unmount"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn cached_image_is_byte_identical_to_write_through(
        bs_idx in 0usize..BLOCK_SIZES.len(),
        feat_idx in 0usize..FEATURE_SETS.len(),
        ops in ops_strategy(),
    ) {
        let bs = BLOCK_SIZES[bs_idx];
        let features = FEATURE_SETS[feat_idx];
        let baseline = run_workload(bs, features, &ops, CachePolicy::WriteThrough);
        let cached = run_workload(bs, features, &ops, CachePolicy::WriteBack);
        match (baseline, cached) {
            (Some(wt), Some(wb)) => {
                let da = digest_device(&wt).expect("in-range scan");
                let db = digest_device(&wb).expect("in-range scan");
                prop_assert_eq!(da, db, "bs={} features={:?}", bs, features);
            }
            (None, None) => {} // rejected under both policies: fine
            (wt, wb) => {
                return Err(TestCaseError::fail(format!(
                    "format acceptance diverged: write-through={} write-back={}",
                    wt.is_some(),
                    wb.is_some()
                )));
            }
        }
    }
}

/// The journaled workload is recorded through the cached (write-back)
/// mount path; the legacy sequential-replay engine and the incremental
/// cached engine must still agree on every crash point's verdict.
#[test]
fn journaled_workload_verdicts_match_across_engines() {
    let files = vec![
        ("alpha".to_string(), vec![0x11u8; 800]),
        ("beta".to_string(), vec![0x22u8; 400]),
    ];
    let workload = journaled_write_workload(&files).expect("workload builds");
    let baseline = explore(&workload, &ExploreOptions::sequential_baseline()).expect("explores");
    let cached = explore(&workload, &ExploreOptions::default().with_threads(2)).expect("explores");
    assert_eq!(baseline.canonical_signature(), cached.canonical_signature());
    assert!(!baseline.outcomes.is_empty());
}
