//! The content-addressed analysis cache: re-extracting a scenario whose
//! sources did not change must perform **zero** re-analyses, results
//! must be independent of the worker count, and a spilled cache must
//! restore into a fresh process-equivalent cache.

use confdep_suite::confdep::{
    extract_scenario_with_cache, models, AnalysisCache, ExtractOptions,
};

fn signatures(deps: &[confdep_suite::confdep::Dependency]) -> Vec<String> {
    deps.iter().map(confdep_suite::confdep::Dependency::signature).collect()
}

#[test]
fn second_extraction_performs_zero_reanalyses() {
    let cache = AnalysisCache::new();
    let sources = models::all();
    let opts = ExtractOptions::default();

    let first = extract_scenario_with_cache(&sources, opts, 0, &cache).unwrap();
    let cold = cache.stats();
    assert_eq!(cold.misses as usize, sources.len(), "every model analyzed once");
    assert_eq!(cold.hits, 0);

    let second = extract_scenario_with_cache(&sources, opts, 0, &cache).unwrap();
    let warm = cache.stats();
    assert_eq!(warm.misses, cold.misses, "warm run must re-analyze nothing");
    assert_eq!(warm.hits as usize, sources.len(), "every model served from cache");
    assert_eq!(signatures(&first.deps), signatures(&second.deps));
}

#[test]
fn bridge_toggle_reuses_cached_analyses() {
    // disable_bridge changes the bridging pass, not per-component
    // analysis — the cache must hit across the toggle
    let cache = AnalysisCache::new();
    let sources = models::all();
    extract_scenario_with_cache(&sources, ExtractOptions::default(), 1, &cache).unwrap();
    let ablated = ExtractOptions { disable_bridge: true, ..ExtractOptions::default() };
    extract_scenario_with_cache(&sources, ablated, 1, &cache).unwrap();
    assert_eq!(cache.stats().misses as usize, sources.len());
    assert_eq!(cache.stats().hits as usize, sources.len());
}

#[test]
fn results_are_independent_of_worker_count() {
    let sources = models::all();
    let opts = ExtractOptions { interprocedural: true, ..ExtractOptions::default() };
    let sequential =
        extract_scenario_with_cache(&sources, opts, 1, &AnalysisCache::new()).unwrap();
    let parallel =
        extract_scenario_with_cache(&sources, opts, 4, &AnalysisCache::new()).unwrap();
    assert_eq!(signatures(&sequential.deps), signatures(&parallel.deps));
    assert_eq!(sequential.components.len(), parallel.components.len());
    for (a, b) in sequential.components.iter().zip(&parallel.components) {
        assert_eq!(a.taint, b.taint);
    }
}

#[test]
fn spilled_cache_restores_without_reanalysis() {
    let sources = models::all();
    let opts = ExtractOptions::default();
    let cache = AnalysisCache::new();
    let original = extract_scenario_with_cache(&sources, opts, 0, &cache).unwrap();

    let path = std::env::temp_dir().join("confdep-analysis-cache-integration.json");
    cache.spill(&path).unwrap();

    let restored = AnalysisCache::new();
    assert_eq!(restored.load(&path).unwrap(), sources.len());
    let again = extract_scenario_with_cache(&sources, opts, 0, &restored).unwrap();
    assert_eq!(restored.stats().misses, 0, "restored cache must serve everything");
    assert_eq!(restored.stats().hits as usize, sources.len());
    assert_eq!(signatures(&original.deps), signatures(&again.deps));
    std::fs::remove_file(&path).ok();
}
