//! Ecosystem-wide properties of the unified [`Component`] layer and the
//! executable constraint layer, checked over **every registered
//! ecosystem** (Ext4 and F2FS alike).
//!
//! Four families of guarantees:
//!
//! 1. **Registry round-trips** — in each ecosystem, every registered
//!    [`ParamSpec`] domain survives parse → validate → render →
//!    re-parse unchanged (or is explicitly validate-only when the value
//!    has no CLI spelling);
//! 2. **Oracle agreement** — [`ConstraintSet`] reproduces the legacy
//!    per-Ck interpretation logic (ConBugCk's conflict/range lookups,
//!    ConDocCk's documentation matching) on all 64 extracted
//!    dependencies;
//! 3. **Table 2 universe** — the duplicate-guarded registry spans the
//!    paper's parameter counts;
//! 4. **Order invariance** — per-ecosystem checker outputs do not
//!    depend on the order ecosystems are registered or processed in.

use std::collections::BTreeSet;

use proptest::prelude::*;

use confdep_suite::confdep::{
    extract_scenario, models, ConstraintSet, DepKind, Dependency, DocVerdict, Endpoint,
    ExtractOptions, Verdict,
};
use confdep_suite::contools::{ext4_kernel_doc, run_condocck_for};
use confdep_suite::e2fstools::manual::{DocConstraint, ManualPage};
use confdep_suite::e2fstools::params::{ParamSpec, ParamType};
use confdep_suite::e2fstools::{component, registry, TypedConfig, TypedValue};
use confdep_suite::ecosys;

// ---------------------------------------------------------------------
// 1. registry round-trips
// ---------------------------------------------------------------------

/// In-domain candidate values for one parameter. Utility-level
/// validators are stricter than the registry ranges for a handful of
/// parameters (power-of-two block sizes, the two inode record sizes,
/// 16-byte labels), so those get explicit candidates.
fn candidate_values(spec: &ParamSpec) -> Vec<TypedValue> {
    use TypedValue::{Bool, Int, Str};
    match (spec.component.as_str(), spec.name.as_str()) {
        ("mke2fs", "blocksize") => vec![Int(1024), Int(4096), Int(65536)],
        ("mke2fs", "inode_size") => vec![Int(128), Int(256)],
        (_, "label") => vec![Str("vol0".to_string())],
        // tune2fs stores its -O argument as the raw token list
        ("tune2fs", "features") => vec![Str("extent".to_string())],
        // mkfs.f2fs sector sizes are the four powers of two
        ("mkfs_f2fs", "sector_size") => vec![Int(512), Int(2048), Int(4096)],
        // `-d 0` is the f2fs-tools default and is not recorded, so only
        // non-zero levels have a CLI round trip
        (_, "debug_level") => vec![Int(1), Int(5), Int(10)],
        // norecovery requires ro, io_bits requires mode=lfs, and
        // compress_log_size requires compress_algorithm, at parse time
        // (genuine CPDs), so none has a single-parameter round trip;
        // the pairings are exercised by the f2fs mount lifecycle tests
        // and ConHandleCk
        ("f2fs", "norecovery") | ("f2fs", "io_bits") | ("f2fs", "compress_log_size") => vec![],
        _ => match &spec.param_type {
            ParamType::Bool | ParamType::Feature => vec![Bool(true), Bool(false)],
            ParamType::Int { min, max } => {
                let mid = min / 2 + max / 2;
                let mut vals = vec![*min, mid, *max];
                vals.dedup();
                vals.into_iter().map(Int).collect()
            }
            ParamType::Enum(members) => members.iter().map(|m| Str(m.clone())).collect(),
            ParamType::Str => vec![Str("testval".to_string())],
            ParamType::Size => vec![Int(1024)],
        },
    }
}

fn single_param_config(component: &str, name: &str, value: &TypedValue) -> TypedConfig {
    let mut cfg = TypedConfig::new(component);
    match value {
        TypedValue::Bool(b) => cfg.set_bool(name, *b),
        TypedValue::Int(i) => cfg.set_int(name, *i),
        TypedValue::Str(s) => cfg.set_str(name, s),
    };
    cfg
}

/// Runs the parse → validate → render → re-parse round trip over one
/// ecosystem's whole registry; returns `(rendered, validate_only)`.
fn round_trip_ecosystem(eco: &ecosys::Ecosystem) -> (usize, usize) {
    let regs = eco.registry();
    let mut rendered = 0usize;
    let mut validate_only = 0usize;
    for comp in eco.components() {
        for spec in comp.param_specs() {
            for value in candidate_values(&spec) {
                let cfg = single_param_config(comp.name(), &spec.name, &value);
                cfg.validate(&regs).unwrap_or_else(|e| {
                    panic!("{}:{} = {value:?} fails validation: {e}", comp.name(), spec.name)
                });
                let Some(args) = comp.render_args(&cfg) else {
                    // no CLI spelling for this value: validate-only
                    validate_only += 1;
                    continue;
                };
                rendered += 1;
                let argv: Vec<&str> = args.iter().map(String::as_str).collect();
                let cfg2 = comp.parse_config(&argv).unwrap_or_else(|e| {
                    panic!("{}:{} rendered {args:?} but re-parse failed: {e}", comp.name(), spec.name)
                });
                assert_eq!(
                    cfg2.values.get(&spec.name),
                    cfg.values.get(&spec.name),
                    "{}:{} changed across render {args:?}",
                    comp.name(),
                    spec.name
                );
                cfg2.validate(&regs).expect("re-parsed config validates");
                // rendering is stable across the round trip
                assert_eq!(
                    comp.render_args(&cfg2),
                    Some(args.clone()),
                    "{}:{} renders unstably",
                    comp.name(),
                    spec.name
                );
            }
        }
    }
    // parameters no CLI component owns (kernel-module knobs reached via
    // sysfs) are validate-only
    let owned: BTreeSet<String> =
        eco.components().iter().map(|c| c.name().to_string()).collect();
    for spec in regs.iter().filter(|s| !owned.contains(&s.component)) {
        for value in candidate_values(spec) {
            let cfg = single_param_config(&spec.component, &spec.name, &value);
            cfg.validate(&regs).unwrap_or_else(|e| {
                panic!("{}:{} = {value:?} fails validation: {e}", spec.component, spec.name)
            });
            validate_only += 1;
        }
    }
    (rendered, validate_only)
}

#[test]
fn every_registered_param_round_trips_or_is_validate_only() {
    for eco in ecosys::all() {
        let (rendered, validate_only) = round_trip_ecosystem(&eco);
        match eco.name {
            "ext4" => {
                assert!(rendered > 60, "ext4: only {rendered} values exercised the CLI inverse");
                assert!(validate_only > 0, "ext4: expected some validate-only values");
            }
            _ => assert!(
                rendered > 20,
                "{}: only {rendered} values exercised the CLI inverse",
                eco.name
            ),
        }
    }
}

const MKE2FS_FEATURES: [&str; 11] = [
    "sparse_super",
    "sparse_super2",
    "has_journal",
    "extent",
    "64bit",
    "meta_bg",
    "resize_inode",
    "inline_data",
    "bigalloc",
    "dir_index",
    "metadata_csum",
];

const NEGATABLE_MOUNT_OPTS: [&str; 11] = [
    "block_validity",
    "acl",
    "user_xattr",
    "barrier",
    "discard",
    "delalloc",
    "lazytime",
    "auto_da_alloc",
    "grpid",
    "quota",
    "init_itable",
];

proptest! {
    // arbitrary feature subsets (0 = absent, 1 = enabled, 2 = disabled)
    // survive the render/re-parse inverse as whole value maps
    #[test]
    fn mke2fs_feature_subsets_round_trip(mask in prop::collection::vec(0u8..3, 11)) {
        let comp = component("mke2fs").unwrap();
        let mut cfg = TypedConfig::new("mke2fs");
        for (feat, m) in MKE2FS_FEATURES.iter().zip(&mask) {
            match m {
                1 => { cfg.set_bool(feat, true); }
                2 => { cfg.set_bool(feat, false); }
                _ => {}
            }
        }
        let args = comp.render_args(&cfg).expect("feature subsets always render");
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let cfg2 = comp.parse_config(&argv).expect("rendered features re-parse");
        prop_assert_eq!(&cfg2.values, &cfg.values);
    }

    // numeric mke2fs parameters inside their registry domains round-trip
    #[test]
    fn mke2fs_numeric_params_round_trip(
        bs_exp in 10u32..=16,
        reserved in 0i64..=50,
        inodes in 16i64..=1_000_000,
    ) {
        let comp = component("mke2fs").unwrap();
        let mut cfg = TypedConfig::new("mke2fs");
        cfg.set_int("blocksize", 1i64 << bs_exp)
            .set_int("reserved_percent", reserved)
            .set_int("inodes_count", inodes);
        cfg.validate(&registry()).expect("in-domain");
        let args = comp.render_args(&cfg).expect("renders");
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let cfg2 = comp.parse_config(&argv).expect("re-parses");
        prop_assert_eq!(&cfg2.values, &cfg.values);
    }

    // mount option sets: negatable booleans in either polarity plus
    // in-range integer options
    #[test]
    fn mount_option_sets_round_trip(
        mask in prop::collection::vec(0u8..3, 11),
        commit in 1i64..=900,
        ioprio in 0i64..=7,
    ) {
        let comp = component("mount").unwrap();
        let mut cfg = TypedConfig::new("mount");
        for (opt, m) in NEGATABLE_MOUNT_OPTS.iter().zip(&mask) {
            match m {
                1 => { cfg.set_bool(opt, true); }
                2 => { cfg.set_bool(opt, false); }
                _ => {}
            }
        }
        cfg.set_int("commit", commit).set_int("journal_ioprio", ioprio);
        cfg.validate(&registry()).expect("in-domain");
        let args = comp.render_args(&cfg).expect("renders");
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let cfg2 = comp.parse_config(&argv).expect("re-parses");
        prop_assert_eq!(&cfg2.values, &cfg.values);
    }
}

// ---------------------------------------------------------------------
// 2. oracle agreement with the legacy per-Ck interpretation logic
// ---------------------------------------------------------------------

fn extracted() -> Vec<Dependency> {
    extract_scenario(&models::all(), ExtractOptions::default()).expect("models compile")
}

/// The conflict lookup exactly as ConBugCk carried it before the
/// constraint layer existed.
fn legacy_conflicts(deps: &[Dependency], a: &str, b: &str) -> bool {
    deps.iter().any(|d| {
        d.kind == DepKind::CpdControl && {
            let s = d.signature();
            s.contains(&format!("{a}~{b}")) || s.contains(&format!("{b}~{a}"))
        }
    })
}

/// The range lookup exactly as ConBugCk carried it.
fn legacy_range_of(deps: &[Dependency], component: &str, param: &str) -> Option<(i64, i64)> {
    deps.iter()
        .find(|d| {
            d.kind == DepKind::SdValueRange
                && d.subject.component == component
                && d.subject.param == param
        })
        .map(|d| (d.detail.min.unwrap_or(i64::MIN), d.detail.max.unwrap_or(i64::MAX)))
}

fn legacy_pair_documented(page: &ManualPage, a: &str, b: &str) -> bool {
    page.all_constraints().iter().any(|c| match c {
        DocConstraint::Conflicts { param, other } | DocConstraint::Requires { param, other } => {
            (param == a && other == b) || (param == b && other == a)
        }
        _ => false,
    })
}

fn legacy_cross_documented(pages: &[&ManualPage], subj: &str, obj: Option<&str>) -> bool {
    pages.iter().any(|page| {
        page.all_constraints().iter().any(|c| match c {
            DocConstraint::CrossComponent { param, other, .. } => match obj {
                Some(q) => (param == subj && other == q) || (param == q && other == subj),
                None => param == subj || other == subj,
            },
            _ => false,
        })
    })
}

/// ConDocCk's documentation matcher exactly as it stood before
/// [`confdep::Constraint::doc_verdict`] replaced it.
fn legacy_doc_verdict(dep: &Dependency, all_pages: &[&ManualPage]) -> DocVerdict {
    let Some(page) = all_pages.iter().find(|p| p.component == dep.subject.component) else {
        return DocVerdict::NoManual;
    };
    let p = &dep.subject.param;
    let ok = match dep.kind {
        DepKind::SdDataType => page
            .all_constraints()
            .iter()
            .any(|c| matches!(c, DocConstraint::DataType { param, .. } if param == p)),
        DepKind::SdValueRange => page.all_constraints().iter().any(|c| match c {
            DocConstraint::ValueRange { param, .. } => param == p,
            DocConstraint::DataType { param, ty } => param == p && ty == "enum",
            _ => false,
        }),
        DepKind::CpdControl | DepKind::CpdValue => match &dep.object {
            Some(Endpoint::Param(q)) => legacy_pair_documented(page, p, &q.param),
            _ => false,
        },
        DepKind::CcdControl | DepKind::CcdValue | DepKind::CcdBehavioral => {
            let obj = match &dep.object {
                Some(Endpoint::Param(q)) => Some(q.param.as_str()),
                _ => None,
            };
            legacy_cross_documented(all_pages, p, obj)
        }
    };
    if ok {
        DocVerdict::Documented
    } else {
        DocVerdict::Missing
    }
}

fn manual_pages() -> Vec<ManualPage> {
    let mut pages: Vec<ManualPage> = ["mke2fs", "mount", "resize2fs", "e2fsck", "e4defrag"]
        .iter()
        .map(|n| component(n).expect("known component").manual_page())
        .collect();
    pages.push(ext4_kernel_doc());
    pages
}

/// The evaluator addresses some parameters by their registry names.
fn registry_alias<'a>(component: &str, param: &'a str) -> &'a str {
    match (component, param) {
        ("resize2fs", "new_size") => "size",
        ("e2fsck", "assume_yes") => "yes",
        ("e2fsck", "assume_no") => "no",
        ("e2fsck", "blocksize_opt") => "blocksize",
        _ => param,
    }
}

#[test]
fn compiled_set_preserves_all_64_dependencies_in_order() {
    let deps = extracted();
    assert_eq!(deps.len(), 64, "Table 5 total");
    let set = ConstraintSet::compile(deps.clone());
    assert_eq!(set.len(), deps.len());
    for (c, d) in set.constraints().iter().zip(&deps) {
        assert_eq!(c.signature(), d.signature());
    }
}

#[test]
fn conflict_lookup_agrees_with_legacy_conbugck() {
    let deps = extracted();
    let set = ConstraintSet::compile(deps.clone());
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for d in &deps {
        names.insert(d.subject.param.as_str());
        if let Some(Endpoint::Param(q)) = &d.object {
            names.insert(q.param.as_str());
        }
    }
    assert!(names.len() > 10, "dependency endpoints name many parameters");
    for a in &names {
        for b in &names {
            assert_eq!(
                set.conflicting(a, b),
                legacy_conflicts(&deps, a, b),
                "conflicting({a}, {b}) diverged from the legacy lookup"
            );
        }
    }
}

#[test]
fn range_lookup_agrees_with_legacy_conbugck() {
    let deps = extracted();
    let set = ConstraintSet::compile(deps.clone());
    let mut pairs: BTreeSet<(&str, &str)> = deps
        .iter()
        .map(|d| (d.subject.component.as_str(), d.subject.param.as_str()))
        .collect();
    pairs.insert(("mke2fs", "no_such_param"));
    pairs.insert(("xfs_repair", "blocksize"));
    for (c, p) in pairs {
        assert_eq!(
            set.int_range(c, p),
            legacy_range_of(&deps, c, p),
            "int_range({c}, {p}) diverged from the legacy lookup"
        );
    }
}

#[test]
fn doc_verdicts_agree_with_legacy_condocck_on_all_64() {
    let set = ConstraintSet::compile(extracted());
    let pages = manual_pages();
    let refs: Vec<&ManualPage> = pages.iter().collect();
    for c in set.constraints() {
        assert_eq!(
            c.doc_verdict(&refs),
            legacy_doc_verdict(&c.dependency, &refs),
            "doc verdict diverged for {}",
            c.signature()
        );
    }
}

#[test]
fn evaluator_agrees_with_legacy_range_and_conflict_semantics() {
    let deps = extracted();
    let set = ConstraintSet::compile(deps.clone());
    let mut ranges_checked = 0usize;
    let mut conflicts_checked = 0usize;
    for c in set.constraints() {
        let d = &c.dependency;
        match d.kind {
            DepKind::SdValueRange => {
                let (min, max) =
                    legacy_range_of(&deps, &d.subject.component, &d.subject.param).expect("own");
                let name = registry_alias(&d.subject.component, &d.subject.param);
                // a value the legacy generator would have rejected must
                // evaluate as a violation
                if max < i64::MAX {
                    let cfg = single_param_config(
                        &d.subject.component,
                        name,
                        &TypedValue::Int(max + 1),
                    );
                    assert_eq!(
                        c.evaluate(&[&cfg]),
                        Verdict::Violated,
                        "{} accepts {} > max",
                        c.signature(),
                        max + 1
                    );
                    ranges_checked += 1;
                }
                if min > i64::MIN {
                    let cfg = single_param_config(
                        &d.subject.component,
                        name,
                        &TypedValue::Int(min - 1),
                    );
                    assert_eq!(
                        c.evaluate(&[&cfg]),
                        Verdict::Violated,
                        "{} accepts {} < min",
                        c.signature(),
                        min - 1
                    );
                    ranges_checked += 1;
                }
                // an unconfigured parameter is not a violation
                let empty = TypedConfig::new(&d.subject.component);
                assert_ne!(c.evaluate(&[&empty]), Verdict::Violated);
            }
            DepKind::CpdControl => {
                let Some(Endpoint::Param(q)) = &d.object else { continue };
                assert!(
                    legacy_conflicts(&deps, &d.subject.param, &q.param),
                    "legacy lookup misses its own pair {}",
                    c.signature()
                );
                let mut both = TypedConfig::new(&d.subject.component);
                both.set_bool(registry_alias(&d.subject.component, &d.subject.param), true);
                both.set_bool(registry_alias(&q.component, &q.param), true);
                assert_eq!(
                    c.evaluate(&[&both]),
                    Verdict::Violated,
                    "{} tolerates both parameters engaged",
                    c.signature()
                );
                let mut repaired = TypedConfig::new(&d.subject.component);
                repaired.set_bool(registry_alias(&d.subject.component, &d.subject.param), true);
                repaired.set_bool(registry_alias(&q.component, &q.param), false);
                assert_eq!(
                    c.evaluate(&[&repaired]),
                    Verdict::Satisfied,
                    "{} rejects the legacy repair (drop one side of the pair)",
                    c.signature()
                );
                // the subject alone leaves the pair undecidable
                let mut alone = TypedConfig::new(&d.subject.component);
                alone.set_bool(registry_alias(&d.subject.component, &d.subject.param), true);
                assert_ne!(c.evaluate(&[&alone]), Verdict::Violated);
                conflicts_checked += 1;
            }
            _ => {}
        }
    }
    assert!(ranges_checked > 5, "only {ranges_checked} range violations exercised");
    assert!(conflicts_checked > 3, "only {conflicts_checked} conflict pairs exercised");
}

// ---------------------------------------------------------------------
// 3. the Table 2 universe through the duplicate-guarded registry
// ---------------------------------------------------------------------

#[test]
fn registry_spans_the_table2_universe() {
    let specs = registry(); // panics on a duplicate (component, name)
    let count = |c: &str| specs.iter().filter(|s| s.component == c).count();
    // Table 2: Ext4 (mke2fs + mount + the ext4 module) has >85
    // parameters; e2fsck >35; resize2fs >15
    assert!(count("mke2fs") + count("mount") + count("ext4") > 85);
    assert!(count("e2fsck") > 35);
    assert!(count("resize2fs") > 15);
    assert!(count("tune2fs") >= 7, "tune2fs joins the registry via the Component trait");
    // every component's own table is a verbatim slice of its
    // ecosystem's registry, in every registered ecosystem
    for eco in ecosys::all() {
        let eco_specs = eco.registry();
        for comp in eco.components() {
            for spec in comp.param_specs() {
                assert!(
                    eco_specs.contains(&spec),
                    "{}:{}:{} missing from its ecosystem registry",
                    eco.name,
                    comp.name(),
                    spec.name
                );
            }
        }
    }
    // and the cross-ecosystem merge stays collision-free
    let merged = ecosys::merged_registry();
    assert!(merged.len() > specs.len(), "merged registry spans both ecosystems");
}

// ---------------------------------------------------------------------
// 4. checker outputs are invariant to ecosystem registration order
// ---------------------------------------------------------------------

/// Everything the checkers say about one ecosystem, computed in
/// isolation: extracted dependency signatures, doc-issue count, and the
/// registry size.
type CheckerFingerprint = (Vec<String>, usize, usize);

fn checker_fingerprint(eco: &ecosys::Ecosystem) -> CheckerFingerprint {
    let deps = eco.dependencies().expect("models compile");
    let sigs: Vec<String> = deps.iter().map(|d| d.signature().to_string()).collect();
    let doc_issues = run_condocck_for(eco).expect("doc corpus checks").len();
    (sigs, doc_issues, eco.registry().len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // processing the registered ecosystems in any order yields the same
    // per-ecosystem checker outputs — no hidden shared state leaks
    // between ecosystems through the registry or the analyzers
    #[test]
    fn checker_outputs_are_invariant_to_ecosystem_order(seed in 0u64..u64::MAX) {
        let mut ecos = ecosys::all();
        // Fisher–Yates driven by a splitmix-style LCG from the seed
        let mut state = seed;
        for i in (1..ecos.len()).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let j = (state >> 33) as usize % (i + 1);
            ecos.swap(i, j);
        }
        let mut shuffled: Vec<(String, CheckerFingerprint)> = ecos
            .iter()
            .map(|e| (e.name.to_string(), checker_fingerprint(e)))
            .collect();
        shuffled.sort_by(|a, b| a.0.cmp(&b.0));
        let mut canonical: Vec<(String, CheckerFingerprint)> = ecosys::all()
            .iter()
            .map(|e| (e.name.to_string(), checker_fingerprint(e)))
            .collect();
        canonical.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(shuffled, canonical);
    }
}
