//! Property-based tests on the analysis substrate: the CIR compiler
//! never panics on arbitrary input, generated well-formed programs
//! always compile and analyze, and directory blocks behave like a map.

use proptest::prelude::*;

use confdep_suite::cir;

// ---------------------------------------------------------------------
// CIR robustness: arbitrary input must error, never panic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn lexer_never_panics(src in ".*") {
        let _ = cir::lex(&src);
    }

    #[test]
    fn compiler_never_panics(src in ".{0,400}") {
        let _ = cir::compile(&src);
    }

    #[test]
    fn compiler_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("component".to_string()),
                Just("param".to_string()),
                Just("fn".to_string()),
                Just("if".to_string()),
                Just("fail".to_string()),
                Just("metadata".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("&&".to_string()),
                Just("x".to_string()),
                Just("42".to_string()),
                Just("\"s\"".to_string()),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = cir::compile(&src);
    }
}

// ---------------------------------------------------------------------
// generated well-formed programs always compile and analyze
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "component" | "param" | "fn" | "if" | "else" | "fail" | "return" | "let"
                | "metadata" | "true" | "false"
        )
    })
}

#[derive(Debug, Clone)]
struct GenParam {
    name: String,
    min: i64,
    max: i64,
}

fn gen_params() -> impl Strategy<Value = Vec<GenParam>> {
    prop::collection::vec(
        (ident(), 0i64..1000, 1000i64..100_000)
            .prop_map(|(name, min, max)| GenParam { name, min, max }),
        1..6,
    )
    .prop_map(|mut ps| {
        ps.sort_by(|a, b| a.name.cmp(&b.name));
        ps.dedup_by(|a, b| a.name == b.name);
        ps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn generated_range_checks_extract_correct_bounds(params in gen_params()) {
        let mut src = String::from("component generated;\n");
        for p in &params {
            src.push_str(&format!("param int {} = option(\"--{}\");\n", p.name, p.name));
        }
        src.push_str("fn validate() {\n");
        for p in &params {
            src.push_str(&format!(
                "if ({n} < {min} || {n} > {max}) {{ fail(\"bad {n}\"); }}\n",
                n = p.name,
                min = p.min,
                max = p.max
            ));
        }
        src.push_str("}\n");
        let deps = confdep_suite::confdep::extract_component(&src).unwrap();
        for p in &params {
            let range = deps
                .iter()
                .find(|d| {
                    d.kind == confdep_suite::confdep::DepKind::SdValueRange
                        && d.subject.param == p.name
                })
                .unwrap_or_else(|| panic!("no range extracted for {}", p.name));
            prop_assert_eq!(range.detail.min, Some(p.min));
            prop_assert_eq!(range.detail.max, Some(p.max));
        }
    }

    #[test]
    fn generated_conflict_pairs_extract_exactly(pairs in prop::collection::vec((ident(), ident()), 1..5)) {
        let pairs: Vec<(String, String)> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .enumerate()
            .map(|(i, (a, b))| (format!("{a}_{i}"), format!("{b}_{i}x")))
            .collect();
        if pairs.is_empty() {
            return Ok(());
        }
        let mut src = String::from("component generated;\n");
        for (a, b) in &pairs {
            src.push_str(&format!("param bool {a} = feature(\"{a}\");\n"));
            src.push_str(&format!("param bool {b} = feature(\"{b}\");\n"));
        }
        src.push_str("fn validate() {\n");
        for (a, b) in &pairs {
            src.push_str(&format!("if ({a} && {b}) {{ fail(\"conflict\"); }}\n"));
        }
        src.push_str("}\n");
        let deps = confdep_suite::confdep::extract_component(&src).unwrap();
        let controls: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == confdep_suite::confdep::DepKind::CpdControl)
            .collect();
        prop_assert_eq!(controls.len(), pairs.len(), "deps: {:#?}", deps);
    }
}

// ---------------------------------------------------------------------
// directory blocks behave like a name -> inode map
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DirOp {
    Add(u8, u32),
    Remove(u8),
}

proptest! {
    #[test]
    fn dir_block_matches_reference_map(
        ops in prop::collection::vec(
            prop_oneof![
                (0u8..20, 100u32..10_000).prop_map(|(n, i)| DirOp::Add(n, i)),
                (0u8..20).prop_map(DirOp::Remove),
            ],
            0..60,
        )
    ) {
        use confdep_suite::ext4sim::dir::{add_entry, find_entry, init_block, parse_block, remove_entry};
        use confdep_suite::ext4sim::FileType;
        let mut block = vec![0u8; 1024];
        init_block(&mut block, 2, 2);
        let mut model: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                DirOp::Add(n, ino) => {
                    let name = format!("entry-{n}");
                    if model.contains_key(&name) {
                        continue; // the fs layer prevents duplicates
                    }
                    if add_entry(&mut block, &name, ino, FileType::Regular).unwrap() {
                        model.insert(name, ino);
                    }
                }
                DirOp::Remove(n) => {
                    let name = format!("entry-{n}");
                    let removed = remove_entry(&mut block, &name).unwrap();
                    prop_assert_eq!(removed, model.remove(&name));
                }
            }
        }
        // the block parses and matches the model (+ '.' and '..')
        let entries = parse_block(&block).unwrap();
        prop_assert_eq!(entries.len(), model.len() + 2);
        for (name, ino) in &model {
            let e = find_entry(&block, name).unwrap().unwrap_or_else(|| panic!("{name} missing"));
            prop_assert_eq!(e.inode, *ino);
        }
    }
}
