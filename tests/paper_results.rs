//! Integration test: every headline number of the paper, end to end.
//!
//! These are the acceptance tests of the reproduction — each assertion
//! corresponds to a specific claim in the paper's text or tables.

use confdep_suite::confdep::{Evaluation, ExtractOptions};
use confdep_suite::contools::{run_condocck, run_conhandleck};

#[test]
fn abstract_headline_extraction() {
    // "Our preliminary prototype is able to extract 64 multi-level
    //  dependencies with a low false positive rate."
    let eval = Evaluation::run(ExtractOptions::default()).unwrap();
    assert_eq!(eval.unique.total(), 64);
    assert!((eval.overall_fp_rate() - 0.078).abs() < 0.001); // 7.8%
}

#[test]
fn table5_category_breakdown() {
    // "including 32 SD, 26 CPD, and 6 CCD"
    let eval = Evaluation::run(ExtractOptions::default()).unwrap();
    assert_eq!(eval.unique.sd.extracted, 32);
    assert_eq!(eval.unique.cpd.extracted, 26);
    assert_eq!(eval.unique.ccd.extracted, 6);
    assert_eq!(eval.unique.sd.false_positives, 3);
    assert_eq!(eval.unique.cpd.false_positives, 1);
    assert_eq!(eval.unique.ccd.false_positives, 1);
}

#[test]
fn table3_bug_study() {
    // Table 3: 67 bugs over four scenarios; SD 100%, CPD 7.5%, CCD 97.0%
    let t = study::classify_corpus();
    assert_eq!(t.total.bugs, 67);
    assert_eq!(t.rows.iter().map(|r| r.bugs).collect::<Vec<_>>(), vec![13, 1, 17, 36]);
    assert!((t.total.sd_pct() - 100.0).abs() < 0.01);
    assert!((t.total.cpd_pct() - 7.5).abs() < 0.1);
    assert!((t.total.ccd_pct() - 97.0).abs() < 0.1);
}

#[test]
fn table4_taxonomy() {
    // Table 4: 132 critical dependencies, 5/7 sub-categories observed
    assert_eq!(study::total_critical_deps(), 132);
    assert_eq!(study::observed_sub_categories(), 5);
}

#[test]
fn table2_coverage() {
    // Table 2: 29 of >85, 6 of >35, 7 of >15
    let rows = study::coverage_table();
    assert_eq!((rows[0].used, rows[1].used, rows[2].used), (29, 6, 7));
    assert!(rows[0].total > 85 && rows[1].total > 35 && rows[2].total > 15);
}

#[test]
fn mining_pipeline_numbers() {
    // §3.1: ~2,700 keyword hits, 400 sampled, 67 kept
    let (report, bugs) = study::mine_corpus();
    assert_eq!(report.keyword_hits, 2700);
    assert_eq!(report.sampled, 400);
    assert_eq!(report.classified_bugs, 67);
    assert_eq!(bugs.len(), 67);
}

#[test]
fn section_4_3_applications() {
    // "12 inaccurate documentations and 1 bad configuration handling"
    let issues = run_condocck().unwrap();
    assert_eq!(issues.len(), 12);
    let outcomes = run_conhandleck();
    assert_eq!(outcomes.iter().filter(|o| o.handling.is_bad()).count(), 1);
}

#[test]
fn fifty_nine_true_dependencies_feed_the_applications() {
    // "Based on the 59 extracted true dependencies..."
    let eval = Evaluation::run(ExtractOptions::default()).unwrap();
    let trues =
        eval.unique.deps.iter().filter(|d| confdep_suite::confdep::is_true_dependency(d)).count();
    assert_eq!(trues, 59);
}

#[test]
fn table1_catalog_shape() {
    let catalog = study::fs_catalog();
    assert_eq!(catalog.len(), 8);
    // every FS is configurable at multiple stages (the modular-design point)
    for e in &catalog {
        assert!(e.utilities().len() >= 3);
    }
}

#[test]
fn constraint_layer_reproduces_the_headlines_end_to_end() {
    // the same numbers, flowing through the executable constraint layer:
    // extraction -> ConstraintSet -> the Ck applications
    use confdep_suite::confdep::{
        extract_scenario, is_false_positive, models, ConstraintSet,
    };
    let set = ConstraintSet::compile(
        extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
    );
    assert_eq!(set.len(), 64);
    assert_eq!(set.dependencies().filter(|d| is_false_positive(d)).count(), 5);
    // ConDocCk's 12 issues are Constraint::doc_verdict outcomes
    assert_eq!(run_condocck().unwrap().len(), 12);
    // ConHandleCk keys its cases by compiled constraint signatures; the
    // Figure 1 bad-handling case carries the behavioral signature verbatim
    let outcomes = run_conhandleck();
    let bad: Vec<_> = outcomes.iter().filter(|o| o.handling.is_bad()).collect();
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].case.id, 11);
    assert!(bad[0].case.dependency.contains("sparse_super2"));
    assert!(
        set.find(&bad[0].case.dependency).is_some(),
        "the bad-handling case must be keyed by a compiled constraint"
    );
}

#[test]
fn scenario_rows_match_calibrated_expectations() {
    // per-scenario rows (our measured values; EXPERIMENTS.md records the
    // cell-level deviations from the paper's internally inconsistent rows)
    let eval = Evaluation::run(ExtractOptions::default()).unwrap();
    let row = |i: usize| {
        let s = &eval.scenarios[i];
        (s.sd.extracted, s.cpd.extracted, s.ccd.extracted)
    };
    assert_eq!(row(0), (29, 24, 0));
    assert_eq!(row(1), (29, 24, 0)); // e4defrag adds nothing (intra-proc)
    assert_eq!(row(2), (32, 26, 6)); // the resize2fs scenario — matches the paper row exactly
    assert_eq!(row(3), (29, 24, 0));
}
