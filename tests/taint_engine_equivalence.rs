//! Property-based equivalence of the taint propagation engines: the
//! def-use worklist with interned taint sets must produce
//! **byte-identical** `TaintResult`s — same facts, same traces, same
//! ordering — to the naive whole-program sweep, in both the intra- and
//! inter-procedural modes, across hundreds of generated CIR programs,
//! while never visiting more instructions than the sweep.

use bench::{synth_model, SynthSpec};
use proptest::prelude::*;

use confdep_suite::taint::{analyze_with_stats, AnalysisOptions, Engine};

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (1usize..6, 1usize..8, 1usize..8, 1usize..5, 0u64..1_000_000).prop_map(
        |(functions, blocks, params, meta_fields, seed)| SynthSpec {
            functions,
            blocks,
            params,
            meta_fields,
            seed,
        },
    )
}

proptest! {
    // each case compares both modes, so 150 cases = 300 full
    // engine-vs-engine comparisons over distinct generated programs
    #![proptest_config(ProptestConfig::with_cases(150))]
    #[test]
    fn worklist_matches_sweep_everywhere(spec in spec_strategy()) {
        let src = synth_model(&spec);
        let program = confdep_suite::cir::compile(&src)
            .expect("generated programs always compile");
        for interprocedural in [false, true] {
            let (work, wstats) = analyze_with_stats(
                &program,
                AnalysisOptions { interprocedural, engine: Engine::Worklist },
            );
            let (sweep, sstats) = analyze_with_stats(
                &program,
                AnalysisOptions { interprocedural, engine: Engine::Sweep },
            );
            // full structural equality: facts, traces, trace ordering,
            // tainted-variable counts, truncation counters
            prop_assert_eq!(&work, &sweep, "mode interprocedural={}", interprocedural);
            // the worklist's whole point: never more visits than the sweep
            prop_assert!(
                wstats.instructions_visited <= sstats.instructions_visited,
                "worklist visited {} > sweep {} (interprocedural={})",
                wstats.instructions_visited,
                sstats.instructions_visited,
                interprocedural
            );
        }
    }
}

/// The real component models are the inputs that actually matter; pin
/// the equivalence on them explicitly (the property test only covers
/// generated programs).
#[test]
fn engines_agree_on_all_real_models() {
    for (name, src) in confdep_suite::confdep::models::all() {
        let program = confdep_suite::cir::compile(src).unwrap();
        for interprocedural in [false, true] {
            let (work, _) = analyze_with_stats(
                &program,
                AnalysisOptions { interprocedural, engine: Engine::Worklist },
            );
            let (sweep, _) = analyze_with_stats(
                &program,
                AnalysisOptions { interprocedural, engine: Engine::Sweep },
            );
            assert_eq!(work, sweep, "{name} interprocedural={interprocedural}");
        }
    }
}
