//! Property-based equivalence of the crash-exploration engines: the
//! rolling CoW engine with parallel classification and the image-digest
//! verdict cache must produce reports identical to the legacy
//! sequential full-replay baseline — canonical signatures equal, cache
//! hits never changing a verdict — across randomized journalled
//! workloads.

use proptest::prelude::*;

use confdep_suite::crashsim::{
    explore, journaled_write_workload, CrashReport, ExploreOptions,
};

/// Random small files for a journalled workload: 1–3 files with
/// distinct names, arbitrary fill bytes and sizes that exercise the
/// empty, sub-block and multi-block cases.
fn workload_files() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec((0u8..255, 0usize..2500), 1..4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (byte, len))| (format!("file{i}"), vec![byte; len]))
            .collect()
    })
}

/// The engine-independent parts of a report, in enumeration order (the
/// canonical signature only compares the sorted multiset; the engines
/// additionally promise the same order).
fn ordered_outcomes(report: &CrashReport) -> Vec<String> {
    report.outcomes.iter().map(|o| format!("{o:?}")).collect()
}

proptest! {
    // each case races four engine configurations over every crash point
    // of a freshly recorded trace, so a handful of cases compares
    // hundreds of classified images
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn all_engine_configurations_agree(files in workload_files()) {
        let w = journaled_write_workload(&files).unwrap();

        let baseline = explore(&w, &ExploreOptions::sequential_baseline()).unwrap();
        let incremental = explore(&w, &ExploreOptions {
            threads: 1,
            verdict_cache: false,
            ..ExploreOptions::default()
        }).unwrap();
        let parallel = explore(&w, &ExploreOptions {
            verdict_cache: false,
            ..ExploreOptions::default().with_threads(4)
        }).unwrap();
        let cached = explore(&w, &ExploreOptions::default().with_threads(4)).unwrap();

        // identical outcomes in identical order, engine regardless
        let want = ordered_outcomes(&baseline);
        prop_assert_eq!(&want, &ordered_outcomes(&incremental));
        prop_assert_eq!(&want, &ordered_outcomes(&parallel));
        prop_assert_eq!(&want, &ordered_outcomes(&cached));
        prop_assert_eq!(baseline.canonical_signature(), cached.canonical_signature());

        // cache hits are real work avoided, never a changed verdict:
        // every crash point is either classified or served by the cache
        prop_assert_eq!(
            cached.stats.images_classified + cached.stats.cache_hits,
            cached.outcomes.len()
        );
        prop_assert_eq!(baseline.stats.cache_hits, 0);
        prop_assert!(cached.stats.images_classified <= parallel.stats.images_classified);

        // the rolling engine materialises the same images with
        // asymptotically less replay I/O
        prop_assert!(
            incremental.stats.blocks_replayed <= baseline.stats.blocks_replayed,
            "incremental {} > baseline {}",
            incremental.stats.blocks_replayed,
            baseline.stats.blocks_replayed
        );
    }
}
