//! Property-based crash-consistency tests: the journal must make every
//! crash point of a mount–write–unmount workload recoverable, and the
//! explorer must reproduce the paper's Figure 1 corruption.

use proptest::prelude::*;

use confdep_suite::crashsim::{
    explore, figure1_resize_workload, journaled_write_workload, CrashKind, ExploreOptions, Verdict,
};

/// Random small files for a journalled workload: 1–3 files with
/// distinct names, arbitrary fill bytes and sizes that exercise the
/// empty, sub-block and multi-block cases.
fn workload_files() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec((0u8..255, 0usize..2500), 1..4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (byte, len))| (format!("file{i}"), vec![byte; len]))
            .collect()
    })
}

proptest! {
    // each case explores every crash point of a freshly recorded trace
    // (prefixes, torn writes, volatile-cache reorderings), so a handful
    // of cases already covers hundreds of post-crash images
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn journaled_crashes_are_never_fatal(files in workload_files()) {
        let w = journaled_write_workload(&files).unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        prop_assert!(report.writes > 0);
        for o in &report.outcomes {
            prop_assert!(
                o.verdict <= Verdict::Repairable,
                "{:?} -> {:?}: {}",
                o.kind,
                o.verdict,
                o.detail
            );
        }
        // files made durable by a clean unmount survive *every* crash
        // point after it, so none of the verdicts above may hide a
        // data-loss downgrade
        let counts = report.counts();
        prop_assert_eq!(counts.data_loss, 0);
        prop_assert_eq!(counts.unrecoverable, 0);
    }
}

#[test]
fn figure1_resize_exposes_corrupting_crash_points() {
    let w = figure1_resize_workload().unwrap();
    let report = explore(&w, &ExploreOptions::sampled(9)).unwrap();
    assert!(
        report.corrupting() >= 1,
        "sparse_super2 resize produced no corrupting crash point: {:?}",
        report.counts()
    );
    // the corruption is not a crash artefact: the fully completed
    // resize itself leaves the inconsistent free-block accounting of
    // the paper's Figure 1
    let full = report
        .outcomes
        .iter()
        .find(|o| matches!(o.kind, CrashKind::Prefix { writes } if writes == report.writes))
        .expect("complete prefix explored");
    assert_ne!(full.verdict, Verdict::Consistent, "{}", full.detail);
}
