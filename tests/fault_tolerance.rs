//! Property-based fault-tolerance tests: every single-fault schedule a
//! campaign enumerates must end in a classified verdict — never a Rust
//! panic, never a policy violation — for random configurations, random
//! durable-file sets and random sampling caps. A degraded
//! (`errors=remount-ro`) mount must keep serving durable reads and
//! rejecting writes; faultsim encodes both contracts as
//! `PolicyViolation`, so "zero violations" is the property.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use confdep_suite::ext4sim::errors_policy;
use confdep_suite::faultsim::{
    run_campaign, CampaignConfig, CampaignOptions, CampaignReport, FaultWorkload, Verdict,
    VerdictCache,
};

fn any_config() -> impl Strategy<Value = CampaignConfig> {
    (0u8..3, 0u8..2, 0u8..2).prop_map(|(e, journal, write_back)| CampaignConfig {
        errors: match e {
            0 => errors_policy::CONTINUE,
            1 => errors_policy::REMOUNT_RO,
            _ => errors_policy::PANIC,
        },
        journal: journal == 1,
        write_back: write_back == 1,
    })
}

/// 1–3 durable files with arbitrary fill bytes and sizes spanning the
/// empty, sub-block and multi-block cases.
fn durable_files() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec((0u8..255, 0usize..2200), 1..4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (byte, len))| (format!("keep{i}"), vec![byte; len]))
            .collect()
    })
}

/// Small random sampling caps, so each case explores a different slice
/// of the fault-schedule space.
fn small_caps() -> impl Strategy<Value = CampaignOptions> {
    (1usize..4, 1usize..4, 1usize..3, 1usize..3, 1usize..4).prop_map(
        |(write_points, read_points, flush_points, corrupt_points, threads)| CampaignOptions {
            threads,
            write_points,
            read_points,
            flush_points,
            corrupt_points,
            verdict_cache: true,
        },
    )
}

/// Runs one campaign inside a `catch_unwind` harness so a panic in the
/// engine itself becomes a test failure that names the configuration
/// instead of poisoning the proptest runner.
fn campaign_guarded(
    workload: &FaultWorkload,
    opts: &CampaignOptions,
) -> Result<CampaignReport, String> {
    let cache = VerdictCache::new(opts.verdict_cache);
    catch_unwind(AssertUnwindSafe(|| run_campaign(workload, opts, &cache)))
        .map_err(|_| format!("campaign engine panicked for {}", workload.name))?
        .map_err(|e| format!("probe pass failed for {}: {e}", workload.name))
}

proptest! {
    // each case re-executes the workload once per sampled fault
    // schedule, so a handful of cases already covers hundreds of
    // faulted runs across the configuration grid
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn every_schedule_gets_a_verdict_and_no_policy_breaks(
        config in any_config(),
        files in durable_files(),
        opts in small_caps(),
    ) {
        let mut workload = FaultWorkload::standard(config);
        workload.durable_files = files;
        let report = campaign_guarded(&workload, &opts)
            .map_err(TestCaseError::fail)?;
        prop_assert!(report.stats.faults_explored > 0);
        prop_assert_eq!(report.outcomes.len(), report.stats.faults_explored);
        for o in &report.outcomes {
            prop_assert!(
                o.verdict != Verdict::Panic,
                "{:?} ended in a panic verdict: {}",
                o.fault,
                o.detail
            );
            prop_assert!(
                o.verdict != Verdict::PolicyViolation,
                "{:?} violated errors={}: {}",
                o.fault,
                workload.config.errors_str(),
                o.detail
            );
        }
    }

    #[test]
    // journal=true pins a guaranteed trigger: the commit flush of the
    // workload's final sync is a metadata-path failure, so FailFlush(0)
    // always trips errors=remount-ro (no-journal configs can sample
    // only data-block writes and legitimately never degrade)
    fn remount_ro_serves_durable_reads_wherever_it_degrades(
        write_back in 0u8..2,
        files in durable_files(),
    ) {
        let config = CampaignConfig {
            errors: errors_policy::REMOUNT_RO,
            journal: true,
            write_back: write_back == 1,
        };
        let mut workload = FaultWorkload::standard(config);
        workload.durable_files = files;
        let opts = CampaignOptions {
            threads: 2,
            write_points: 5,
            read_points: 2,
            flush_points: 2,
            corrupt_points: 1,
            verdict_cache: true,
        };
        let report = campaign_guarded(&workload, &opts)
            .map_err(TestCaseError::fail)?;
        // a degraded mount that dropped a durable read or accepted a
        // write would have been classified PolicyViolation, so the two
        // read-only contracts reduce to "every degraded run stayed a
        // DegradedReadOnly (or legitimately worse-on-recovery) verdict"
        let counts = report.counts();
        prop_assert_eq!(counts.policy_violation, 0, "{:?}", report.outcomes);
        prop_assert_eq!(counts.panic, 0);
        // with write faults sampled across the whole trace, at least
        // one schedule must actually trip the policy
        prop_assert!(
            report.outcomes.iter().any(|o| o.detail.contains("degraded=y")),
            "no schedule degraded the mount: {:?}",
            report.outcomes
        );
    }
}

/// Deterministic anchor: the full grid with tiny caps classifies every
/// schedule, zero panics, zero violations — independent of proptest's
/// RNG, so a regression here bisects cleanly.
#[test]
fn full_grid_smoke_is_clean() {
    let opts = CampaignOptions {
        threads: 2,
        write_points: 3,
        read_points: 2,
        flush_points: 1,
        corrupt_points: 1,
        verdict_cache: true,
    };
    let cache = VerdictCache::new(true);
    for config in CampaignConfig::full_grid() {
        let workload = FaultWorkload::standard(config);
        let report = run_campaign(&workload, &opts, &cache).expect("probe pass");
        let counts = report.counts();
        assert_eq!(counts.panic, 0, "{}: {:?}", workload.name, report.outcomes);
        assert_eq!(
            counts.policy_violation, 0,
            "{}: {:?}",
            workload.name, report.outcomes
        );
        assert_eq!(report.outcomes.len(), report.stats.faults_explored);
    }
    // the shared digest cache must earn its keep across the sweep
    assert!(cache.hits() > 0, "no digest-cache hits across the grid");
}
