//! Property-based equivalence of partial-order reduction: on random
//! generated multi-op corpora the POR engine must produce reports
//! identical to full deep-reorder enumeration — canonical signatures
//! and per-class verdict counts equal — while pruning schedules, and a
//! second run over a warm verdict store must replay zero images.

use std::sync::Arc;

use proptest::prelude::*;

use confdep_suite::crashsim::{
    explore, generated_workload, CorpusSpec, ExploreOptions, OutcomeCore, VerdictStore,
};

proptest! {
    // each case fully enumerates deep reorderings of a generated
    // multi-op trace twice (exhaustively and pruned), then replays the
    // pruned run against a warm store
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn por_agrees_with_exhaustive_on_generated_corpora(
        seed in 0u64..u64::MAX,
        ops in 4usize..9,
        batch in 1u32..5,
    ) {
        let w = generated_workload(&CorpusSpec { seed, ops, max_batch_ops: batch }).unwrap();

        let exhaustive = explore(
            &w,
            &ExploreOptions { deep_reorder: true, ..ExploreOptions::default() }.with_threads(2),
        ).unwrap();
        let por = explore(&w, &ExploreOptions::corpus().with_threads(2)).unwrap();

        // identical classified outcomes and identical verdict-class totals
        prop_assert_eq!(exhaustive.canonical_signature(), por.canonical_signature());
        prop_assert_eq!(exhaustive.counts(), por.counts());
        // the reduction actually reduced, and accounts for every schedule
        prop_assert!(por.stats.schedules_pruned > 0);
        prop_assert_eq!(
            por.stats.por_classes + por.stats.schedules_pruned,
            por.outcomes.len()
        );

        // a second run over the same (now warm) store replays nothing
        let store: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::in_memory(true));
        let opts = ExploreOptions::corpus().with_threads(2).with_store(Arc::clone(&store));
        let cold = explore(&w, &opts).unwrap();
        let warm = explore(&w, &opts).unwrap();
        prop_assert_eq!(cold.canonical_signature(), warm.canonical_signature());
        prop_assert_eq!(warm.stats.images_classified, 0);
        prop_assert_eq!(warm.stats.blocks_replayed, 0);
        prop_assert_eq!(warm.stats.store_hits, warm.stats.por_classes);
    }
}

#[test]
fn warm_disk_store_replays_zero_images() {
    let path =
        std::env::temp_dir().join(format!("crashsim_por_equiv_{}.vstore", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let w = generated_workload(&CorpusSpec { seed: 99, ops: 8, max_batch_ops: 3 }).unwrap();

    let cold_store: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::open(&path));
    let cold =
        explore(&w, &ExploreOptions::corpus().with_store(Arc::clone(&cold_store))).unwrap();
    assert!(cold.stats.images_classified > 0);
    drop(cold_store);

    let warm_store: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::open(&path));
    assert_eq!(warm_store.preloaded(), cold.stats.por_classes);
    let warm =
        explore(&w, &ExploreOptions::corpus().with_store(Arc::clone(&warm_store))).unwrap();
    assert_eq!(warm.stats.images_classified, 0);
    assert_eq!(warm.stats.blocks_replayed, 0);
    assert_eq!(cold.canonical_signature(), warm.canonical_signature());
    let _ = std::fs::remove_file(&path);
}
