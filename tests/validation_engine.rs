//! Serving-path equivalence properties for the `convalid` engine: for
//! arbitrary typed configurations, the indexed plan, the memoized
//! serving path, and the batched fan-out must all return verdict
//! vectors byte-identical to evaluating every compiled
//! [`Constraint`](confdep_suite::confdep::Constraint) directly — and a
//! repair proposal must always re-validate clean.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use confdep_suite::confdep::{
    constraint::registry_name, extract_scenario, models, ConstraintSet, Endpoint,
    ExtractOptions, Verdict,
};
use confdep_suite::convalid::{
    ConfigQuery, EngineOptions, ValidationEngine, ValidationPlan,
};
use confdep_suite::e2fstools::typed::{TypedConfig, TypedValue};

fn plan() -> &'static Arc<ValidationPlan> {
    static PLAN: OnceLock<Arc<ValidationPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        Arc::new(ValidationPlan::compile(ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        )))
    })
}

/// Engines are shared across proptest cases on purpose: the memoized
/// engine accumulates state, so later cases exercise cross-query memo
/// traffic (hits, collision checks, evictions) instead of always
/// starting cold.
fn engines() -> &'static (ValidationEngine, ValidationEngine, ValidationEngine) {
    static ENGINES: OnceLock<(ValidationEngine, ValidationEngine, ValidationEngine)> =
        OnceLock::new();
    ENGINES.get_or_init(|| {
        let p = plan();
        (
            ValidationEngine::new(Arc::clone(p), EngineOptions::naive()),
            ValidationEngine::new(Arc::clone(p), EngineOptions::indexed()),
            ValidationEngine::new(Arc::clone(p), EngineOptions::serving()),
        )
    })
}

/// Every (component, registry parameter) either end of any compiled
/// constraint touches — the parameter universe random queries draw
/// from, so generated states actually engage the constraint table.
fn param_universe() -> &'static Vec<(String, String)> {
    static UNIVERSE: OnceLock<Vec<(String, String)>> = OnceLock::new();
    UNIVERSE.get_or_init(|| {
        let mut seen = BTreeSet::new();
        for c in plan().constraints().constraints() {
            let d = &c.dependency;
            seen.insert((
                d.subject.component.clone(),
                registry_name(&d.subject.component, &d.subject.param).to_string(),
            ));
            if let Some(Endpoint::Param(p)) = &d.object {
                seen.insert((
                    p.component.clone(),
                    registry_name(&p.component, &p.param).to_string(),
                ));
            }
        }
        seen.into_iter().collect()
    })
}

fn value_strategy() -> impl Strategy<Value = TypedValue> {
    prop_oneof![
        (0u8..2).prop_map(|b| TypedValue::Bool(b == 1)),
        // spans every compiled range boundary (blocksize, commit,
        // reserved_percent, stride, ...) plus far-out-of-range values
        (-70_000i64..=70_000).prop_map(TypedValue::Int),
        prop_oneof![
            Just("journal"),
            Just("ordered"),
            Just("writeback"),
            Just("remount-ro"),
            Just("continue"),
            Just("panic"),
            Just("not-a-mode"),
        ]
        .prop_map(|s| TypedValue::Str(s.to_string())),
    ]
}

/// A random whole-configuration state: a subset of the constraint
/// parameter universe with arbitrary typed values, grouped into one
/// `TypedConfig` per component (always materializing the `mke2fs` and
/// `mount` views, as the CLI surface does).
fn query_strategy() -> impl Strategy<Value = ConfigQuery> {
    let universe_len = param_universe().len();
    prop::collection::vec((0..universe_len, value_strategy()), 0..12).prop_map(|picks| {
        let universe = param_universe();
        let mut components: Vec<TypedConfig> =
            vec![TypedConfig::new("mke2fs"), TypedConfig::new("mount")];
        for (at, value) in picks {
            let (component, param) = &universe[at];
            let cfg = match components.iter_mut().find(|c| &c.component == component) {
                Some(cfg) => cfg,
                None => {
                    components.push(TypedConfig::new(component));
                    components.last_mut().unwrap()
                }
            };
            cfg.values.insert(param.clone(), value);
        }
        ConfigQuery::new(components)
    })
}

fn direct_verdicts(query: &ConfigQuery) -> Vec<Verdict> {
    let views: Vec<&TypedConfig> = query.views();
    plan()
        .constraints()
        .constraints()
        .iter()
        .map(|c| c.evaluate(&views))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn serving_paths_match_direct_evaluation(query in query_strategy()) {
        let direct = direct_verdicts(&query);
        let (naive, indexed, serving) = engines();

        let n = naive.validate(&query);
        prop_assert_eq!(&direct[..], &n.verdicts[..], "naive path diverged");
        prop_assert_eq!(n.evaluated, direct.len(), "naive must evaluate the whole table");

        let i = indexed.validate(&query);
        prop_assert_eq!(&direct[..], &i.verdicts[..], "indexed path diverged");
        prop_assert!(i.evaluated <= direct.len());

        let s = serving.validate(&query);
        prop_assert_eq!(&direct[..], &s.verdicts[..], "memoized path diverged");
        // asking again must hit the memo and answer identically
        let again = serving.validate(&query);
        prop_assert!(again.memo_hit, "repeat of the same state missed the memo");
        prop_assert_eq!(again.evaluated, 0);
        prop_assert_eq!(&s.verdicts[..], &again.verdicts[..]);
    }

    #[test]
    fn batched_fanout_matches_direct_evaluation(
        queries in prop::collection::vec(query_strategy(), 1..8),
        threads in 0usize..4,
    ) {
        let (_, _, serving) = engines();
        let outcomes = serving.validate_many(&queries, threads);
        prop_assert_eq!(outcomes.len(), queries.len());
        for (query, outcome) in queries.iter().zip(&outcomes) {
            let direct = direct_verdicts(query);
            prop_assert_eq!(&direct[..], &outcome.verdicts[..], "batched path diverged");
        }
    }

    #[test]
    fn repair_always_revalidates_clean(query in query_strategy()) {
        let (_, indexed, _) = engines();
        let proposal = indexed.repair(&query);
        prop_assert!(proposal.clean, "repair reported an unclean result");
        let repaired = ConfigQuery::new(proposal.configs.clone());
        let outcome = indexed.validate(&repaired);
        prop_assert!(
            outcome.ok(),
            "repaired state still violates: {:?}",
            outcome.violations()
        );
        // a state the repair left untouched was already clean
        if proposal.changes.is_empty() {
            prop_assert!(indexed.validate(&query).ok());
        }
    }
}
