#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lint-clean under clippy, a
# crash-exploration benchmark smoke (tiny trace, 2 threads), a
# taint-analyzer benchmark smoke, an fs-substrate smoke, a
# fault-injection conformance smoke, a constraint-fuzzing smoke
# (solver polarity coverage plus the warm verdict store), and a
# validation-serving smoke (naive vs indexed vs memoized paths) — each
# checking the BENCH JSON is well-formed and the racing engines (or
# cache policies) agreed — plus a second-ecosystem (F2FS) smoke with a
# cross-FS agreement check, a grep lint holding the line on
# unwrap/expect in ext4sim runtime code, and a grep lint keeping the
# checker layers ecosystem-agnostic.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

rm -f target/tier1_corpus.vstore
./target/release/repro_crashsim --bench --smoke --threads 2 \
  --out target/bench_smoke.json --store target/tier1_corpus.vstore
python3 - <<'EOF'
import json
with open("target/bench_smoke.json") as f:
    bench = json.load(f)
assert bench["rows"], "bench smoke produced no rows"
for row in bench["rows"]:
    assert row["reports_identical"], f"engines disagreed on {row['workload']}"
    for cfg in ("sequential", "parallel", "parallel_cached"):
        assert row[cfg]["wall_ms"] >= 0
        assert row[cfg]["blocks_replayed"] > 0
assert bench["all_reports_identical"]
# corpus-scale POR smoke: pruning happened, every pruned run matched
# the exhaustive enumeration, and the warm run over the persisted
# store classified nothing (pure cross-run cache hits)
corpus = bench["corpus"]
assert corpus["rows"], "corpus smoke produced no rows"
for row in corpus["rows"]:
    w = row["workload"]
    assert row["reports_identical"], f"POR diverged from exhaustive on {w}"
    assert row["verdict_counts_identical"], f"verdict counts diverged on {w}"
    assert row["por_cold"]["schedules_pruned"] > 0, f"no pruning on {w}"
    assert (
        row["por_cold"]["por_classes"] + row["por_cold"]["schedules_pruned"]
        == row["schedules_enumerated"]
    ), f"POR class accounting off on {w}"
    assert row["por_warm"]["images_classified"] == 0, f"warm run classified on {w}"
    assert row["por_warm"]["blocks_replayed"] == 0, f"warm run replayed on {w}"
    assert row["por_warm"]["store_hits"] == row["por_cold"]["por_classes"], (
        f"store round-trip incomplete on {w}"
    )
assert corpus["all_reports_identical"] and corpus["warm_run_clean"]
print("bench smoke OK:", len(bench["rows"]), "workload(s);",
      "corpus POR OK:", corpus["totals"]["schedules_pruned"], "schedules pruned,",
      corpus["totals"]["warm_store_hits"], "cross-run store hits")
EOF

./target/release/repro_analyzer --bench --smoke --threads 2 \
  --out target/bench_analyzer_smoke.json
python3 - <<'EOF'
import json
with open("target/bench_analyzer_smoke.json") as f:
    bench = json.load(f)
assert bench["rows"], "analyzer smoke produced no rows"
for row in bench["rows"]:
    label = f"{row['functions']}f/{row['blocks']}b {row['mode']}"
    assert row["identical"], f"engines disagreed on {label}"
    for eng in ("sweep", "worklist"):
        assert row[eng]["wall_ms"] >= 0
        assert row[eng]["instructions_visited"] > 0
    assert (
        row["worklist"]["instructions_visited"]
        <= row["sweep"]["instructions_visited"]
    ), f"worklist visited more than the sweep on {label}"
assert bench["all_identical"]
assert bench["cache"]["second_misses"] == 0, "warm extraction re-analyzed a model"
assert bench["cache"]["cache_hits"] > 0
print("analyzer smoke OK:", len(bench["rows"]), "row(s)")
EOF

./target/release/repro_fsops --bench --smoke --out target/bench_fsops_smoke.json
python3 - <<'EOF'
import json
with open("target/bench_fsops_smoke.json") as f:
    bench = json.load(f)
assert bench["legs"], "fsops smoke produced no legs"
for leg in bench["legs"]:
    assert leg["identical"], f"cache policies diverged on {leg['name']}"
    for arm in ("baseline", "cached"):
        assert leg[arm]["wall_ms"] >= 0
    assert leg["cached"]["io"]["writes"] <= leg["baseline"]["io"]["writes"], (
        f"write-back issued more device writes than write-through on {leg['name']}"
    )
assert bench["all_identical"]
t = bench["totals"]
assert t["baseline_writes"] > 0 and t["cached_writes"] > 0
assert t["write_reduction"] >= 1.0, f"no write reduction: {t['write_reduction']}"
assert t["wall_speedup"] >= 1.0, f"cached engine slower overall: {t['wall_speedup']}"
print("fsops smoke OK:", len(bench["legs"]), "leg(s),",
      f"{t['write_reduction']:.2f}x fewer writes")
EOF

./target/release/repro_faultsim --bench --smoke --threads 2 \
  --out target/bench_faultsim_smoke.json
python3 - <<'EOF'
import json
with open("target/bench_faultsim_smoke.json") as f:
    bench = json.load(f)
assert bench["configs"] == 12, f"expected the full 12-config grid: {bench['configs']}"
assert len(bench["rows"]) == 12
for row in bench["rows"]:
    label = f"errors={row['errors']} journal={row['journal']} wb={row['write_back']}"
    assert row["faults"] > 0, f"no fault schedules explored for {label}"
    assert row["counts"]["panic"] == 0, f"panic verdict under {label}"
    assert row["counts"]["policy_violation"] == 0, f"policy violated under {label}"
    assert row["honoured"], f"policy not honoured for {label}"
    total = sum(row["counts"].values())
    assert total == row["faults"], f"unclassified schedules under {label}"
remount = [r for r in bench["rows"] if r["errors"] == "remount-ro"]
assert any(r["policy_fired"] > 0 for r in remount), "remount-ro never fired"
for cfg in ("single", "parallel", "parallel_cached"):
    assert bench[cfg]["wall_ms"] >= 0
    assert bench[cfg]["faults_explored"] > 0
assert bench["all_reports_identical"], "engines disagreed on a campaign report"
assert bench["zero_panics"]
assert bench["all_policies_honoured"]
assert bench["parallel_cached"]["cache_hits"] > 0, "digest cache never hit"
print("faultsim smoke OK:", bench["single"]["faults_explored"], "schedules,",
      bench["parallel_cached"]["cache_hits"], "cache hits")
EOF

rm -f target/tier1_fuzz.vstr
./target/release/repro_fuzz --bench --smoke \
  --out target/bench_fuzz_smoke.json --store target/tier1_fuzz.vstr
python3 - <<'EOF'
import json
with open("target/bench_fuzz_smoke.json") as f:
    bench = json.load(f)
assert bench["thread_levels"], "fuzz smoke produced no thread levels"
for lvl in bench["thread_levels"]:
    s, a, n = (lvl[k]["report"] for k in ("solver", "aware", "naive"))
    assert s["coverage_covered"] == s["coverage_universe"], (
        f"solver missed polarity targets at {lvl['threads']} thread(s)"
    )
    assert s["coverage_covered"] > a["coverage_covered"], (
        "solver coverage does not beat the dependency-aware generator"
    )
    assert s["coverage_covered"] > n["coverage_covered"], (
        "solver coverage does not beat the naive generator"
    )
    for r in (s, a, n):
        assert r["unique_verdicts"] > 0 and r["wall_ms"] >= 0
assert bench["solver_full_coverage"], "solver coverage incomplete"
store = bench["store"]
assert store["warm_executed_fresh"] == 0, "warm store rerun executed configs"
assert store["verdicts_identical"], "warm and cold campaigns disagreed"
assert store["warm"]["store_preloaded"] == store["cold"]["unique_verdicts"], (
    "warm rerun did not preload the cold campaign's verdicts"
)
print("fuzz smoke OK:", bench["thread_levels"][0]["solver"]["report"]["coverage_covered"],
      "polarity targets covered,", store["cold"]["unique_verdicts"],
      "verdicts replayed from the store")
EOF

./target/release/repro_service --bench --smoke --threads 2 \
  --out target/bench_service_smoke.json
python3 - <<'EOF'
import json
with open("target/bench_service_smoke.json") as f:
    bench = json.load(f)
assert bench["thread_levels"], "service smoke produced no thread levels"
for lvl in bench["thread_levels"]:
    t = lvl["threads"]
    assert lvl["verdicts_identical"], f"serving paths disagreed at {t} thread(s)"
    for leg in ("naive", "indexed", "memoized"):
        assert lvl[leg]["wall_ms"] >= 0
        assert lvl[leg]["validations_per_sec"] > 0
    assert lvl["indexed"]["evaluated_per_query"] < bench["constraints"], (
        f"indexed plan evaluated the whole table at {t} thread(s)"
    )
    assert lvl["memoized"]["memo"]["hits"] > 0, f"memo never hit at {t} thread(s)"
    assert lvl["speedup_indexed"] >= 1.0, (
        f"indexed slower than naive at {t} thread(s): {lvl['speedup_indexed']:.2f}x"
    )
    assert lvl["speedup_memoized"] >= 1.0, (
        f"memoized slower than naive at {t} thread(s): {lvl['speedup_memoized']:.2f}x"
    )
assert bench["all_paths_identical"], "a serving path diverged"
assert bench["direct_identical"], "plan diverged from direct Constraint::evaluate"
assert bench["indexed_evaluated_per_query"] < bench["constraints"]
print(f"service smoke OK: {bench['pool_distinct']} states, "
      f"{bench['indexed_evaluated_per_query']:.1f}/{bench['constraints']} "
      f"constraints/query, best memoized speedup "
      f"{bench['max_speedup_memoized']:.2f}x")
EOF

# Error-handling lint: the errors= policy work routes device failures
# through typed errors; hold the line on unwrap()/expect() in ext4sim's
# non-test runtime code (the allowed counts are invariant-expects on
# in-memory cache state, audited 2026-08).
python3 - <<'EOF'
ceilings = {"fs.rs": 10, "cache.rs": 0, "journal.rs": 0, "superblock.rs": 0,
            "extent.rs": 0, "dir.rs": 0, "inode.rs": 0}
for name, ceiling in ceilings.items():
    src = open(f"crates/ext4sim/src/{name}").read()
    cut = src.find("#[cfg(test)]")
    body = src if cut < 0 else src[:cut]
    n = body.count(".unwrap()") + body.count(".expect(")
    assert n <= ceiling, (
        f"ext4sim/src/{name} has {n} non-test unwrap/expect (ceiling {ceiling}): "
        "device-I/O paths must return typed errors, not panic"
    )
print("unwrap/expect lint OK")
EOF

# Ecosystem smoke: all six components through the unified Component
# dispatch, then the three Ck applications driven by the executable
# constraint layer — asserting the paper's headline numbers.
CLI=./target/release/confdep-cli
for invocation in \
  "mke2fs -b 4096 /dev/img" \
  "mount ro data=journal" \
  "e4defrag -c /mnt" \
  "resize2fs -M /dev/img" \
  "e2fsck -f /dev/img" \
  "tune2fs -m 10 /dev/img"; do
  # shellcheck disable=SC2086
  $CLI component $invocation > /dev/null
done
echo "component dispatch OK: 6 components"

# check-docs exits non-zero when issues exist (they do: exactly 12);
# check-handling exits non-zero on bad handling (exactly 1, Figure 1)
$CLI check-docs > target/condocck.out || true
$CLI check-handling > target/conhandleck.out || true
$CLI fuzz --count 40 --seed 42 --solver --json > target/conbugck.json
python3 - <<'EOF'
import json
import re

with open("target/condocck.out") as f:
    docs = f.read()
m = re.search(r"(\d+) documentation issues", docs)
assert m and int(m.group(1)) == 12, f"expected 12 documentation issues: {docs}"

with open("target/conhandleck.out") as f:
    handling = f.read()
m = re.search(r"(\d+) cases, (\d+) bad handling", handling)
assert m and (int(m.group(1)), int(m.group(2))) == (12, 1), (
    f"expected 12 cases / 1 bad handling: {handling}"
)
assert "sparse_super2" in handling

with open("target/conbugck.json") as f:
    fuzz = json.load(f)
aware, naive = fuzz["aware"], fuzz["naive"]
assert aware["deep_rate"] >= 0.9, f"dependency-aware deep rate {aware['deep_rate']}"
assert naive["deep_rate"] < 0.6, f"naive deep rate suspiciously high: {naive['deep_rate']}"
assert aware["deep_rate"] > naive["deep_rate"]
solver = fuzz["solver"]
assert solver is not None, "CLI --solver produced no solver campaign"
assert solver["coverage_fraction"] == 1.0, (
    f"solver polarity coverage incomplete: "
    f"{solver['coverage_covered']}/{solver['coverage_universe']}"
)
assert solver["coverage_covered"] > aware["coverage_covered"]
assert solver["coverage_covered"] > naive["coverage_covered"]
print(f"ecosystem smoke OK: 12 doc issues, 1 bad handling, "
      f"deep {aware['deep_rate']:.0%} vs naive {naive['deep_rate']:.0%}, "
      f"solver coverage {solver['coverage_covered']}/{solver['coverage_universe']}")
EOF

# Second-ecosystem smoke: all five F2FS components through the unified
# dispatch (namespaced, dotted, and bare spellings), the F2FS
# extraction floor, the cross-FS agreement pass — and the ext4 headline
# numbers above must have come out unchanged first (12 doc issues,
# 12 cases / 1 bad handling, solver coverage 88/88).
for invocation in \
  "f2fs:mkfs -O encrypt /dev/sim" \
  "mkfs.f2fs -O extra_attr,compression /dev/sim" \
  "f2fs background_gc=on" \
  "fsck.f2fs /dev/sim" \
  "resize.f2fs -t 98304 /dev/sim" \
  "dump.f2fs /dev/sim"; do
  # shellcheck disable=SC2086
  $CLI component $invocation > /dev/null
done
echo "f2fs component dispatch OK: 5 components (6 spellings)"

$CLI extract > target/ext4_extract.out
$CLI extract --ecosystem f2fs > target/f2fs_extract.out
$CLI cross-fs > target/crossfs.out
$CLI cross-fs --check 'discard,errors=remount-ro | nodiscard,errors=panic' \
  > target/crossfs_check.out || true
$CLI check-handling --ecosystem f2fs > target/f2fs_handling.out
python3 - <<'EOF'
import re

with open("target/ext4_extract.out") as f:
    ext4 = f.read()
assert "64 dependencies" in ext4, f"ext4 extraction drifted: {ext4.splitlines()[-1]}"

with open("target/f2fs_extract.out") as f:
    f2fs = f.read()
m = re.search(r"(\d+) dependencies \(SD (\d+), CPD (\d+), CCD (\d+)\)", f2fs)
assert m, f"no dependency summary: {f2fs.splitlines()[-1:]}"
total, sd, cpd, ccd = map(int, m.groups())
assert total >= 25, f"F2FS extraction below the floor: {total}"
assert sd > 0 and cpd > 0 and ccd > 0, f"missing a category: SD {sd} CPD {cpd} CCD {ccd}"

with open("target/crossfs.out") as f:
    cross = f.read()
m = re.search(r"(\d+) cross-ecosystem dependencies", cross)
assert m and int(m.group(1)) >= 1, f"no cross-FS CCDs: {cross}"
n_cross = int(m.group(1))

with open("target/crossfs_check.out") as f:
    check = f.read()
assert "disagreement" in check and "f2fs:discard" in check, (
    f"cross-FS agreement check missed the discard split: {check}"
)

with open("target/f2fs_handling.out") as f:
    handling = f.read()
m = re.search(r"(\d+) cases, (\d+) bad handling", handling)
assert m and int(m.group(1)) >= 10 and int(m.group(2)) == 0, (
    f"F2FS ConHandleCk drifted: {handling.splitlines()[-1:]}"
)

print(f"f2fs smoke OK: {total} deps (SD {sd}, CPD {cpd}, CCD {ccd}), "
      f"{n_cross} cross-FS CCDs, ext4 headline unchanged")
EOF

# Grep lint: the checker layers (contools, convalid) must stay
# ecosystem-agnostic — they may keep today's direct e2fstools imports
# (shared TypedConfig/ManualPage types and the legacy ext4 ablation
# arms) but must not grow new ones; new ecosystem wiring belongs in the
# ecosys registry layer.
python3 - <<'EOF'
import glob

ceilings = {"crates/contools/src": 5, "crates/convalid/src": 4}
for root, ceiling in ceilings.items():
    n = 0
    for path in sorted(glob.glob(f"{root}/**/*.rs", recursive=True)):
        with open(path) as f:
            n += sum("e2fstools::" in line for line in f)
    assert n <= ceiling, (
        f"{root} has {n} direct e2fstools:: references (ceiling {ceiling}): "
        "route new ecosystem wiring through the ecosys registry layer"
    )
print("ecosystem-agnostic checker lint OK")
EOF
