#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, and lint-clean under clippy.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
