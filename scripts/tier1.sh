#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lint-clean under clippy, and a
# crash-exploration benchmark smoke (tiny trace, 2 threads) that checks
# the BENCH JSON is well-formed and the engines agreed.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

./target/release/repro_crashsim --bench --smoke --threads 2 \
  --out target/bench_smoke.json
python3 - <<'EOF'
import json
with open("target/bench_smoke.json") as f:
    bench = json.load(f)
assert bench["rows"], "bench smoke produced no rows"
for row in bench["rows"]:
    assert row["reports_identical"], f"engines disagreed on {row['workload']}"
    for cfg in ("sequential", "parallel", "parallel_cached"):
        assert row[cfg]["wall_ms"] >= 0
        assert row[cfg]["blocks_replayed"] > 0
assert bench["all_reports_identical"]
print("bench smoke OK:", len(bench["rows"]), "workload(s)")
EOF
