#!/usr/bin/env bash
# Performance benchmarks, written as BENCH_*.json at the repository
# root:
#
#   * crash-exploration engines (repro_crashsim --bench →
#     BENCH_crashsim.json): legacy sequential replay vs rolling CoW
#     with parallel classification and the verdict cache, plus the
#     corpus mode racing full deep-reorder enumeration against
#     partial-order reduction with a cold and then warm persistent
#     verdict store (--store PATH, default under $TMPDIR);
#   * taint-analysis engines (repro_analyzer --bench →
#     BENCH_analyzer.json): naive whole-program sweep vs def-use
#     worklist with interned taint sets, plus the analysis cache;
#   * fs-substrate I/O (repro_fsops --bench → BENCH_fsops.json):
#     ext4sim's write-back metadata cache vs the write-through
#     baseline over format, file cycles, defrag and a ConBugCk
#     campaign;
#   * fault-injection campaigns (repro_faultsim --bench →
#     BENCH_faultsim.json): the single-threaded uncached sweep vs the
#     classification worker pool and the shared image-digest recovery
#     cache, over the errors= × journal × cache-policy grid;
#   * coverage-guided constraint fuzzing (repro_fuzz --bench →
#     BENCH_fuzz.json): solver-seeded campaigns vs the legacy
#     dependency-aware and naive random generators under the same
#     dedup-and-memoize loop, plus the incremental verdict store
#     (cold campaign, then a warm rerun that must execute nothing);
#   * configuration-validation serving (repro_service --bench →
#     BENCH_service.json): naive full-table evaluation vs the indexed
#     ValidationPlan vs the indexed plan behind the sharded verdict
#     memo, batched over the worker pool at 1/4/16 threads, with all
#     three paths asserted bit-identical per verdict.
#
# Usage: scripts/bench.sh [extra args passed to ALL binaries]
#   e.g. scripts/bench.sh --threads 4
#        scripts/bench.sh --smoke
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench
./target/release/repro_crashsim --bench "$@"
./target/release/repro_analyzer --bench "$@"
./target/release/repro_faultsim --bench "$@"
./target/release/repro_fuzz --bench "$@"
./target/release/repro_service --bench "$@"
# repro_fsops takes no --threads; strip it (and its value) from "$@"
fsops_args=()
skip=0
for arg in "$@"; do
  if [[ $skip -eq 1 ]]; then skip=0; continue; fi
  if [[ $arg == --threads ]]; then skip=1; continue; fi
  fsops_args+=("$arg")
done
./target/release/repro_fsops --bench "${fsops_args[@]+"${fsops_args[@]}"}"
