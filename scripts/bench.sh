#!/usr/bin/env bash
# Crash-exploration engine benchmark: races the legacy sequential
# replay engine against the rolling CoW engine (parallel classification,
# image-digest verdict cache) over the repro workloads and writes the
# timings to BENCH_crashsim.json at the repository root.
#
# Usage: scripts/bench.sh [extra repro_crashsim args]
#   e.g. scripts/bench.sh --threads 4
#        scripts/bench.sh --smoke --out target/bench_smoke.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench
./target/release/repro_crashsim --bench "$@"
