#!/usr/bin/env bash
# Performance benchmarks, written as BENCH_*.json at the repository
# root:
#
#   * crash-exploration engines (repro_crashsim --bench →
#     BENCH_crashsim.json): legacy sequential replay vs rolling CoW
#     with parallel classification and the verdict cache;
#   * taint-analysis engines (repro_analyzer --bench →
#     BENCH_analyzer.json): naive whole-program sweep vs def-use
#     worklist with interned taint sets, plus the analysis cache.
#
# Usage: scripts/bench.sh [extra args passed to BOTH binaries]
#   e.g. scripts/bench.sh --threads 4
#        scripts/bench.sh --smoke
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench
./target/release/repro_crashsim --bench "$@"
./target/release/repro_analyzer --bench "$@"
