//! A small scoped worker pool with a deterministic merge.
//!
//! Several of the ecosystem's hot loops are embarrassingly parallel
//! fan-outs over independent items — crash-image classification in
//! `crashsim`, configuration campaigns in ConBugCk, component analysis
//! in `confdep`. This crate sits below all of them (it depends only on
//! `crossbeam`), so both `confdep` and `contools` can share one pool;
//! `contools::pool` re-exports it under the original path.
//! [`parallel_map`] packages the shared pattern once:
//! items are pulled from a work queue by `threads` crossbeam scoped
//! workers, and the results are re-assembled **in input order**, so a
//! parallel run is byte-identical to a sequential one whenever the
//! per-item function is pure.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a requested worker count: `0` means one worker per
/// available core, anything else is taken as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Maps `f` over `items` on scoped workers, returning results in input
/// order. `threads` is resolved by [`effective_threads`] (`0` = one per
/// core); one worker (or a single item) runs inline with no thread
/// overhead. `f` receives each item's input index.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = effective_threads(threads);
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let workers = threads.min(n);
    // pull a few items per lock so short per-item work (sub-millisecond
    // campaign probes) doesn't serialise on the queue mutex; small
    // chunks keep the tail balanced across workers
    let chunk = (n / (workers * 8)).clamp(1, 16);
    let mut tagged: Vec<(usize, R)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut jobs = Vec::with_capacity(chunk);
                    loop {
                        {
                            let mut q = queue.lock().expect("work queue poisoned");
                            for _ in 0..chunk {
                                match q.pop_front() {
                                    Some(job) => jobs.push(job),
                                    None => break,
                                }
                            }
                        }
                        if jobs.is_empty() {
                            break;
                        }
                        out.extend(jobs.drain(..).map(|(i, item)| (i, f(i, item))));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items.clone(), 8, |_, v| v * 3);
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_run() {
        let items: Vec<u32> = (0..57).collect();
        let seq = parallel_map(items.clone(), 1, |i, v| (i as u32) ^ v.wrapping_mul(7));
        let par = parallel_map(items, 4, |i, v| (i as u32) ^ v.wrapping_mul(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn indices_match_items() {
        let items = vec![10usize, 20, 30];
        let out = parallel_map(items, 2, |i, v| (i, v));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..200).collect::<Vec<i32>>(), 6, |_, v| {
            counter.fetch_add(1, Ordering::Relaxed);
            v
        });
        assert_eq!(out.len(), 200);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
        // auto mode still computes the same results
        let items: Vec<u32> = (0..23).collect();
        assert_eq!(
            parallel_map(items.clone(), 0, |_, v| v + 1),
            parallel_map(items, 1, |_, v| v + 1)
        );
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(none, 4, |_, v: u8| v).is_empty());
        assert_eq!(parallel_map(vec![9u8], 4, |_, v| v + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map((0..8).collect::<Vec<i32>>(), 2, |_, v| {
            assert!(v != 5, "boom");
            v
        });
    }
}
