//! Table 4: the taxonomy of critical configuration dependencies with
//! the observed counts.

use confdep::DepKind;
use serde::{Deserialize, Serialize};

use crate::corpus::critical_deps;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyRow {
    /// Sub-category.
    pub kind: DepKind,
    /// The paper's description of the sub-category.
    pub description: String,
    /// Whether the sub-category was observed in the dataset.
    pub observed: bool,
    /// Count of critical dependencies (0 when unobserved).
    pub count: usize,
}

/// Computes Table 4 from the corpus.
pub fn taxonomy_table() -> Vec<TaxonomyRow> {
    let deps = critical_deps();
    DepKind::all()
        .into_iter()
        .map(|kind| {
            let count = deps.iter().filter(|d| d.kind == kind).count();
            TaxonomyRow {
                kind,
                description: describe(kind).to_string(),
                observed: count > 0,
                count,
            }
        })
        .collect()
}

fn describe(kind: DepKind) -> &'static str {
    match kind {
        DepKind::SdDataType => "parameter P must be of a specific data type (e.g., integer)",
        DepKind::SdValueRange => "P must be within a specific value range (e.g., P < 4096)",
        DepKind::CpdControl => "P1 of C1 can be enabled iff P2 of C1 is enabled/disabled",
        DepKind::CpdValue => "P1's value depends on P2's value (e.g., P1 < P2)",
        DepKind::CcdControl => "P1 of C1 can be enabled iff P2 of C2 is enabled/disabled",
        DepKind::CcdValue => "P1's value depends on P2 from another component",
        DepKind::CcdBehavioral => "component C1's behavior depends on P2 of C2",
    }
}

/// The total number of critical dependencies (the paper's 132).
pub fn total_critical_deps() -> usize {
    taxonomy_table().iter().map(|r| r.count).sum()
}

/// How many of the seven sub-categories were observed (the paper's 5/7).
pub fn observed_sub_categories() -> usize {
    taxonomy_table().iter().filter(|r| r.observed).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_counts() {
        let rows = taxonomy_table();
        let get = |k: DepKind| rows.iter().find(|r| r.kind == k).unwrap().count;
        assert_eq!(get(DepKind::SdDataType), 33);
        assert_eq!(get(DepKind::SdValueRange), 30);
        assert_eq!(get(DepKind::CpdControl), 4);
        assert_eq!(get(DepKind::CpdValue), 0);
        assert_eq!(get(DepKind::CcdControl), 1);
        assert_eq!(get(DepKind::CcdValue), 0);
        assert_eq!(get(DepKind::CcdBehavioral), 64);
    }

    #[test]
    fn total_is_132() {
        assert_eq!(total_critical_deps(), 132);
    }

    #[test]
    fn five_of_seven_observed() {
        assert_eq!(observed_sub_categories(), 5);
        let rows = taxonomy_table();
        let unobserved: Vec<DepKind> =
            rows.iter().filter(|r| !r.observed).map(|r| r.kind).collect();
        // the two "Value" sub-categories are included from the
        // literature for completeness but unseen in the dataset
        assert_eq!(unobserved, vec![DepKind::CpdValue, DepKind::CcdValue]);
    }

    #[test]
    fn descriptions_follow_the_paper() {
        for r in taxonomy_table() {
            assert!(!r.description.is_empty());
        }
        assert!(taxonomy_table()[0].description.contains("data type"));
    }
}
