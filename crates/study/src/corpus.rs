//! The 67-bug corpus and its 132 critical dependencies (§3 of the
//! paper).
//!
//! Structure mirrors the paper exactly:
//!
//! * 67 configuration-related bug cases distributed over the four usage
//!   scenarios as in Table 3 (13 / 1 / 17 / 36);
//! * 132 *critical dependencies* — the dependencies that directly
//!   determine whether a bug manifests — distributed over the taxonomy
//!   as in Table 4 (33 data-type, 30 value-range, 4 CPD-control,
//!   1 CCD-control, 64 CCD-behavioral);
//! * a bug may exhibit several critical dependencies (which is why 132 >
//!   67), and a dependency may be shared by several bugs (which is why
//!   the per-category bug percentages of Table 3 don't sum to the
//!   dependency counts of Table 4).

use confdep::DepKind;
use serde::{Deserialize, Serialize};

/// One critical dependency of the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalDep {
    /// Stable id (1-based).
    pub id: u32,
    /// Taxonomy sub-category.
    pub kind: DepKind,
    /// Components involved.
    pub components: Vec<String>,
    /// Human-readable summary.
    pub summary: String,
}

/// One configuration-related bug case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugCase {
    /// Stable id (1-based).
    pub id: u32,
    /// Usage scenario (1–4, the rows of Table 3).
    pub scenario: u8,
    /// Patch title.
    pub title: String,
    /// Synthetic commit hash (the corpus is synthesized; see DESIGN.md).
    pub commit: String,
    /// Ids of the critical dependencies that trigger the bug.
    pub dep_ids: Vec<u32>,
}

impl BugCase {
    /// The dependency kinds this bug involves.
    pub fn kinds(&self) -> Vec<DepKind> {
        let deps = critical_deps();
        self.dep_ids
            .iter()
            .filter_map(|id| deps.iter().find(|d| d.id == *id))
            .map(|d| d.kind)
            .collect()
    }

    /// True if the bug involves a dependency of the given category
    /// (`"SD"`, `"CPD"`, `"CCD"`).
    pub fn involves(&self, category: &str) -> bool {
        self.kinds().iter().any(|k| k.category() == category)
    }
}

// parameter vocabulary used to synthesize realistic summaries
const SD_PARAMS: [&str; 21] = [
    "blocksize", "inode_size", "reserved_percent", "journal_size", "cluster_size",
    "blocks_per_group", "inode_ratio", "inodes_count", "label", "stride", "stripe_width",
    "commit", "errors", "data", "resuid", "resgid", "size", "superblock", "readahead",
    "offset", "flex_bg_count",
];

const COMPONENTS: [&str; 6] = ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"];

/// The 132 critical dependencies, in taxonomy order: ids 1–33 data type,
/// 34–63 value range, 64–67 CPD control, 68 CCD control,
/// 69–132 CCD behavioral.
pub fn critical_deps() -> Vec<CriticalDep> {
    let mut out = Vec::with_capacity(132);
    let mut id = 0u32;
    let mut push = |kind: DepKind, components: Vec<String>, summary: String| {
        id += 1;
        out.push(CriticalDep { id, kind, components, summary });
    };

    // 33 data-type SDs
    for i in 0..33 {
        let param = SD_PARAMS[i % SD_PARAMS.len()];
        let comp = COMPONENTS[i % 3]; // mke2fs / mount / ext4 own most params
        push(
            DepKind::SdDataType,
            vec![comp.to_string()],
            format!("{comp}: '{param}' must parse as {}", if i % 4 == 0 { "a size" } else { "an integer" }),
        );
    }
    // 30 value-range SDs
    for i in 0..30 {
        let param = SD_PARAMS[(i + 7) % SD_PARAMS.len()];
        let comp = COMPONENTS[i % 3];
        push(
            DepKind::SdValueRange,
            vec![comp.to_string()],
            format!("{comp}: '{param}' must lie within its documented range"),
        );
    }
    // 4 CPD controls (the classic mke2fs feature conflicts)
    for (a, b) in [
        ("meta_bg", "resize_inode"),
        ("bigalloc", "extent"),
        ("quota", "noquota"),
        ("journal_dev", "has_journal"),
    ] {
        push(
            DepKind::CpdControl,
            vec!["mke2fs".to_string()],
            format!("mke2fs: '{a}' and '{b}' cannot be combined"),
        );
    }
    // 1 CCD control (dax requires a compatible on-image feature set)
    push(
        DepKind::CcdControl,
        vec!["mount".to_string(), "mke2fs".to_string()],
        "mount: '-o dax' can only be enabled when mke2fs created the fs without inline_data"
            .to_string(),
    );
    // 64 CCD behaviorals — one per CCD-involving bug
    let readers = ["mount", "ext4", "e4defrag", "resize2fs", "e2fsck"];
    let writer_params = [
        "sparse_super2", "size", "64bit", "meta_bg", "bigalloc", "inline_data", "has_journal",
        "extent", "resize_inode", "uninit_bg", "metadata_csum", "blocksize", "inode_size",
        "sparse_super", "dir_index", "journal_size",
    ];
    for i in 0..64 {
        let reader = readers[i % readers.len()];
        let param = writer_params[i % writer_params.len()];
        push(
            DepKind::CcdBehavioral,
            vec!["mke2fs".to_string(), reader.to_string()],
            format!("{reader}: behaviour depends on the mke2fs '{param}' parameter recorded in the superblock"),
        );
    }
    debug_assert_eq!(out.len(), 132);
    out
}

/// Scenario sizes of Table 3.
pub const SCENARIO_SIZES: [usize; 4] = [13, 1, 17, 36];

/// Number of bugs per scenario that involve a CCD (Table 3's last
/// column: 13, 1, 17, 34).
pub const SCENARIO_CCD: [usize; 4] = [13, 1, 17, 34];

/// Number of bugs per scenario that involve a CPD (Table 3: 1, 0, 0, 4).
pub const SCENARIO_CPD: [usize; 4] = [1, 0, 0, 4];

const TITLE_VERBS: [&str; 6] =
    ["fix", "avoid", "correct", "handle", "validate", "prevent"];
const TITLE_SYMPTOMS: [&str; 8] = [
    "metadata corruption",
    "incorrect free blocks count",
    "mount failure",
    "infinite loop",
    "stale backup superblock",
    "overflow in geometry calculation",
    "spurious fsck error",
    "data loss after resize",
];

/// The 67-bug corpus. Deterministic: the same corpus is produced on
/// every call.
pub fn bug_corpus() -> Vec<BugCase> {
    let mut out = Vec::with_capacity(67);
    let mut bug_id = 0u32;
    // rotating assignment of critical deps
    let mut next_sd = 0u32; // 67 links over 63 unique SD deps (ids 1..=63)
    let mut next_behavioral = 69u32; // ids 69..=132
    let mut cpd_ids = [64u32, 65, 66, 67, 64].into_iter(); // 5 links, 4 unique

    for (scenario_idx, &n) in SCENARIO_SIZES.iter().enumerate() {
        let scenario = scenario_idx as u8 + 1;
        for k in 0..n {
            bug_id += 1;
            let mut dep_ids = Vec::new();
            // every bug has at least one SD (Table 3: SD 100%)
            dep_ids.push(next_sd % 63 + 1);
            next_sd += 1;
            // CCD flags: the first SCENARIO_CCD[s] bugs of the scenario
            if k < SCENARIO_CCD[scenario_idx] {
                if bug_id == 1 {
                    dep_ids.push(68); // the single CCD-control dep
                } else {
                    dep_ids.push(next_behavioral);
                    next_behavioral += 1;
                }
            }
            // CPD flags: the last SCENARIO_CPD[s] bugs of the scenario
            if n - k <= SCENARIO_CPD[scenario_idx] {
                dep_ids.push(cpd_ids.next().expect("five CPD links"));
            }
            let verb = TITLE_VERBS[bug_id as usize % TITLE_VERBS.len()];
            let symptom = TITLE_SYMPTOMS[bug_id as usize % TITLE_SYMPTOMS.len()];
            let comp = match scenario {
                1 => COMPONENTS[bug_id as usize % 3],
                2 => "e4defrag",
                3 => "resize2fs",
                _ => "e2fsck",
            };
            out.push(BugCase {
                id: bug_id,
                scenario,
                title: format!("{comp}: {verb} {symptom} under specific configurations"),
                commit: format!("{:07x}", 0x100_0000u32 + bug_id * 7919),
                dep_ids,
            });
        }
    }
    debug_assert_eq!(out.len(), 67);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_has_67_bugs_in_paper_distribution() {
        let bugs = bug_corpus();
        assert_eq!(bugs.len(), 67);
        for s in 1..=4u8 {
            let n = bugs.iter().filter(|b| b.scenario == s).count();
            assert_eq!(n, SCENARIO_SIZES[s as usize - 1]);
        }
    }

    #[test]
    fn critical_deps_match_table4() {
        let deps = critical_deps();
        assert_eq!(deps.len(), 132);
        let count = |k: DepKind| deps.iter().filter(|d| d.kind == k).count();
        assert_eq!(count(DepKind::SdDataType), 33);
        assert_eq!(count(DepKind::SdValueRange), 30);
        assert_eq!(count(DepKind::CpdControl), 4);
        assert_eq!(count(DepKind::CpdValue), 0); // unseen in the dataset
        assert_eq!(count(DepKind::CcdControl), 1);
        assert_eq!(count(DepKind::CcdValue), 0); // unseen in the dataset
        assert_eq!(count(DepKind::CcdBehavioral), 64);
    }

    #[test]
    fn every_bug_has_an_sd() {
        for b in bug_corpus() {
            assert!(b.involves("SD"), "bug {} lacks an SD", b.id);
        }
    }

    #[test]
    fn ccd_bug_counts_match_table3() {
        let bugs = bug_corpus();
        for s in 1..=4u8 {
            let n = bugs.iter().filter(|b| b.scenario == s && b.involves("CCD")).count();
            assert_eq!(n, SCENARIO_CCD[s as usize - 1], "scenario {s}");
        }
        let total: usize = bugs.iter().filter(|b| b.involves("CCD")).count();
        assert_eq!(total, 65); // 97.0% of 67
    }

    #[test]
    fn cpd_bug_counts_match_table3() {
        let bugs = bug_corpus();
        for s in 1..=4u8 {
            let n = bugs.iter().filter(|b| b.scenario == s && b.involves("CPD")).count();
            assert_eq!(n, SCENARIO_CPD[s as usize - 1], "scenario {s}");
        }
    }

    #[test]
    fn every_critical_dep_is_referenced() {
        let bugs = bug_corpus();
        let used: BTreeSet<u32> = bugs.iter().flat_map(|b| b.dep_ids.iter().copied()).collect();
        for d in critical_deps() {
            assert!(used.contains(&d.id), "dep {} ({}) unused", d.id, d.summary);
        }
    }

    #[test]
    fn some_deps_are_shared_across_bugs() {
        // 132 unique deps but more links: a bug case may exhibit
        // multiple critical dependencies and vice versa
        let bugs = bug_corpus();
        let links: usize = bugs.iter().map(|b| b.dep_ids.len()).sum();
        assert!(links > 132, "links {links}");
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(bug_corpus(), bug_corpus());
        assert_eq!(critical_deps(), critical_deps());
    }

    #[test]
    fn commits_are_unique() {
        let bugs = bug_corpus();
        let commits: BTreeSet<&String> = bugs.iter().map(|b| &b.commit).collect();
        assert_eq!(commits.len(), bugs.len());
    }
}
