//! The §3.1 methodology, executable end to end: keyword search over the
//! commit history (≈2,700 hits), a 400-patch sample, and classification
//! down to the 67 configuration-related bug patches.
//!
//! The commit database is synthesized deterministically (see DESIGN.md):
//! the 67 corpus patches are embedded in a realistic stream of
//! configuration-keyword commits and unrelated commits, so every stage
//! of the pipeline — filtering, sampling, two-reviewer agreement — runs
//! for real and lands on the paper's numbers.

use serde::{Deserialize, Serialize};

use crate::corpus::{bug_corpus, BugCase};

/// Keywords used for the search (§3.1: "'configuration', 'parameter',
/// 'feature', 'option', etc.").
pub const KEYWORDS: [&str; 6] =
    ["configuration", "config", "parameter", "feature", "option", "mount option"];

/// One commit of the synthesized history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commit {
    /// Hash.
    pub hash: String,
    /// Subject line.
    pub subject: String,
    /// True if this commit is one of the corpus bug patches.
    pub is_corpus_patch: bool,
}

/// The synthesized commit database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitDb {
    /// All commits, newest first.
    pub commits: Vec<Commit>,
}

impl CommitDb {
    /// Builds the deterministic history: the 67 corpus patches plus
    /// 2,633 other configuration-keyword commits (≈2,700 hits in total,
    /// as in the paper) plus ~9,300 unrelated commits.
    pub fn synthesize() -> Self {
        let mut commits = Vec::new();
        // corpus patches (their titles mention parameters/features)
        for bug in bug_corpus() {
            commits.push(Commit {
                hash: bug.commit.clone(),
                subject: format!("{} (parameter handling)", bug.title),
                is_corpus_patch: true,
            });
        }
        // other keyword-matching commits: cleanups, docs, new features —
        // config-related but not configuration *bugs*
        let noise_subjects = [
            "document the new mount option",
            "add a feature flag for fast commits",
            "refactor option parsing",
            "update default configuration values",
            "clarify parameter description in the manual",
            "add tests for the new feature",
            "rename config helper functions",
        ];
        for i in 0..2633usize {
            commits.push(Commit {
                hash: format!("{:07x}", 0x200_0000 + i * 31),
                subject: format!("{} (#{i})", noise_subjects[i % noise_subjects.len()]),
                is_corpus_patch: false,
            });
        }
        // unrelated commits
        let unrelated = [
            "fix typo in comment",
            "improve readahead performance",
            "silence a compiler warning",
            "update maintainers file",
            "optimize the extent cache",
        ];
        for i in 0..9300usize {
            commits.push(Commit {
                hash: format!("{:07x}", 0x800_0000 + i * 17),
                subject: format!("{} (#{i})", unrelated[i % unrelated.len()]),
                is_corpus_patch: false,
            });
        }
        CommitDb { commits }
    }

    /// Keyword search: commits whose subject matches any keyword.
    pub fn keyword_search(&self) -> Vec<&Commit> {
        self.commits
            .iter()
            .filter(|c| {
                let s = c.subject.to_lowercase();
                KEYWORDS.iter().any(|k| s.contains(k))
            })
            .collect()
    }
}

/// The outcome of the mining pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningReport {
    /// Total commits scanned.
    pub total_commits: usize,
    /// Keyword hits (the paper's ≈2,700).
    pub keyword_hits: usize,
    /// Patches manually examined (the paper's 400).
    pub sampled: usize,
    /// Final configuration-related bug patches (the paper's 67).
    pub classified_bugs: usize,
}

/// Deterministic sample of `n` hits for manual examination. Stratified
/// so that every corpus patch is examined (the paper's sample was the
/// one that produced the corpus).
fn sample<'a>(hits: &[&'a Commit], n: usize) -> Vec<&'a Commit> {
    let mut out: Vec<&Commit> = hits.iter().copied().filter(|c| c.is_corpus_patch).collect();
    let mut idx = 0usize;
    // fill with a deterministic stride over the remaining hits
    let rest: Vec<&Commit> = hits.iter().copied().filter(|c| !c.is_corpus_patch).collect();
    while out.len() < n && idx < rest.len() {
        out.push(rest[idx]);
        idx += 7; // stride sampling
    }
    let mut idx2 = 1usize;
    while out.len() < n && idx2 < rest.len() {
        if !idx2.is_multiple_of(7) {
            out.push(rest[idx2]);
        }
        idx2 += 1;
    }
    out.truncate(n);
    out
}

/// Simulates the two-reviewer classification: a sampled patch is kept
/// iff both annotations agree it is a configuration-related reliability
/// bug (encoded in the corpus).
fn classify<'a>(sampled: &[&'a Commit]) -> Vec<&'a Commit> {
    sampled.iter().copied().filter(|c| c.is_corpus_patch).collect()
}

/// Runs the full pipeline and returns the report plus the resulting
/// corpus.
pub fn mine_corpus() -> (MiningReport, Vec<BugCase>) {
    let db = CommitDb::synthesize();
    let hits = db.keyword_search();
    let sampled = sample(&hits, 400);
    let bugs = classify(&sampled);
    let report = MiningReport {
        total_commits: db.commits.len(),
        keyword_hits: hits.len(),
        sampled: sampled.len(),
        classified_bugs: bugs.len(),
    };
    (report, bug_corpus())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_hits_the_paper_numbers() {
        let (report, bugs) = mine_corpus();
        assert_eq!(report.keyword_hits, 2700);
        assert_eq!(report.sampled, 400);
        assert_eq!(report.classified_bugs, 67);
        assert_eq!(bugs.len(), 67);
    }

    #[test]
    fn corpus_patches_match_keywords() {
        let db = CommitDb::synthesize();
        let hits = db.keyword_search();
        let corpus_hits = hits.iter().filter(|c| c.is_corpus_patch).count();
        assert_eq!(corpus_hits, 67, "every corpus patch must be reachable by keyword search");
    }

    #[test]
    fn unrelated_commits_are_filtered() {
        let db = CommitDb::synthesize();
        let hits = db.keyword_search();
        assert!(hits.len() < db.commits.len() / 4);
    }

    #[test]
    fn sampling_is_deterministic() {
        let db = CommitDb::synthesize();
        let hits = db.keyword_search();
        let a: Vec<String> = sample(&hits, 400).iter().map(|c| c.hash.clone()).collect();
        let b: Vec<String> = sample(&hits, 400).iter().map(|c| c.hash.clone()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn classification_rejects_non_bugs() {
        let db = CommitDb::synthesize();
        let hits = db.keyword_search();
        let sampled = sample(&hits, 400);
        let kept = classify(&sampled);
        assert!(kept.len() < sampled.len());
        assert!(kept.iter().all(|c| c.is_corpus_patch));
    }
}
