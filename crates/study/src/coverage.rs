//! Table 2: configuration coverage of the de-facto test suites.
//!
//! The suites are modelled in [`xtests`](crate::xtests): each test case
//! records which configuration parameters its invocations set. Coverage
//! is the share of each component's parameter universe (defined by the
//! owning [`ecosys::Ecosystem`]'s `ParamSpec` registry) that any case
//! ever exercises.

use std::collections::BTreeSet;

use ecosys::Ecosystem;
use serde::{Deserialize, Serialize};

use crate::xtests::{e2fsprogs_test_suite, xfstest_suite, TestSuite};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Test suite name.
    pub suite: String,
    /// Target software.
    pub target: String,
    /// Total parameters of the target.
    pub total: usize,
    /// Parameters the suite exercises.
    pub used: usize,
}

impl CoverageRow {
    /// Coverage percentage.
    pub fn pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.used as f64 / self.total as f64
        }
    }
}

fn used_params(suite: &TestSuite, components: &[&str]) -> usize {
    let used: BTreeSet<(String, String)> = suite
        .cases
        .iter()
        .flat_map(|c| c.params.iter())
        .filter(|(comp, _)| components.contains(&comp.as_str()))
        .cloned()
        .collect();
    used.len()
}

/// Size of a component subset of an ecosystem's parameter universe —
/// counted against *that ecosystem's* registry, so a same-named mount
/// parameter in another ecosystem never inflates the denominator.
pub fn universe_for(eco: &Ecosystem, components: &[&str]) -> usize {
    eco.registry()
        .iter()
        .filter(|s| components.contains(&s.component.as_str()))
        .count()
}

/// Computes Table 2 — the original single-ecosystem entry point,
/// delegating to [`coverage_table_for`] over Ext4 so the paper's
/// 29/6/7 "used" counts stay pinned.
pub fn coverage_table() -> Vec<CoverageRow> {
    coverage_table_for(&ecosys::ext4())
}

/// Computes the Table-2 analog for one registered ecosystem: every
/// modelled de-facto suite whose target components belong to the
/// ecosystem, measured against the ecosystem's own parameter
/// registry. The xfstest and e2fsprogs suites target Ext4; no
/// de-facto suite is modelled for the F2FS substrate (its coverage
/// story is the solver-guided fuzz campaign instead), so its table is
/// empty — callers report the fuzz polarity coverage for it.
pub fn coverage_table_for(eco: &Ecosystem) -> Vec<CoverageRow> {
    if eco.name != "ext4" {
        return Vec::new();
    }
    let xfs = xfstest_suite();
    let e2p = e2fsprogs_test_suite();
    // "Ext4" in Table 2 = the whole mke2fs + mount + ext4 surface
    let ext4_components = ["mke2fs", "mount", "ext4"];
    vec![
        CoverageRow {
            suite: "xfstest".to_string(),
            target: "Ext4".to_string(),
            total: universe_for(eco, &ext4_components),
            used: used_params(&xfs, &ext4_components),
        },
        CoverageRow {
            suite: "e2fsprogs-test".to_string(),
            target: "e2fsck".to_string(),
            total: universe_for(eco, &["e2fsck"]),
            used: used_params(&e2p, &["e2fsck"]),
        },
        CoverageRow {
            suite: "e2fsprogs-test".to_string(),
            target: "resize2fs".to_string(),
            total: universe_for(eco, &["resize2fs"]),
            used: used_params(&e2p, &["resize2fs"]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let rows = coverage_table();
        // xfstest / Ext4: 29 used of a universe > 85
        assert_eq!(rows[0].used, 29);
        assert!(rows[0].total > 85, "Ext4 universe {}", rows[0].total);
        assert!(rows[0].pct() < 34.2, "coverage must be below 34.1%: {}", rows[0].pct());
        // e2fsprogs-test / e2fsck: 6 of > 35
        assert_eq!(rows[1].used, 6);
        assert!(rows[1].total > 35);
        assert!(rows[1].pct() < 17.2);
        // e2fsprogs-test / resize2fs: 7 of > 15
        assert_eq!(rows[2].used, 7);
        assert!(rows[2].total > 15);
        assert!(rows[2].pct() < 46.8);
    }

    #[test]
    fn less_than_half_of_parameters_are_tested() {
        // the paper's headline for §2
        for row in coverage_table() {
            assert!(row.pct() < 50.0, "{} covers {:.1}%", row.suite, row.pct());
        }
    }

    #[test]
    fn per_ecosystem_universes_are_disjoint_denominators() {
        // the f2fs registry must never leak into an ext4 denominator
        // (or vice versa): each universe is counted against its own
        // ecosystem's registry only
        let ext4 = ecosys::ext4();
        let f2fs = ecosys::f2fs();
        assert_eq!(universe_for(&ext4, &["mkfs_f2fs"]), 0);
        assert_eq!(universe_for(&f2fs, &["mke2fs"]), 0);
        assert!(universe_for(&f2fs, &["mkfs_f2fs", "f2fs"]) >= 20);
        // the legacy entry point is the ext4 delegation, row for row
        assert_eq!(coverage_table(), coverage_table_for(&ext4));
        // no de-facto suite is modelled for the second ecosystem
        assert!(coverage_table_for(&f2fs).is_empty());
    }

    #[test]
    fn coverage_counts_unique_parameters() {
        // exercising the same parameter in many cases counts once
        let xfs = xfstest_suite();
        let total_mentions: usize = xfs.cases.iter().map(|c| c.params.len()).sum();
        assert!(total_mentions > 29, "cases repeat parameters");
    }
}
