//! Models of the de-facto test suites (xfstest and e2fsprogs-test),
//! sized to their real configuration coverage profile.
//!
//! Each test case records the configuration parameters its utility
//! invocations set — exactly the information Table 2 counts. The case
//! names follow the real suites' numbering style.

use serde::{Deserialize, Serialize};

/// One test case of a suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// Case name (`ext4/001`, `f_zero_group`, ...).
    pub name: String,
    /// What the case checks.
    pub description: String,
    /// Parameters exercised: `(component, parameter)`.
    pub params: Vec<(String, String)>,
}

/// A test suite: a named list of cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestSuite {
    /// Suite name.
    pub name: String,
    /// The cases.
    pub cases: Vec<TestCase>,
}

fn case(name: &str, description: &str, params: &[(&str, &str)]) -> TestCase {
    TestCase {
        name: name.to_string(),
        description: description.to_string(),
        params: params.iter().map(|(c, p)| (c.to_string(), p.to_string())).collect(),
    }
}

/// The xfstest model: generic + ext4-specific cases exercising 29 of the
/// Ext4 ecosystem's parameters (as in Table 2).
pub fn xfstest_suite() -> TestSuite {
    TestSuite {
        name: "xfstest".to_string(),
        cases: vec![
            case("generic/001", "basic file creation and removal", &[("mke2fs", "blocksize")]),
            case("generic/013", "fsstress on a default fs", &[("mke2fs", "blocksize"), ("mount", "rw")]),
            case("generic/050", "read-only mount behaviour", &[("mount", "ro")]),
            case("generic/081", "remount with different options", &[("mount", "ro"), ("mount", "rw")]),
            case("ext4/001", "extent-mapped fallocate", &[("mke2fs", "extent")]),
            case("ext4/003", "bigalloc basic operations", &[("mke2fs", "bigalloc"), ("mke2fs", "extent")]),
            case("ext4/005", "journal-less mount", &[("mke2fs", "has_journal"), ("mount", "noload")]),
            case("ext4/007", "inline data small files", &[("mke2fs", "inline_data")]),
            case("ext4/016", "resize on a meta_bg filesystem", &[("mke2fs", "meta_bg"), ("mke2fs", "size")]),
            case("ext4/021", "64bit large filesystem", &[("mke2fs", "64bit"), ("mke2fs", "size")]),
            case("ext4/023", "resize_inode growth reserve", &[("mke2fs", "resize_inode"), ("mke2fs", "size")]),
            case("ext4/026", "metadata checksums survive remount", &[("mke2fs", "metadata_csum")]),
            case("ext4/028", "sparse_super backup placement", &[("mke2fs", "sparse_super")]),
            case("ext4/032", "inode size 256 xattr room", &[("mke2fs", "inode_size")]),
            case("ext4/033", "reserved blocks percentage", &[("mke2fs", "reserved_percent")]),
            case("ext4/035", "volume label round trip", &[("mke2fs", "label")]),
            case("ext4/037", "journal size bounds", &[("mke2fs", "journal_size"), ("mke2fs", "has_journal")]),
            case("ext4/039", "blocks per group override", &[("mke2fs", "blocks_per_group")]),
            case("ext4/042", "data journalling mode", &[("mount", "data"), ("mke2fs", "has_journal")]),
            case("ext4/044", "errors=remount-ro behaviour", &[("mount", "errors")]),
            case("ext4/045", "commit interval tuning", &[("mount", "commit")]),
            case("ext4/048", "discard on delete", &[("mount", "discard")]),
            case("ext4/051", "block validity checking", &[("mount", "block_validity")]),
            case("ext4/053", "acl enforcement", &[("mount", "acl")]),
            case("ext4/054", "user xattr namespace", &[("mount", "user_xattr")]),
            case("ext4/306", "mballoc stress with stats", &[("ext4", "mb_stats")]),
            case("ext4/307", "allocator scan limits", &[("ext4", "mb_max_to_scan"), ("ext4", "mb_min_to_scan")]),
            case("ext4/308", "fragmented allocation", &[("ext4", "mb_max_to_scan"), ("mke2fs", "blocksize")]),
        ],
    }
}

/// The e2fsprogs-test model: checker and resizer regression cases
/// exercising 6 e2fsck and 7 resize2fs parameters (as in Table 2).
pub fn e2fsprogs_test_suite() -> TestSuite {
    TestSuite {
        name: "e2fsprogs-test".to_string(),
        cases: vec![
            case("f_zero_group", "recover zeroed group descriptors", &[("e2fsck", "yes"), ("e2fsck", "force")]),
            case("f_unused_itable", "uninitialised inode table handling", &[("e2fsck", "preen")]),
            case("f_yes_all", "non-interactive repair", &[("e2fsck", "yes")]),
            case("f_readonly_check", "report-only run", &[("e2fsck", "no")]),
            case("f_alt_super", "recovery from a backup superblock", &[("e2fsck", "superblock"), ("e2fsck", "blocksize")]),
            case("f_force_check", "force a check of a clean fs", &[("e2fsck", "force")]),
            case("r_move_itable", "grow with inode table moves", &[("resize2fs", "device"), ("resize2fs", "size")]),
            case("r_min_itable", "shrink to minimum", &[("resize2fs", "minimize"), ("resize2fs", "device")]),
            case("r_print_min", "report the minimum size", &[("resize2fs", "print_min")]),
            case("r_forced_grow", "grow a dirty image with -f", &[("resize2fs", "force"), ("resize2fs", "size")]),
            case("r_progress", "progress reporting", &[("resize2fs", "progress")]),
            case("r_64bit_grow", "grow past 2^32 blocks", &[("resize2fs", "enable_64bit"), ("resize2fs", "size")]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn suite_parameters_exist_in_the_universe() {
        // every (component, param) a case claims must be a real
        // parameter of that component
        for suite in [xfstest_suite(), e2fsprogs_test_suite()] {
            for c in &suite.cases {
                for (comp, param) in &c.params {
                    let known = e2fstools::params::params_of(comp);
                    assert!(
                        known.iter().any(|p| &p.name == param),
                        "{}: unknown parameter {comp}:{param}",
                        c.name
                    );
                }
            }
        }
    }

    #[test]
    fn xfstest_exercises_29_ext4_params() {
        let s = xfstest_suite();
        let used: BTreeSet<(String, String)> =
            s.cases.iter().flat_map(|c| c.params.iter().cloned()).collect();
        assert_eq!(used.len(), 29);
    }

    #[test]
    fn e2fsprogs_split_is_6_and_7() {
        let s = e2fsprogs_test_suite();
        let by_comp = |comp: &str| {
            s.cases
                .iter()
                .flat_map(|c| c.params.iter())
                .filter(|(c2, _)| c2 == comp)
                .map(|(_, p)| p.clone())
                .collect::<BTreeSet<String>>()
                .len()
        };
        assert_eq!(by_comp("e2fsck"), 6);
        assert_eq!(by_comp("resize2fs"), 7);
    }

    #[test]
    fn case_names_are_unique() {
        for suite in [xfstest_suite(), e2fsprogs_test_suite()] {
            let names: BTreeSet<&String> = suite.cases.iter().map(|c| &c.name).collect();
            assert_eq!(names.len(), suite.cases.len(), "{}", suite.name);
        }
    }
}
