//! Table 3: distribution of the configuration bugs over the four usage
//! scenarios, with the share of cases involving SD / CPD / CCD.

use serde::{Deserialize, Serialize};

use crate::corpus::{bug_corpus, BugCase};

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Scenario number (1–4).
    pub scenario: u8,
    /// Row label (the component pipeline).
    pub label: String,
    /// Bugs in the scenario.
    pub bugs: usize,
    /// Bugs involving a self-dependency.
    pub sd: usize,
    /// Bugs involving a cross-parameter dependency.
    pub cpd: usize,
    /// Bugs involving a cross-component dependency.
    pub ccd: usize,
}

impl ScenarioRow {
    /// SD percentage of the row.
    pub fn sd_pct(&self) -> f64 {
        pct(self.sd, self.bugs)
    }

    /// CPD percentage of the row.
    pub fn cpd_pct(&self) -> f64 {
        pct(self.cpd, self.bugs)
    }

    /// CCD percentage of the row.
    pub fn ccd_pct(&self) -> f64 {
        pct(self.ccd, self.bugs)
    }
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// The whole of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Scenario rows in paper order.
    pub rows: Vec<ScenarioRow>,
    /// Totals row.
    pub total: ScenarioRow,
}

/// Labels of the four scenarios as printed in Table 3.
pub const SCENARIO_LABELS: [&str; 4] = [
    "mke2fs - mount - Ext4",
    "mke2fs - mount - Ext4 - e4defrag",
    "mke2fs - mount - Ext4 - umount - resize2fs",
    "mke2fs - mount - Ext4 - umount - e2fsck",
];

/// Classifies a set of bug cases into Table 3.
pub fn classify(bugs: &[BugCase]) -> Table3 {
    let mut rows = Vec::new();
    for s in 1..=4u8 {
        let in_scenario: Vec<&BugCase> = bugs.iter().filter(|b| b.scenario == s).collect();
        rows.push(ScenarioRow {
            scenario: s,
            label: SCENARIO_LABELS[s as usize - 1].to_string(),
            bugs: in_scenario.len(),
            sd: in_scenario.iter().filter(|b| b.involves("SD")).count(),
            cpd: in_scenario.iter().filter(|b| b.involves("CPD")).count(),
            ccd: in_scenario.iter().filter(|b| b.involves("CCD")).count(),
        });
    }
    let total = ScenarioRow {
        scenario: 0,
        label: "Total".to_string(),
        bugs: rows.iter().map(|r| r.bugs).sum(),
        sd: rows.iter().map(|r| r.sd).sum(),
        cpd: rows.iter().map(|r| r.cpd).sum(),
        ccd: rows.iter().map(|r| r.ccd).sum(),
    };
    Table3 { rows, total }
}

/// Classifies the standard corpus.
pub fn classify_corpus() -> Table3 {
    classify(&bug_corpus())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row_counts() {
        let t = classify_corpus();
        let bugs: Vec<usize> = t.rows.iter().map(|r| r.bugs).collect();
        assert_eq!(bugs, vec![13, 1, 17, 36]);
        assert_eq!(t.total.bugs, 67);
    }

    #[test]
    fn finding1_majority_involves_multiple_components() {
        // "The majority cases (97.0%) involves critical parameters from
        //  more than one components."
        let t = classify_corpus();
        assert_eq!(t.total.ccd, 65);
        assert!((t.total.ccd_pct() - 97.0).abs() < 0.1, "ccd% = {}", t.total.ccd_pct());
    }

    #[test]
    fn sd_is_always_involved() {
        let t = classify_corpus();
        for r in &t.rows {
            assert_eq!(r.sd, r.bugs, "scenario {} SD must be 100%", r.scenario);
            assert!((r.sd_pct() - 100.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn cpd_is_non_negligible() {
        // Table 3: CPD total 5 (7.5%)
        let t = classify_corpus();
        assert_eq!(t.total.cpd, 5);
        assert!((t.total.cpd_pct() - 7.5).abs() < 0.1);
        let cpd: Vec<usize> = t.rows.iter().map(|r| r.cpd).collect();
        assert_eq!(cpd, vec![1, 0, 0, 4]);
    }

    #[test]
    fn per_scenario_ccd_matches_paper() {
        let t = classify_corpus();
        let ccd: Vec<usize> = t.rows.iter().map(|r| r.ccd).collect();
        assert_eq!(ccd, vec![13, 1, 17, 34]);
        // scenario 4: 94.4%
        assert!((t.rows[3].ccd_pct() - 94.4).abs() < 0.1);
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let t = classify(&[]);
        assert_eq!(t.total.bugs, 0);
        assert_eq!(t.total.sd_pct(), 0.0);
    }
}
