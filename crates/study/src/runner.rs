//! An executable driver for the modelled test suites: every
//! [`TestCase`] is turned into a real run
//! against the simulated ecosystem — format with the case's `mke2fs`
//! parameters, mount with its `mount` options, run a workload, then run
//! the offline utilities the case exercises.
//!
//! This is also the integration point for ConBugCk (§4.2): the paper's
//! plugin "replaces the configuration loading logic and manipulates
//! configurations without violating dependencies" — here,
//! [`run_suite_with_config`] swaps each case's configuration for a
//! generated one while keeping the case's operations, so the suite runs
//! under arbitrary configuration states.

use blockdev::MemDevice;
use e2fstools::{E2fsck, FsckMode, Mke2fs, MountCmd, Resize2fs};
use ext4sim::Ext4Fs;
use serde::{Deserialize, Serialize};

use crate::xtests::{TestCase, TestSuite};

/// The outcome of one suite run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteRunResult {
    /// Cases executed.
    pub cases_run: usize,
    /// Cases that completed their whole pipeline.
    pub cases_passed: usize,
    /// Failures as (case name, error).
    pub failures: Vec<(String, String)>,
}

impl SuiteRunResult {
    /// Pass rate in [0, 1].
    pub fn pass_rate(&self) -> f64 {
        if self.cases_run == 0 {
            0.0
        } else {
            self.cases_passed as f64 / self.cases_run as f64
        }
    }
}

/// The configuration a case runs under (derivable from its parameter
/// list, or substituted by ConBugCk).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseConfig {
    /// `mke2fs` arguments (without device/size operands).
    pub mkfs_args: Vec<String>,
    /// `mount -o` string.
    pub mount_opts: String,
}

/// Derives the concrete configuration a case's parameter list implies.
pub fn config_for_case(case: &TestCase) -> CaseConfig {
    let mut mkfs_args = vec!["-b".to_string(), "1024".to_string()];
    let mut features: Vec<String> = Vec::new();
    let mut mount_opts: Vec<String> = Vec::new();
    for (comp, param) in &case.params {
        match (comp.as_str(), param.as_str()) {
            ("mke2fs", "blocksize") => {} // already set
            ("mke2fs", "size") => {}      // the grow target below
            ("mke2fs", "inode_size") => {
                mkfs_args.push("-I".to_string());
                mkfs_args.push("256".to_string());
            }
            ("mke2fs", "reserved_percent") => {
                mkfs_args.push("-m".to_string());
                mkfs_args.push("10".to_string());
            }
            ("mke2fs", "label") => {
                mkfs_args.push("-L".to_string());
                mkfs_args.push("xtest".to_string());
            }
            ("mke2fs", "journal_size") => {
                mkfs_args.push("-J".to_string());
                mkfs_args.push("size=512".to_string());
            }
            ("mke2fs", "blocks_per_group") => {
                mkfs_args.push("-g".to_string());
                mkfs_args.push("4096".to_string());
            }
            ("mke2fs", feature) => {
                // feature toggles; repair the known conflicts
                match feature {
                    "meta_bg" | "bigalloc" => {
                        features.push(feature.to_string());
                        features.push("^resize_inode".to_string());
                    }
                    "sparse_super2" => {
                        features.push("sparse_super2".to_string());
                        features.push("^sparse_super".to_string());
                    }
                    other => features.push(other.to_string()),
                }
            }
            ("mount", "ro") => mount_opts.push("ro".to_string()),
            ("mount", "rw") => mount_opts.push("rw".to_string()),
            ("mount", "data") => mount_opts.push("data=ordered".to_string()),
            ("mount", "errors") => mount_opts.push("errors=remount-ro".to_string()),
            ("mount", "commit") => mount_opts.push("commit=5".to_string()),
            ("mount", opt) => mount_opts.push(opt.to_string()),
            _ => {} // ext4 knobs / offline utilities handled at run time
        }
    }
    if !features.is_empty() {
        mkfs_args.push("-O".to_string());
        mkfs_args.push(features.join(","));
    }
    CaseConfig { mkfs_args, mount_opts: mount_opts.join(",") }
}

fn run_case(case: &TestCase, config: &CaseConfig) -> Result<(), String> {
    // format
    let mut argv: Vec<&str> = config.mkfs_args.iter().map(String::as_str).collect();
    argv.push("/dev/xtest");
    argv.push("12288");
    let mkfs = Mke2fs::from_args(&argv).map_err(|e| format!("mke2fs: {e}"))?;
    // size the device in fs-sized blocks so any -b choice fits
    let bs: u32 = config
        .mkfs_args
        .iter()
        .position(|a| a == "-b")
        .and_then(|i| config.mkfs_args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let (dev, _) =
        mkfs.run(MemDevice::new(bs, 16384)).map_err(|e| format!("mke2fs: {e}"))?;

    // mount + workload
    let mount =
        MountCmd::from_option_string(&config.mount_opts).map_err(|e| format!("mount: {e}"))?;
    let mut fs = mount.run(dev).map_err(|e| format!("mount: {e}"))?;
    let read_only = fs.state() == ext4sim::FsState::MountedRo;
    if !read_only {
        let root = fs.root_inode();
        let f = fs.create_file(root, "workload").map_err(|e| format!("create: {e}"))?;
        fs.write_file(f, 0, &[0x42; 3000]).map_err(|e| format!("write: {e}"))?;
        let data = fs.read_file_to_vec(f).map_err(|e| format!("read: {e}"))?;
        if data != vec![0x42; 3000] {
            return Err("data mismatch".to_string());
        }
    }
    let mut dev = fs.unmount().map_err(|e| format!("unmount: {e}"))?;

    // offline utilities the case exercises
    let uses = |comp: &str| case.params.iter().any(|(c, _)| c == comp);
    if uses("resize2fs") {
        let shrink = case.params.iter().any(|(_, p)| p == "minimize" || p == "print_min");
        let r = if shrink { Resize2fs::from_args(&["-P", "/dev/xtest"]).unwrap() } else { Resize2fs::to_size(16384) };
        let (d, _) = r.run(dev).map_err(|e| format!("resize2fs: {e}"))?;
        dev = d;
    }
    if uses("e2fsck") {
        let mode = if case.params.iter().any(|(_, p)| p == "preen") {
            FsckMode::Preen
        } else if case.params.iter().any(|(_, p)| p == "no") {
            FsckMode::Check
        } else {
            FsckMode::Fix
        };
        let (d, res) = E2fsck::with_mode(mode)
            .forced()
            .run(dev)
            .map_err(|e| format!("e2fsck: {e}"))?;
        if res.exit_code > 1 {
            return Err(format!("e2fsck found damage: exit {}", res.exit_code));
        }
        dev = d;
    }

    // final sanity: the image must still be recognisable
    Ext4Fs::open_for_maintenance(dev).map_err(|e| format!("final open: {e}"))?;
    Ok(())
}

/// Runs every case of a suite under its own derived configuration.
pub fn run_suite(suite: &TestSuite) -> SuiteRunResult {
    let mut result = SuiteRunResult::default();
    for case in &suite.cases {
        result.cases_run += 1;
        match run_case(case, &config_for_case(case)) {
            Ok(()) => result.cases_passed += 1,
            Err(e) => result.failures.push((case.name.clone(), e)),
        }
    }
    result
}

/// Runs every case of a suite under a *substituted* configuration — the
/// ConBugCk integration: same operations, different configuration state.
pub fn run_suite_with_config(suite: &TestSuite, config: &CaseConfig) -> SuiteRunResult {
    let mut result = SuiteRunResult::default();
    for case in &suite.cases {
        result.cases_run += 1;
        match run_case(case, config) {
            Ok(()) => result.cases_passed += 1,
            Err(e) => result.failures.push((case.name.clone(), e)),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xtests::{e2fsprogs_test_suite, xfstest_suite};

    #[test]
    fn xfstest_suite_runs_green() {
        let result = run_suite(&xfstest_suite());
        assert_eq!(result.cases_run, 28);
        assert_eq!(
            result.cases_passed, result.cases_run,
            "failures: {:#?}",
            result.failures
        );
        assert!((result.pass_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn e2fsprogs_suite_runs_green() {
        let result = run_suite(&e2fsprogs_test_suite());
        assert_eq!(result.cases_passed, result.cases_run, "failures: {:#?}", result.failures);
    }

    #[test]
    fn config_derivation_respects_known_conflicts() {
        // a meta_bg case must not also enable resize_inode
        let case = xfstest_suite()
            .cases
            .into_iter()
            .find(|c| c.params.iter().any(|(_, p)| p == "meta_bg"))
            .expect("a meta_bg case exists");
        let cfg = config_for_case(&case);
        let features = cfg.mkfs_args.join(" ");
        assert!(features.contains("meta_bg"));
        assert!(features.contains("^resize_inode"));
    }

    #[test]
    fn suite_runs_under_substituted_configs() {
        // the ConBugCk integration: the same suite under a different
        // (valid) configuration state still passes
        let config = CaseConfig {
            mkfs_args: vec![
                "-b".to_string(),
                "2048".to_string(),
                "-O".to_string(),
                "sparse_super2,^sparse_super,^resize_inode".to_string(),
            ],
            mount_opts: "data=writeback".to_string(),
        };
        let result = run_suite_with_config(&e2fsprogs_test_suite(), &config);
        assert_eq!(result.cases_passed, result.cases_run, "failures: {:#?}", result.failures);
    }

    #[test]
    fn invalid_substituted_config_fails_shallow() {
        // a configuration that violates a dependency dies early in every
        // case — the motivation for dependency-aware generation
        let config = CaseConfig {
            mkfs_args: vec!["-b".to_string(), "1024".to_string(), "-O".to_string(), "meta_bg".to_string()],
            mount_opts: String::new(),
        };
        let result = run_suite_with_config(&e2fsprogs_test_suite(), &config);
        assert_eq!(result.cases_passed, 0);
        assert!(result.failures.iter().all(|(_, e)| e.contains("meta_bg")));
    }
}
