//! Table 1: configuration methods of popular file systems.
//!
//! The catalog lists, for each file system, the example utilities that
//! can affect its configuration state at each of the four stages of
//! Figure 2 (create / mount / online / offline).

use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsEntry {
    /// File system name.
    pub fs: &'static str,
    /// Host operating system.
    pub os: &'static str,
    /// Create-stage utilities.
    pub create: Vec<&'static str>,
    /// Mount-stage utilities.
    pub mount: Vec<&'static str>,
    /// Online utilities (empty = none documented).
    pub online: Vec<&'static str>,
    /// Offline utilities.
    pub offline: Vec<&'static str>,
}

impl FsEntry {
    /// True if the file system can be configured at every stage.
    pub fn covers_all_stages(&self) -> bool {
        !self.create.is_empty()
            && !self.mount.is_empty()
            && !self.online.is_empty()
            && !self.offline.is_empty()
    }

    /// All utilities across stages.
    pub fn utilities(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        v.extend(&self.create);
        v.extend(&self.mount);
        v.extend(&self.online);
        v.extend(&self.offline);
        v
    }
}

/// The Table 1 catalog (same rows as the paper).
pub fn fs_catalog() -> Vec<FsEntry> {
    vec![
        FsEntry {
            fs: "Ext4",
            os: "Linux",
            create: vec!["mke2fs"],
            mount: vec!["mount"],
            online: vec!["e4defrag", "resize2fs"],
            offline: vec!["e2fsck", "resize2fs"],
        },
        FsEntry {
            fs: "XFS",
            os: "Linux",
            create: vec!["mkfs.xfs"],
            mount: vec!["mount"],
            online: vec!["xfs_fsr", "xfs_growfs"],
            offline: vec!["xfs_admin", "xfs_repair"],
        },
        FsEntry {
            fs: "BtrFS",
            os: "Linux",
            create: vec!["mkfs.btrfs"],
            mount: vec!["mount"],
            online: vec!["btrfs-balance", "btrfs-scrub"],
            offline: vec!["btrfs-check"],
        },
        FsEntry {
            fs: "UFS",
            os: "FreeBSD",
            create: vec!["newfs"],
            mount: vec!["mount"],
            online: vec!["growfs", "restore"],
            offline: vec!["dump", "fsck_ufs"],
        },
        FsEntry {
            fs: "ZFS",
            os: "FreeBSD",
            create: vec!["zfs-create"],
            mount: vec!["zfs-mount"],
            online: vec!["zfs-rollback", "zfs-set"],
            offline: vec!["zfs-destroy"],
        },
        FsEntry {
            fs: "MINIX",
            os: "Minix",
            create: vec!["mkfs"],
            mount: vec!["mount"],
            online: vec![],
            offline: vec!["fsck"],
        },
        FsEntry {
            fs: "NTFS",
            os: "Windows",
            create: vec!["format"],
            mount: vec!["mountvol"],
            online: vec!["chkdsk", "defrag"],
            offline: vec!["chkdsk", "shrink"],
        },
        FsEntry {
            fs: "APFS",
            os: "MacOS",
            create: vec!["diskutil"],
            mount: vec!["diskutil", "mount_apfs"],
            online: vec!["diskutil"],
            offline: vec!["diskutil", "fsck_apfs"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_file_systems() {
        assert_eq!(fs_catalog().len(), 8);
    }

    #[test]
    fn every_fs_has_create_mount_offline() {
        for e in fs_catalog() {
            assert!(!e.create.is_empty(), "{} lacks create", e.fs);
            assert!(!e.mount.is_empty(), "{} lacks mount", e.fs);
            assert!(!e.offline.is_empty(), "{} lacks offline", e.fs);
        }
    }

    #[test]
    fn minix_is_the_only_gap() {
        // the paper marks MINIX's online column with '-'
        let gaps: Vec<&str> =
            fs_catalog().iter().filter(|e| !e.covers_all_stages()).map(|e| e.fs).collect();
        assert_eq!(gaps, vec!["MINIX"]);
    }

    #[test]
    fn modular_design_is_common() {
        // the paper's point: many utilities per FS, not one
        for e in fs_catalog() {
            assert!(e.utilities().len() >= 3, "{} has too few utilities", e.fs);
        }
    }

    #[test]
    fn ext4_row_matches_the_studied_ecosystem() {
        let ext4 = &fs_catalog()[0];
        assert_eq!(ext4.fs, "Ext4");
        assert!(ext4.online.contains(&"e4defrag"));
        assert!(ext4.offline.contains(&"resize2fs"));
        assert!(ext4.offline.contains(&"e2fsck"));
    }
}
