//! An ext4-like file system simulator.
//!
//! This crate is the substrate that stands in for the real Ext4 in the
//! reproduction of *Understanding Configuration Dependencies of File
//! Systems* (HotStorage '22). It implements the genuine on-image metadata
//! organisation of ext4 — superblock at byte 1024, block groups with block
//! and inode bitmaps, inode tables, extent-mapped files, linear directory
//! blocks, backup superblocks placed per `sparse_super`/`sparse_super2` —
//! so that the paper's configuration surface (feature flags set at `mke2fs`
//! time, options validated at `mount` time, metadata rewritten by the
//! offline utilities) behaves like the real thing.
//!
//! The crate deliberately exposes the accounting primitives with which the
//! `resize2fs` utility (crate `e2fstools`) preserves the paper's Figure 1
//! bug: when the `sparse_super2` feature is enabled and the file system is
//! expanded, the free-block count of the last group is computed *before*
//! the new blocks are added, corrupting the accounting. This crate also
//! provides the consistency checker that detects the damage.
//!
//! # Examples
//!
//! ```
//! use blockdev::MemDevice;
//! use ext4sim::{Ext4Fs, MkfsParams};
//!
//! # fn main() -> Result<(), ext4sim::FsError> {
//! let dev = MemDevice::new(1024, 8192);
//! let params = MkfsParams::default();
//! let mut fs = Ext4Fs::format(dev, &params)?;
//! let root = fs.root_inode();
//! let file = fs.create_file(root, "hello.txt")?;
//! fs.write_file(file, 0, b"hello world")?;
//! assert_eq!(fs.read_file_to_vec(file)?, b"hello world");
//! fs.unmount()?;
//! # Ok(())
//! # }
//! ```

mod alloc;
mod bitmap;
mod cache;
mod check;
pub mod dir;
mod error;
mod extent;
mod features;
mod fs;
mod group;
mod inode;
pub mod journal;
mod layout;
mod mkfs_params;
mod mount;
mod superblock;
pub mod util;

pub use bitmap::Bitmap;
pub use cache::CachePolicy;
pub use check::{check_image, CheckReport, Inconsistency, InconsistencyKind};
pub use dir::{DirEntry, FileType, MAX_NAME_LEN};
pub use error::FsError;
pub use extent::{Extent, ExtentRoot, ExtentTree};
pub use features::{CompatFeatures, FeatureSet, IncompatFeatures, RoCompatFeatures};
pub use fs::{Ext4Fs, FsState, JOURNAL_INODE, RESERVED_INODES, ROOT_INODE};
pub use group::{bg_flags, GroupDesc};
pub use inode::{mode as inode_mode, Inode, InodeFlags, InodeNo};
pub use journal::{Journal, JournalRecord, Transaction, JBD_MAGIC};
pub use layout::Layout;
pub use mkfs_params::MkfsParams;
pub use mount::{DataMode, MountOptions};
pub use superblock::{
    errors_policy, state, Superblock, EXT4_MAGIC, SUPERBLOCK_OFFSET, SUPERBLOCK_SIZE,
};
