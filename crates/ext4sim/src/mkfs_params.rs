//! Parameters accepted by `mke2fs` (the create-stage configuration
//! surface of the paper's Figure 2).
//!
//! Parsing and user-level validation of the CLI spelling (`-b`, `-O`,
//! `-m`, ...) lives in the `e2fstools` crate; this struct is the typed
//! form plus the *kernel-level* invariants enforced again at
//! [`crate::Ext4Fs::format`] — mirroring how `mke2fs` parameters such as
//! `-O inline_data` are re-validated inside `ext4_fill_super` (§2 of the
//! paper).

use crate::features::{CompatFeatures, FeatureSet, IncompatFeatures};
use crate::FsError;

/// Typed `mke2fs` parameters.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MkfsParams {
    /// `-b`: block size in bytes. `None` selects 1024 for images under
    /// 512 MiB and 4096 otherwise (mke2fs heuristic).
    pub block_size: Option<u32>,
    /// Size parameter (blocks). `None` uses the whole device. This is the
    /// `size` that participates in the Figure 1 cross-component dependency
    /// with `resize2fs`'s size parameter.
    pub blocks_count: Option<u64>,
    /// `-N`: total inode count override.
    pub inodes_count: Option<u32>,
    /// `-i`: bytes of data per inode (used when `inodes_count` is unset).
    pub inode_ratio: u32,
    /// `-I`: bytes per on-disk inode record (128 or 256).
    pub inode_size: u16,
    /// `-m`: percentage of blocks reserved for the super-user (0–50).
    pub reserved_percent: u8,
    /// `-O`: feature set after applying all tokens.
    pub features: FeatureSet,
    /// `-C`: cluster size in bytes (requires `bigalloc`).
    pub cluster_size: Option<u32>,
    /// `-L`: volume label.
    pub label: String,
    /// `-U`: volume UUID.
    pub uuid: [u8; 16],
    /// `-J size=`: journal blocks (requires `has_journal`). `None` picks a
    /// default scaled to the fs size.
    pub journal_blocks: Option<u32>,
    /// `-E resize=`: growth headroom in blocks used to dimension the
    /// reserved GDT blocks (requires `resize_inode`).
    pub resize_headroom: Option<u64>,
    /// `-g`: blocks per group override.
    pub blocks_per_group: Option<u32>,
}

impl Default for MkfsParams {
    fn default() -> Self {
        MkfsParams {
            block_size: None,
            blocks_count: None,
            inodes_count: None,
            inode_ratio: 16384,
            inode_size: 128,
            reserved_percent: 5,
            features: FeatureSet::ext4_defaults(),
            cluster_size: None,
            label: String::new(),
            uuid: [0x42; 16],
            journal_blocks: None,
            resize_headroom: None,
            blocks_per_group: None,
        }
    }
}

impl MkfsParams {
    /// Resolves the block size for a device of `device_bytes`.
    pub fn effective_block_size(&self, device_bytes: u64) -> u32 {
        self.block_size.unwrap_or(if device_bytes < 512 * 1024 * 1024 { 1024 } else { 4096 })
    }

    /// Validates the kernel-level invariants. The utility-level checks
    /// (spelling, ranges as documented in the man page) happen in
    /// `e2fstools::mke2fs`; these are the ones the "kernel" would refuse.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidParam`] or [`FsError::ConflictingParams`]
    /// describing the first violated invariant.
    pub fn validate(&self, device_blocks_at_bs: u64) -> Result<(), FsError> {
        let bs = self.block_size.unwrap_or(4096);
        if !(1024..=65536).contains(&bs) || !bs.is_power_of_two() {
            return Err(FsError::InvalidParam {
                param: "blocksize",
                reason: format!("{bs} is not a power of 2 between 1024 and 65536"),
            });
        }
        if self.inode_size != 128 && self.inode_size != 256 {
            return Err(FsError::InvalidParam {
                param: "inode_size",
                reason: format!("{} is not 128 or 256", self.inode_size),
            });
        }
        if self.reserved_percent > 50 {
            return Err(FsError::InvalidParam {
                param: "reserved_percent",
                reason: format!("{}% exceeds the 50% maximum", self.reserved_percent),
            });
        }
        if let Some(blocks) = self.blocks_count {
            if blocks > device_blocks_at_bs {
                return Err(FsError::InvalidParam {
                    param: "size",
                    reason: format!(
                        "requested {blocks} blocks but the device has only {device_blocks_at_bs}"
                    ),
                });
            }
            if blocks < 64 {
                return Err(FsError::InvalidParam {
                    param: "size",
                    reason: format!("{blocks} blocks is too small for a file system"),
                });
            }
        }
        // CPD: meta_bg and resize_inode cannot be used together (the
        // paper's §4.3 example of a dependency missing from the manual).
        if self.features.incompat.contains(IncompatFeatures::META_BG)
            && self.features.compat.contains(CompatFeatures::RESIZE_INODE)
        {
            return Err(FsError::ConflictingParams {
                a: "meta_bg",
                b: "resize_inode",
                reason: "these features cannot be enabled together".to_string(),
            });
        }
        // CPD: bigalloc requires extents for block mapping.
        if self.features.incompat.contains(IncompatFeatures::BIGALLOC)
            && !self.features.incompat.contains(IncompatFeatures::EXTENTS)
        {
            return Err(FsError::ConflictingParams {
                a: "bigalloc",
                b: "extent",
                reason: "bigalloc requires the extent feature".to_string(),
            });
        }
        if let Some(cs) = self.cluster_size {
            // CPD: -C is only meaningful with bigalloc.
            if !self.features.incompat.contains(IncompatFeatures::BIGALLOC) {
                return Err(FsError::ConflictingParams {
                    a: "cluster_size",
                    b: "bigalloc",
                    reason: "cluster size can only be set with the bigalloc feature".to_string(),
                });
            }
            if !cs.is_power_of_two() || cs < bs || cs > bs * 64 {
                return Err(FsError::InvalidParam {
                    param: "cluster_size",
                    reason: format!(
                        "{cs} must be a power-of-two multiple of the block size (max 64x)"
                    ),
                });
            }
        }
        if self.journal_blocks.is_some()
            && !self.features.compat.contains(CompatFeatures::HAS_JOURNAL)
        {
            return Err(FsError::ConflictingParams {
                a: "journal_size",
                b: "has_journal",
                reason: "a journal size requires the has_journal feature".to_string(),
            });
        }
        if let Some(jb) = self.journal_blocks {
            if !(256..=409_600).contains(&jb) {
                return Err(FsError::InvalidParam {
                    param: "journal_size",
                    reason: format!("{jb} blocks outside the supported 256..=409600 range"),
                });
            }
        }
        if self.resize_headroom.is_some()
            && !self.features.compat.contains(CompatFeatures::RESIZE_INODE)
        {
            return Err(FsError::ConflictingParams {
                a: "resize",
                b: "resize_inode",
                reason: "growth headroom requires the resize_inode feature".to_string(),
            });
        }
        if let Some(bpg) = self.blocks_per_group {
            if bpg % 8 != 0 || bpg == 0 || bpg > bs * 8 {
                return Err(FsError::InvalidParam {
                    param: "blocks_per_group",
                    reason: format!("{bpg} must be a positive multiple of 8, at most 8*blocksize"),
                });
            }
        }
        if self.inode_ratio < bs {
            return Err(FsError::InvalidParam {
                param: "inode_ratio",
                reason: format!("{} is smaller than the block size {bs}", self.inode_ratio),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MkfsParams {
        MkfsParams { block_size: Some(1024), ..MkfsParams::default() }
    }

    #[test]
    fn defaults_validate() {
        base().validate(1 << 20).unwrap();
    }

    #[test]
    fn auto_block_size_heuristic() {
        let p = MkfsParams::default();
        assert_eq!(p.effective_block_size(100 * 1024 * 1024), 1024);
        assert_eq!(p.effective_block_size(1024 * 1024 * 1024), 4096);
    }

    #[test]
    fn rejects_non_power_of_two_block_size() {
        let p = MkfsParams { block_size: Some(3000), ..base() };
        assert!(matches!(p.validate(1 << 20), Err(FsError::InvalidParam { param: "blocksize", .. })));
    }

    #[test]
    fn rejects_block_size_out_of_range() {
        for bs in [512u32, 131072] {
            let p = MkfsParams { block_size: Some(bs), ..base() };
            assert!(p.validate(1 << 20).is_err(), "block size {bs} should be rejected");
        }
    }

    #[test]
    fn rejects_bad_inode_size() {
        let p = MkfsParams { inode_size: 200, ..base() };
        assert!(matches!(p.validate(1 << 20), Err(FsError::InvalidParam { param: "inode_size", .. })));
    }

    #[test]
    fn rejects_reserved_over_50() {
        let p = MkfsParams { reserved_percent: 51, ..base() };
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn rejects_size_beyond_device() {
        let p = MkfsParams { blocks_count: Some(2000), ..base() };
        assert!(matches!(p.validate(1000), Err(FsError::InvalidParam { param: "size", .. })));
    }

    #[test]
    fn meta_bg_conflicts_with_resize_inode() {
        let mut p = base();
        p.features.incompat.insert(IncompatFeatures::META_BG);
        // defaults include resize_inode
        let err = p.validate(1 << 20).unwrap_err();
        assert!(matches!(err, FsError::ConflictingParams { a: "meta_bg", b: "resize_inode", .. }));
        // clearing resize_inode resolves it
        p.features.compat.remove(CompatFeatures::RESIZE_INODE);
        p.validate(1 << 20).unwrap();
    }

    #[test]
    fn bigalloc_requires_extents() {
        let mut p = base();
        p.features.incompat.insert(IncompatFeatures::BIGALLOC);
        p.features.incompat.remove(IncompatFeatures::EXTENTS);
        assert!(p.validate(1 << 20).is_err());
        p.features.incompat.insert(IncompatFeatures::EXTENTS);
        p.validate(1 << 20).unwrap();
    }

    #[test]
    fn cluster_size_requires_bigalloc() {
        let mut p = MkfsParams { cluster_size: Some(16384), ..base() };
        assert!(matches!(
            p.validate(1 << 20),
            Err(FsError::ConflictingParams { a: "cluster_size", b: "bigalloc", .. })
        ));
        p.features.incompat.insert(IncompatFeatures::BIGALLOC);
        p.validate(1 << 20).unwrap();
    }

    #[test]
    fn cluster_size_range_checked() {
        let mut p = base();
        p.features.incompat.insert(IncompatFeatures::BIGALLOC);
        p.cluster_size = Some(512); // below block size
        assert!(p.validate(1 << 20).is_err());
        p.cluster_size = Some(1024 * 128); // above 64x
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn journal_size_requires_journal_feature() {
        let mut p = MkfsParams { journal_blocks: Some(1024), ..base() };
        p.features.compat.remove(CompatFeatures::HAS_JOURNAL);
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn journal_size_range() {
        let p = MkfsParams { journal_blocks: Some(100), ..base() };
        assert!(p.validate(1 << 20).is_err());
        let p = MkfsParams { journal_blocks: Some(500_000), ..base() };
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn resize_headroom_requires_resize_inode() {
        let mut p = MkfsParams { resize_headroom: Some(1 << 20), ..base() };
        p.features.compat.remove(CompatFeatures::RESIZE_INODE);
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn blocks_per_group_must_be_multiple_of_8() {
        let p = MkfsParams { blocks_per_group: Some(1001), ..base() };
        assert!(p.validate(1 << 20).is_err());
        let p = MkfsParams { blocks_per_group: Some(4096), ..base() };
        p.validate(1 << 20).unwrap();
    }

    #[test]
    fn inode_ratio_must_cover_block_size() {
        let p = MkfsParams { inode_ratio: 512, ..base() };
        assert!(p.validate(1 << 20).is_err());
    }

    #[test]
    fn too_small_fs_rejected() {
        let p = MkfsParams { blocks_count: Some(32), ..base() };
        assert!(p.validate(1 << 20).is_err());
    }
}
