//! Geometry of an image: block groups, metadata placement, backup
//! superblocks.
//!
//! The placement rules follow real ext4:
//!
//! * the primary superblock lives at byte offset 1024; with 1 KiB blocks
//!   that is block 1 (`first_data_block = 1`), with larger blocks it is
//!   block 0;
//! * each block group holds `8 * block_size` blocks (one block-bitmap
//!   block's worth), or that many *clusters* with `bigalloc`;
//! * a group that "has a super" carries, in order: superblock copy, group
//!   descriptor table, reserved GDT blocks (when `resize_inode` is on),
//!   then its block bitmap, inode bitmap and inode table;
//! * with `sparse_super`, backups live only in groups 0, 1 and powers of
//!   3, 5 and 7; with `sparse_super2`, in exactly the two groups recorded
//!   in `s_backup_bgs`; with neither, in every group.

use crate::features::{CompatFeatures, FeatureSet, IncompatFeatures, RoCompatFeatures};
use crate::util::{div_ceil, is_power_of};

/// Computed geometry of an image. Everything the utilities need to locate
/// metadata derives from this.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Layout {
    /// Block size in bytes (1024–65536, power of two).
    pub block_size: u32,
    /// Total blocks in the file system.
    pub blocks_count: u64,
    /// Blocks per block group.
    pub blocks_per_group: u32,
    /// Inodes per block group.
    pub inodes_per_group: u32,
    /// Bytes per on-disk inode (128 or 256).
    pub inode_size: u16,
    /// Size of one group descriptor (32, or 64 with the `64bit` feature).
    pub desc_size: u16,
    /// First data block (1 for 1 KiB blocks, else 0).
    pub first_data_block: u64,
    /// Blocks per allocation cluster (1 unless `bigalloc`).
    pub cluster_ratio: u32,
    /// Reserved GDT blocks per super-bearing group (for `resize_inode`).
    pub reserved_gdt_blocks: u32,
    /// The two backup groups used by `sparse_super2`.
    pub backup_bgs: [u32; 2],
    /// Feature configuration.
    pub features: FeatureSet,
}

impl Layout {
    /// Number of block groups.
    pub fn group_count(&self) -> u32 {
        let data_blocks = self.blocks_count - self.first_data_block;
        div_ceil(data_blocks, u64::from(self.blocks_per_group)) as u32
    }

    /// First block of group `g`.
    pub fn group_first_block(&self, g: u32) -> u64 {
        self.first_data_block + u64::from(g) * u64::from(self.blocks_per_group)
    }

    /// Number of blocks actually present in group `g` (the last group may
    /// be short).
    pub fn blocks_in_group(&self, g: u32) -> u32 {
        let start = self.group_first_block(g);
        let end = (start + u64::from(self.blocks_per_group)).min(self.blocks_count);
        (end - start) as u32
    }

    /// Whether group `g` carries a superblock + GDT copy.
    pub fn has_super(&self, g: u32) -> bool {
        if g == 0 {
            return true;
        }
        if self.features.compat.contains(CompatFeatures::SPARSE_SUPER2) {
            return g == self.backup_bgs[0] || g == self.backup_bgs[1];
        }
        if self.features.ro_compat.contains(RoCompatFeatures::SPARSE_SUPER) {
            return g == 1
                || is_power_of(u64::from(g), 3)
                || is_power_of(u64::from(g), 5)
                || is_power_of(u64::from(g), 7);
        }
        true
    }

    /// Groups (other than 0) that carry a backup superblock.
    pub fn backup_groups(&self) -> Vec<u32> {
        (1..self.group_count()).filter(|&g| self.has_super(g)).collect()
    }

    /// Number of blocks occupied by the group descriptor table.
    pub fn gdt_blocks(&self) -> u32 {
        let total = u64::from(self.group_count()) * u64::from(self.desc_size);
        div_ceil(total, u64::from(self.block_size)) as u32
    }

    /// Group descriptors that fit in one block.
    pub fn descs_per_block(&self) -> u32 {
        self.block_size / u32::from(self.desc_size)
    }

    /// Blocks occupied by one group's inode table.
    pub fn inode_table_blocks(&self) -> u32 {
        let total = u64::from(self.inodes_per_group) * u64::from(self.inode_size);
        div_ceil(total, u64::from(self.block_size)) as u32
    }

    /// Per-group metadata overhead in blocks: super/GDT copies (when
    /// present), the two bitmaps and the inode table.
    pub fn group_overhead(&self, g: u32) -> u32 {
        let super_part = if self.has_super(g) {
            1 + self.gdt_blocks() + self.reserved_gdt_blocks
        } else {
            0
        };
        super_part + 2 + self.inode_table_blocks()
    }

    /// Free blocks in group `g` on a fresh image (before the journal and
    /// root directory are allocated).
    pub fn initial_free_blocks(&self, g: u32) -> u32 {
        self.blocks_in_group(g).saturating_sub(self.group_overhead(g))
    }

    /// Block number of group `g`'s block bitmap.
    pub fn block_bitmap_block(&self, g: u32) -> u64 {
        let base = self.group_first_block(g);
        let super_part = if self.has_super(g) {
            1 + u64::from(self.gdt_blocks()) + u64::from(self.reserved_gdt_blocks)
        } else {
            0
        };
        base + super_part
    }

    /// Block number of group `g`'s inode bitmap.
    pub fn inode_bitmap_block(&self, g: u32) -> u64 {
        self.block_bitmap_block(g) + 1
    }

    /// First block of group `g`'s inode table.
    pub fn inode_table_block(&self, g: u32) -> u64 {
        self.inode_bitmap_block(g) + 1
    }

    /// First data block of group `g` (after all metadata).
    pub fn group_data_start(&self, g: u32) -> u64 {
        self.inode_table_block(g) + u64::from(self.inode_table_blocks())
    }

    /// Total inode count.
    pub fn inodes_count(&self) -> u32 {
        self.group_count() * self.inodes_per_group
    }

    /// The block group containing absolute block `block`.
    pub fn block_group_of(&self, block: u64) -> u32 {
        ((block - self.first_data_block) / u64::from(self.blocks_per_group)) as u32
    }

    /// Index of `block` within its group's bitmap.
    pub fn block_index_in_group(&self, block: u64) -> u32 {
        ((block - self.first_data_block) % u64::from(self.blocks_per_group)) as u32
    }

    /// The block group containing inode `ino` (1-based inode numbers).
    pub fn inode_group_of(&self, ino: u32) -> u32 {
        (ino - 1) / self.inodes_per_group
    }

    /// Index of inode `ino` within its group.
    pub fn inode_index_in_group(&self, ino: u32) -> u32 {
        (ino - 1) % self.inodes_per_group
    }

    /// Byte position of inode `ino`'s on-disk record.
    pub fn inode_position(&self, ino: u32) -> (u64, usize) {
        let g = self.inode_group_of(ino);
        let idx = self.inode_index_in_group(ino);
        let byte = u64::from(idx) * u64::from(self.inode_size);
        let block = self.inode_table_block(g) + byte / u64::from(self.block_size);
        (block, (byte % u64::from(self.block_size)) as usize)
    }

    /// Recomputes the sparse_super2 backup groups for a (possibly new)
    /// group count: real e2fsprogs places them in group 1 and the last
    /// group.
    pub fn sparse_super2_backups(group_count: u32) -> [u32; 2] {
        match group_count {
            0 | 1 => [0, 0],
            2 => [1, 0],
            n => [1, n - 1],
        }
    }

    /// Whether block numbers fit without the `64bit` feature.
    pub fn needs_64bit(blocks_count: u64) -> bool {
        blocks_count > u64::from(u32::MAX)
    }

    /// Clusters per group (== bits in the block bitmap with `bigalloc`).
    pub fn clusters_per_group(&self) -> u32 {
        self.blocks_per_group / self.cluster_ratio
    }

    /// True when the `bigalloc` feature is in effect.
    pub fn has_bigalloc(&self) -> bool {
        self.features.incompat.contains(IncompatFeatures::BIGALLOC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_1k(blocks: u64) -> Layout {
        Layout {
            block_size: 1024,
            blocks_count: blocks,
            blocks_per_group: 8192,
            inodes_per_group: 256,
            inode_size: 128,
            desc_size: 32,
            first_data_block: 1,
            cluster_ratio: 1,
            reserved_gdt_blocks: 4,
            backup_bgs: [0, 0],
            features: FeatureSet::ext4_defaults(),
        }
    }

    #[test]
    fn group_count_rounds_up() {
        let l = layout_1k(8193); // 8192 data blocks -> 1 group
        assert_eq!(l.group_count(), 1);
        let l = layout_1k(8194); // 8193 data blocks -> 2 groups
        assert_eq!(l.group_count(), 2);
    }

    #[test]
    fn last_group_is_short() {
        let l = layout_1k(12289); // groups: 8192 + 4096
        assert_eq!(l.group_count(), 2);
        assert_eq!(l.blocks_in_group(0), 8192);
        assert_eq!(l.blocks_in_group(1), 4096);
    }

    #[test]
    fn sparse_super_placement() {
        let mut l = layout_1k(8192 * 60);
        assert!(l.has_super(0));
        assert!(l.has_super(1));
        assert!(l.has_super(3));
        assert!(l.has_super(9));
        assert!(l.has_super(27));
        assert!(l.has_super(5));
        assert!(l.has_super(25));
        assert!(l.has_super(7));
        assert!(l.has_super(49));
        assert!(!l.has_super(2));
        assert!(!l.has_super(4));
        assert!(!l.has_super(10));
        // without sparse_super every group has a copy
        l.features.ro_compat.remove(RoCompatFeatures::SPARSE_SUPER);
        assert!(l.has_super(2));
        assert!(l.has_super(10));
    }

    #[test]
    fn sparse_super2_placement() {
        let mut l = layout_1k(8192 * 10);
        l.features.compat.insert(CompatFeatures::SPARSE_SUPER2);
        l.backup_bgs = Layout::sparse_super2_backups(l.group_count());
        assert_eq!(l.backup_bgs, [1, 9]);
        assert!(l.has_super(0));
        assert!(l.has_super(1));
        assert!(l.has_super(9));
        assert!(!l.has_super(3)); // would have a copy under sparse_super
        assert_eq!(l.backup_groups(), vec![1, 9]);
    }

    #[test]
    fn metadata_placement_in_group0() {
        let l = layout_1k(8193);
        // group 0: block 1 = super, then gdt (1 block), 4 reserved,
        // bitmap at 1+1+1+4 = 7? gdt_blocks: 1 group * 32B -> 1 block.
        assert_eq!(l.gdt_blocks(), 1);
        assert_eq!(l.block_bitmap_block(0), 1 + 1 + 1 + 4);
        assert_eq!(l.inode_bitmap_block(0), 8);
        assert_eq!(l.inode_table_block(0), 9);
        // itable: 256 inodes * 128 B = 32 KiB = 32 blocks
        assert_eq!(l.inode_table_blocks(), 32);
        assert_eq!(l.group_data_start(0), 41);
    }

    #[test]
    fn superless_group_overhead_is_smaller() {
        let l = layout_1k(8192 * 4);
        assert!(l.has_super(1));
        assert!(!l.has_super(2));
        assert!(l.group_overhead(1) > l.group_overhead(2));
        assert_eq!(l.group_overhead(2), 2 + 32);
    }

    #[test]
    fn inode_position_math() {
        let l = layout_1k(8192 * 2 + 1);
        // inode 1 is the first inode of group 0
        let (blk, off) = l.inode_position(1);
        assert_eq!(blk, l.inode_table_block(0));
        assert_eq!(off, 0);
        // inode 9 (index 8) with 128-byte inodes -> same block, offset 1024?
        // 8*128 = 1024 -> next block, offset 0
        let (blk, off) = l.inode_position(9);
        assert_eq!(blk, l.inode_table_block(0) + 1);
        assert_eq!(off, 0);
        // first inode of group 1
        let (blk, off) = l.inode_position(257);
        assert_eq!(blk, l.inode_table_block(1));
        assert_eq!(off, 0);
    }

    #[test]
    fn block_group_mapping_round_trips() {
        let l = layout_1k(8192 * 3);
        for &b in &[1u64, 2, 8192, 8193, 16385, 24576] {
            let g = l.block_group_of(b);
            let idx = l.block_index_in_group(b);
            assert_eq!(l.group_first_block(g) + u64::from(idx), b);
        }
    }

    #[test]
    fn backups_for_small_group_counts() {
        assert_eq!(Layout::sparse_super2_backups(1), [0, 0]);
        assert_eq!(Layout::sparse_super2_backups(2), [1, 0]);
        assert_eq!(Layout::sparse_super2_backups(5), [1, 4]);
    }

    #[test]
    fn needs_64bit_threshold() {
        assert!(!Layout::needs_64bit(u64::from(u32::MAX)));
        assert!(Layout::needs_64bit(u64::from(u32::MAX) + 1));
    }

    #[test]
    fn bigalloc_cluster_math() {
        let mut l = layout_1k(8192 * 16);
        l.features.incompat.insert(IncompatFeatures::BIGALLOC);
        l.cluster_ratio = 16;
        l.blocks_per_group = 8192 * 16;
        assert!(l.has_bigalloc());
        assert_eq!(l.clusters_per_group(), 8192);
    }
}
