//! The on-image superblock.
//!
//! Field offsets follow the real `struct ext4_super_block` so that the
//! encoded image is byte-level recognisable: magic 0xEF53 at offset 0x38
//! within the superblock, which itself sits at byte 1024 of the device.

use crate::features::{CompatFeatures, FeatureSet, IncompatFeatures, RoCompatFeatures};
use crate::util::{checksum, get_u16, get_u32, put_u16, put_u32};
use crate::FsError;

/// Byte offset of the primary superblock on the device.
pub const SUPERBLOCK_OFFSET: u64 = 1024;

/// The ext4 magic number.
pub const EXT4_MAGIC: u16 = 0xEF53;

/// Encoded size of the superblock structure.
pub const SUPERBLOCK_SIZE: usize = 1024;

/// File-system states (`s_state`).
pub mod state {
    /// Cleanly unmounted.
    pub const VALID_FS: u16 = 0x0001;
    /// Errors detected.
    pub const ERROR_FS: u16 = 0x0002;
    /// Orphans being recovered.
    pub const ORPHAN_FS: u16 = 0x0004;
}

/// Behavior on error detection (`s_errors`).
pub mod errors_policy {
    /// Continue as if nothing happened.
    pub const CONTINUE: u16 = 1;
    /// Remount read-only.
    pub const REMOUNT_RO: u16 = 2;
    /// Panic.
    pub const PANIC: u16 = 3;
}

/// In-memory representation of the superblock.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Superblock {
    /// Total inode count.
    pub inodes_count: u32,
    /// Total block count (64-bit; high half only used with `64bit`).
    pub blocks_count: u64,
    /// Reserved blocks for the super-user.
    pub reserved_blocks_count: u64,
    /// Free block count as recorded (the value the Figure 1 bug corrupts).
    pub free_blocks_count: u64,
    /// Free inode count as recorded.
    pub free_inodes_count: u32,
    /// First data block (1 for 1 KiB block size).
    pub first_data_block: u32,
    /// `log2(block_size) - 10`.
    pub log_block_size: u32,
    /// `log2(cluster_size) - 10` (== `log_block_size` without bigalloc).
    pub log_cluster_size: u32,
    /// Blocks per group.
    pub blocks_per_group: u32,
    /// Clusters per group (bigalloc).
    pub clusters_per_group: u32,
    /// Inodes per group.
    pub inodes_per_group: u32,
    /// Last mount time (seconds; simulated clock).
    pub mtime: u32,
    /// Last write time.
    pub wtime: u32,
    /// Mounts since last fsck.
    pub mnt_count: u16,
    /// Mounts allowed before fsck is forced (-1 = never).
    pub max_mnt_count: u16,
    /// Magic (must be [`EXT4_MAGIC`]).
    pub magic: u16,
    /// State flags (see [`state`]).
    pub state: u16,
    /// Error policy (see [`errors_policy`]).
    pub errors: u16,
    /// Time of last check.
    pub lastcheck: u32,
    /// Maximum interval between checks.
    pub checkinterval: u32,
    /// Revision level.
    pub rev_level: u32,
    /// First non-reserved inode.
    pub first_ino: u32,
    /// Bytes per on-disk inode record.
    pub inode_size: u16,
    /// Block group number of this superblock copy (0 = primary).
    pub block_group_nr: u16,
    /// Feature words.
    pub features: FeatureSet,
    /// Volume UUID.
    pub uuid: [u8; 16],
    /// Volume label.
    pub volume_name: [u8; 16],
    /// Reserved GDT blocks for online resize.
    pub reserved_gdt_blocks: u16,
    /// Group descriptor size (0/32 or 64).
    pub desc_size: u16,
    /// Default mount options bitmap.
    pub default_mount_opts: u32,
    /// The two sparse_super2 backup group numbers.
    pub backup_bgs: [u32; 2],
    /// Head of the orphan inode list (0 = empty).
    pub last_orphan: u32,
}

impl Default for Superblock {
    fn default() -> Self {
        Superblock {
            inodes_count: 0,
            blocks_count: 0,
            reserved_blocks_count: 0,
            free_blocks_count: 0,
            free_inodes_count: 0,
            first_data_block: 0,
            log_block_size: 0,
            log_cluster_size: 0,
            blocks_per_group: 0,
            clusters_per_group: 0,
            inodes_per_group: 0,
            mtime: 0,
            wtime: 0,
            mnt_count: 0,
            max_mnt_count: 0xFFFF,
            magic: EXT4_MAGIC,
            state: state::VALID_FS,
            errors: errors_policy::CONTINUE,
            lastcheck: 0,
            checkinterval: 0,
            rev_level: 1,
            first_ino: 11,
            inode_size: 128,
            block_group_nr: 0,
            features: FeatureSet::default(),
            uuid: [0; 16],
            volume_name: [0; 16],
            reserved_gdt_blocks: 0,
            desc_size: 32,
            default_mount_opts: 0,
            backup_bgs: [0, 0],
            last_orphan: 0,
        }
    }
}

impl Superblock {
    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        1024u32 << self.log_block_size
    }

    /// Cluster size in bytes.
    pub fn cluster_size(&self) -> u32 {
        1024u32 << self.log_cluster_size
    }

    /// Blocks per cluster.
    pub fn cluster_ratio(&self) -> u32 {
        self.cluster_size() / self.block_size()
    }

    /// True if the image was cleanly unmounted.
    pub fn is_clean(&self) -> bool {
        self.state & state::VALID_FS != 0 && self.state & state::ERROR_FS == 0
    }

    /// Marks the file system as containing errors.
    pub fn set_error_state(&mut self) {
        self.state |= state::ERROR_FS;
    }

    /// Volume label as a string (up to the first NUL).
    pub fn label(&self) -> String {
        let end = self.volume_name.iter().position(|&b| b == 0).unwrap_or(16);
        String::from_utf8_lossy(&self.volume_name[..end]).into_owned()
    }

    /// Sets the volume label (truncated to 16 bytes).
    pub fn set_label(&mut self, label: &str) {
        self.volume_name = [0; 16];
        let bytes = label.as_bytes();
        let n = bytes.len().min(16);
        self.volume_name[..n].copy_from_slice(&bytes[..n]);
    }

    /// Encodes the superblock into its 1024-byte on-image form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = vec![0u8; SUPERBLOCK_SIZE];
        put_u32(&mut b, 0x00, self.inodes_count);
        put_u32(&mut b, 0x04, self.blocks_count as u32);
        put_u32(&mut b, 0x08, self.reserved_blocks_count as u32);
        put_u32(&mut b, 0x0C, self.free_blocks_count as u32);
        put_u32(&mut b, 0x10, self.free_inodes_count);
        put_u32(&mut b, 0x14, self.first_data_block);
        put_u32(&mut b, 0x18, self.log_block_size);
        put_u32(&mut b, 0x1C, self.log_cluster_size);
        put_u32(&mut b, 0x20, self.blocks_per_group);
        put_u32(&mut b, 0x24, self.clusters_per_group);
        put_u32(&mut b, 0x28, self.inodes_per_group);
        put_u32(&mut b, 0x2C, self.mtime);
        put_u32(&mut b, 0x30, self.wtime);
        put_u16(&mut b, 0x34, self.mnt_count);
        put_u16(&mut b, 0x36, self.max_mnt_count);
        put_u16(&mut b, 0x38, self.magic);
        put_u16(&mut b, 0x3A, self.state);
        put_u16(&mut b, 0x3C, self.errors);
        put_u32(&mut b, 0x40, self.lastcheck);
        put_u32(&mut b, 0x44, self.checkinterval);
        put_u32(&mut b, 0x4C, self.rev_level);
        put_u32(&mut b, 0x54, self.first_ino);
        put_u16(&mut b, 0x58, self.inode_size);
        put_u16(&mut b, 0x5A, self.block_group_nr);
        put_u32(&mut b, 0x5C, self.features.compat.0);
        put_u32(&mut b, 0x60, self.features.incompat.0);
        put_u32(&mut b, 0x64, self.features.ro_compat.0);
        b[0x68..0x78].copy_from_slice(&self.uuid);
        b[0x78..0x88].copy_from_slice(&self.volume_name);
        put_u32(&mut b, 0xB8, self.last_orphan);
        put_u16(&mut b, 0xCE, self.reserved_gdt_blocks);
        put_u16(&mut b, 0xFE, self.desc_size);
        put_u32(&mut b, 0x100, self.default_mount_opts);
        // 64-bit high halves
        put_u32(&mut b, 0x150, (self.blocks_count >> 32) as u32);
        put_u32(&mut b, 0x154, (self.reserved_blocks_count >> 32) as u32);
        put_u32(&mut b, 0x158, (self.free_blocks_count >> 32) as u32);
        put_u32(&mut b, 0x254, self.backup_bgs[0]);
        put_u32(&mut b, 0x258, self.backup_bgs[1]);
        let csum = checksum(&b[..0x3FC]);
        put_u32(&mut b, 0x3FC, csum);
        b
    }

    /// Decodes a superblock from its on-image form.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadMagic`] if the magic is wrong and
    /// [`FsError::Corrupt`] if the buffer is too short.
    pub fn from_bytes(b: &[u8]) -> Result<Self, FsError> {
        if b.len() < SUPERBLOCK_SIZE {
            return Err(FsError::Corrupt(format!(
                "superblock buffer too short: {} bytes",
                b.len()
            )));
        }
        let magic = get_u16(b, 0x38);
        if magic != EXT4_MAGIC {
            return Err(FsError::BadMagic { found: magic });
        }
        // geometry sanity: a valid magic with nonsense geometry means a
        // damaged superblock, not a usable one
        let log_block_size = get_u32(b, 0x18);
        let log_cluster_size = get_u32(b, 0x1C);
        if log_block_size > 6 || log_cluster_size > 16 {
            return Err(FsError::Corrupt(format!(
                "implausible log block/cluster size {log_block_size}/{log_cluster_size}"
            )));
        }
        if get_u32(b, 0x20) == 0 || get_u32(b, 0x28) == 0 {
            return Err(FsError::Corrupt("zero blocks/inodes per group".to_string()));
        }
        let blocks_lo = u64::from(get_u32(b, 0x04));
        let blocks_hi = u64::from(get_u32(b, 0x150));
        let rsv_lo = u64::from(get_u32(b, 0x08));
        let rsv_hi = u64::from(get_u32(b, 0x154));
        let free_lo = u64::from(get_u32(b, 0x0C));
        let free_hi = u64::from(get_u32(b, 0x158));
        let features = FeatureSet {
            compat: CompatFeatures(get_u32(b, 0x5C)),
            incompat: IncompatFeatures(get_u32(b, 0x60)),
            ro_compat: RoCompatFeatures(get_u32(b, 0x64)),
        };
        let use_hi = features.incompat.contains(IncompatFeatures::BIT64);
        let mut uuid = [0u8; 16];
        uuid.copy_from_slice(&b[0x68..0x78]);
        let mut volume_name = [0u8; 16];
        volume_name.copy_from_slice(&b[0x78..0x88]);
        Ok(Superblock {
            inodes_count: get_u32(b, 0x00),
            blocks_count: if use_hi { (blocks_hi << 32) | blocks_lo } else { blocks_lo },
            reserved_blocks_count: if use_hi { (rsv_hi << 32) | rsv_lo } else { rsv_lo },
            free_blocks_count: if use_hi { (free_hi << 32) | free_lo } else { free_lo },
            free_inodes_count: get_u32(b, 0x10),
            first_data_block: get_u32(b, 0x14),
            log_block_size: get_u32(b, 0x18),
            log_cluster_size: get_u32(b, 0x1C),
            blocks_per_group: get_u32(b, 0x20),
            clusters_per_group: get_u32(b, 0x24),
            inodes_per_group: get_u32(b, 0x28),
            mtime: get_u32(b, 0x2C),
            wtime: get_u32(b, 0x30),
            mnt_count: get_u16(b, 0x34),
            max_mnt_count: get_u16(b, 0x36),
            magic,
            state: get_u16(b, 0x3A),
            errors: get_u16(b, 0x3C),
            lastcheck: get_u32(b, 0x40),
            checkinterval: get_u32(b, 0x44),
            rev_level: get_u32(b, 0x4C),
            first_ino: get_u32(b, 0x54),
            inode_size: get_u16(b, 0x58),
            block_group_nr: get_u16(b, 0x5A),
            features,
            uuid,
            volume_name,
            reserved_gdt_blocks: get_u16(b, 0xCE),
            desc_size: get_u16(b, 0xFE),
            default_mount_opts: get_u32(b, 0x100),
            backup_bgs: [get_u32(b, 0x254), get_u32(b, 0x258)],
            last_orphan: get_u32(b, 0xB8),
        })
    }

    /// Verifies the embedded checksum (only meaningful when the
    /// `metadata_csum` feature is enabled; always checked by `e2fsck`).
    pub fn verify_checksum(b: &[u8]) -> bool {
        if b.len() < SUPERBLOCK_SIZE {
            return false;
        }
        get_u32(b, 0x3FC) == checksum(&b[..0x3FC])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        let mut sb = Superblock {
            inodes_count: 512,
            blocks_count: 16384,
            reserved_blocks_count: 819,
            free_blocks_count: 16000,
            free_inodes_count: 501,
            first_data_block: 1,
            log_block_size: 0,
            log_cluster_size: 0,
            blocks_per_group: 8192,
            clusters_per_group: 8192,
            inodes_per_group: 256,
            features: FeatureSet::ext4_defaults(),
            reserved_gdt_blocks: 16,
            ..Superblock::default()
        };
        sb.set_label("testvol");
        sb.uuid = [7; 16];
        sb
    }

    #[test]
    fn round_trip() {
        let sb = sample();
        let bytes = sb.to_bytes();
        assert_eq!(bytes.len(), SUPERBLOCK_SIZE);
        let back = Superblock::from_bytes(&bytes).unwrap();
        assert_eq!(sb, back);
    }

    #[test]
    fn magic_at_0x38() {
        let bytes = sample().to_bytes();
        assert_eq!(bytes[0x38], 0x53);
        assert_eq!(bytes[0x39], 0xEF);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0x38] = 0;
        assert!(matches!(Superblock::from_bytes(&bytes), Err(FsError::BadMagic { found: _ })));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(Superblock::from_bytes(&[0u8; 100]), Err(FsError::Corrupt(_))));
    }

    #[test]
    fn sixty_four_bit_counts() {
        let mut sb = sample();
        sb.features.incompat.insert(IncompatFeatures::BIT64);
        sb.blocks_count = 0x1_2345_6789;
        sb.free_blocks_count = 0x1_0000_0001;
        let back = Superblock::from_bytes(&sb.to_bytes()).unwrap();
        assert_eq!(back.blocks_count, 0x1_2345_6789);
        assert_eq!(back.free_blocks_count, 0x1_0000_0001);
    }

    #[test]
    fn without_64bit_high_half_ignored() {
        let mut sb = sample();
        sb.blocks_count = 16384;
        let back = Superblock::from_bytes(&sb.to_bytes()).unwrap();
        assert_eq!(back.blocks_count, 16384);
    }

    #[test]
    fn checksum_detects_corruption() {
        let bytes = sample().to_bytes();
        assert!(Superblock::verify_checksum(&bytes));
        let mut bad = bytes.clone();
        bad[0x0C] ^= 0xFF; // flip free_blocks_count byte
        assert!(!Superblock::verify_checksum(&bad));
    }

    #[test]
    fn label_round_trip() {
        let mut sb = sample();
        assert_eq!(sb.label(), "testvol");
        sb.set_label("a-very-long-label-that-exceeds");
        assert_eq!(sb.label().len(), 16);
    }

    #[test]
    fn state_helpers() {
        let mut sb = sample();
        assert!(sb.is_clean());
        sb.set_error_state();
        assert!(!sb.is_clean());
    }

    #[test]
    fn block_size_math() {
        let mut sb = sample();
        assert_eq!(sb.block_size(), 1024);
        sb.log_block_size = 2;
        assert_eq!(sb.block_size(), 4096);
        sb.log_cluster_size = 6;
        assert_eq!(sb.cluster_size(), 65536);
        assert_eq!(sb.cluster_ratio(), 16);
    }

    #[test]
    fn backup_bgs_round_trip() {
        let mut sb = sample();
        sb.backup_bgs = [1, 41];
        let back = Superblock::from_bytes(&sb.to_bytes()).unwrap();
        assert_eq!(back.backup_bgs, [1, 41]);
    }
}
