//! Allocation bitmaps (block and inode bitmaps share this type).
//!
//! The scan and count paths operate at `u64`-word granularity: the byte
//! storage is read eight bytes at a time (LSB-first bit order within a
//! byte composes with little-endian byte order, so bitmap bit `i` is bit
//! `i % 64` of word `i / 64`), letting `find_clear_from` skip 64 in-use
//! units per word and `count_set` run on the popcount instruction instead
//! of a per-bit loop. The byte layout on disk is unchanged.

/// A fixed-capacity bitmap backed by one device block.
///
/// Bit `i` set means "unit `i` is in use". For block bitmaps a unit is a
/// block (or a cluster with `bigalloc`); for inode bitmaps it is an inode
/// slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: u32,
}

impl Bitmap {
    /// Creates an all-zero bitmap tracking `len` units, stored in
    /// `capacity_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` does not fit in `capacity_bytes`.
    pub fn new(len: u32, capacity_bytes: usize) -> Self {
        assert!(len as usize <= capacity_bytes * 8, "bitmap capacity too small");
        Bitmap { bits: vec![0u8; capacity_bytes], len }
    }

    /// Loads a bitmap from raw block bytes.
    pub fn from_bytes(bytes: &[u8], len: u32) -> Self {
        let mut bm = Bitmap::new(len, bytes.len());
        bm.bits.copy_from_slice(bytes);
        bm
    }

    /// The raw bytes (padding bits beyond `len` included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of tracked units.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the bitmap tracks zero units.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word `wi` of the storage, zero-extended past the end of the byte
    /// buffer.
    fn word(&self, wi: usize) -> u64 {
        let start = wi * 8;
        let end = (start + 8).min(self.bits.len());
        let mut raw = [0u8; 8];
        raw[..end - start].copy_from_slice(&self.bits[start..end]);
        u64::from_le_bytes(raw)
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Sets bit `i`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: u32) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let byte = &mut self.bits[(i / 8) as usize];
        let mask = 1u8 << (i % 8);
        let prev = *byte & mask != 0;
        *byte |= mask;
        prev
    }

    /// Clears bit `i`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn clear(&mut self, i: u32) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let byte = &mut self.bits[(i / 8) as usize];
        let mask = 1u8 << (i % 8);
        let prev = *byte & mask != 0;
        *byte &= !mask;
        prev
    }

    /// Sets bits `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn set_range(&mut self, start: u32, end: u32) {
        assert!(start <= end && end <= self.len, "bitmap range {start}..{end} out of range {}", self.len);
        if start == end {
            return;
        }
        let (sb, eb) = ((start / 8) as usize, ((end - 1) / 8) as usize);
        let smask = !0u8 << (start % 8);
        let emask = !0u8 >> (7 - (end - 1) % 8);
        if sb == eb {
            self.bits[sb] |= smask & emask;
        } else {
            self.bits[sb] |= smask;
            self.bits[sb + 1..eb].fill(0xFF);
            self.bits[eb] |= emask;
        }
    }

    /// Clears bits `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn clear_range(&mut self, start: u32, end: u32) {
        assert!(start <= end && end <= self.len, "bitmap range {start}..{end} out of range {}", self.len);
        if start == end {
            return;
        }
        let (sb, eb) = ((start / 8) as usize, ((end - 1) / 8) as usize);
        let smask = !0u8 << (start % 8);
        let emask = !0u8 >> (7 - (end - 1) % 8);
        if sb == eb {
            self.bits[sb] &= !(smask & emask);
        } else {
            self.bits[sb] &= !smask;
            self.bits[sb + 1..eb].fill(0);
            self.bits[eb] &= !emask;
        }
    }

    /// Number of set bits within the tracked range (popcount per word;
    /// padding bits beyond `len` are masked out).
    pub fn count_set(&self) -> u32 {
        let words = self.bits.len().div_ceil(8);
        let mut total = 0u32;
        for wi in 0..words {
            let base = wi as u64 * 64;
            if base >= u64::from(self.len) {
                break;
            }
            let mut w = self.word(wi);
            let remaining = u64::from(self.len) - base;
            if remaining < 64 {
                w &= (1u64 << remaining) - 1;
            }
            total += w.count_ones();
        }
        total
    }

    /// Alias for [`Bitmap::count_set`] under the `u64::count_ones` name
    /// the implementation rides on.
    pub fn count_ones(&self) -> u32 {
        self.count_set()
    }

    /// Number of clear bits within the tracked range.
    pub fn count_clear(&self) -> u32 {
        self.len - self.count_set()
    }

    /// First clear bit at or after `from`, if any. Skips fully-allocated
    /// words 64 units at a time.
    pub fn find_clear_from(&self, from: u32) -> Option<u32> {
        if from >= self.len {
            return None;
        }
        let words = self.bits.len().div_ceil(8);
        for wi in (from / 64) as usize..words {
            let mut zeros = !self.word(wi);
            if wi == (from / 64) as usize {
                zeros &= !0u64 << (from % 64);
            }
            if zeros != 0 {
                let i = wi as u32 * 64 + zeros.trailing_zeros();
                // a clear bit in the padding past `len` is not a hit, and
                // nothing after it can be in range either
                return (i < self.len).then_some(i);
            }
        }
        None
    }

    /// First clear bit of the whole bitmap, if any.
    pub fn find_first_zero(&self) -> Option<u32> {
        self.find_clear_from(0)
    }

    /// First set bit at or after `from`, if any.
    pub fn find_set_from(&self, from: u32) -> Option<u32> {
        if from >= self.len {
            return None;
        }
        let words = self.bits.len().div_ceil(8);
        for wi in (from / 64) as usize..words {
            let mut ones = self.word(wi);
            if wi == (from / 64) as usize {
                ones &= !0u64 << (from % 64);
            }
            if ones != 0 {
                let i = wi as u32 * 64 + ones.trailing_zeros();
                return (i < self.len).then_some(i);
            }
        }
        None
    }

    /// First run of `n` consecutive clear bits at or after `from`,
    /// hopping between word-level scans for the next clear and the next
    /// set bit instead of stepping per unit.
    pub fn find_clear_run(&self, from: u32, n: u32) -> Option<u32> {
        if n == 0 {
            return Some(from.min(self.len));
        }
        let mut start = self.find_clear_from(from)?;
        loop {
            let run_end = self.find_set_from(start).unwrap_or(self.len);
            if run_end - start >= n {
                return Some(start);
            }
            start = self.find_clear_from(run_end)?;
        }
    }

    /// Marks the trailing bits beyond `len` as set, the ext4 convention
    /// for the padding of a short last group.
    pub fn pad_tail(&mut self) {
        let cap = (self.bits.len() * 8) as u32;
        if self.len == cap {
            return;
        }
        let sb = (self.len / 8) as usize;
        self.bits[sb] |= !0u8 << (self.len % 8);
        self.bits[sb + 1..].fill(0xFF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bm = Bitmap::new(64, 8);
        assert_eq!(bm.count_set(), 0);
        assert_eq!(bm.count_clear(), 64);
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(64, 8);
        assert!(!bm.set(10));
        assert!(bm.get(10));
        assert!(bm.set(10)); // already set
        assert!(bm.clear(10));
        assert!(!bm.get(10));
        assert!(!bm.clear(10)); // already clear
    }

    #[test]
    fn count_tracks_mutations() {
        let mut bm = Bitmap::new(100, 13);
        for i in 0..50 {
            bm.set(i);
        }
        assert_eq!(bm.count_set(), 50);
        bm.clear(25);
        assert_eq!(bm.count_set(), 49);
        assert_eq!(bm.count_ones(), 49);
    }

    #[test]
    fn find_clear_from_skips_set() {
        let mut bm = Bitmap::new(16, 2);
        for i in 0..8 {
            bm.set(i);
        }
        assert_eq!(bm.find_clear_from(0), Some(8));
        assert_eq!(bm.find_clear_from(9), Some(9));
        for i in 8..16 {
            bm.set(i);
        }
        assert_eq!(bm.find_clear_from(0), None);
    }

    #[test]
    fn find_clear_spans_word_boundaries() {
        // 200 bits: words 0..3, full first words
        let mut bm = Bitmap::new(200, 25);
        bm.set_range(0, 130);
        assert_eq!(bm.find_clear_from(0), Some(130));
        assert_eq!(bm.find_first_zero(), Some(130));
        bm.set_range(130, 200);
        assert_eq!(bm.find_first_zero(), None);
    }

    #[test]
    fn find_clear_ignores_clear_padding() {
        // 60 tracked bits in 8 bytes of capacity: bits 60..64 are padding
        // and stay clear here (no pad_tail)
        let mut bm = Bitmap::new(60, 8);
        bm.set_range(0, 60);
        assert_eq!(bm.find_clear_from(0), None);
        assert_eq!(bm.find_set_from(59), Some(59));
    }

    #[test]
    fn find_set_from_scans_words() {
        let mut bm = Bitmap::new(200, 25);
        bm.set(137);
        assert_eq!(bm.find_set_from(0), Some(137));
        assert_eq!(bm.find_set_from(138), None);
        assert_eq!(bm.find_set_from(137), Some(137));
    }

    #[test]
    fn find_clear_run_finds_contiguous() {
        let mut bm = Bitmap::new(32, 4);
        bm.set(3);
        bm.set(10);
        // clear runs: 0-2 (3), 4-9 (6), 11-31 (21)
        assert_eq!(bm.find_clear_run(0, 3), Some(0));
        assert_eq!(bm.find_clear_run(0, 4), Some(4));
        assert_eq!(bm.find_clear_run(0, 7), Some(11));
        assert_eq!(bm.find_clear_run(0, 22), None);
        assert_eq!(bm.find_clear_run(5, 3), Some(5));
    }

    #[test]
    fn set_range_matches_per_bit_loop() {
        for (start, end) in [(0u32, 0u32), (0, 100), (3, 5), (7, 9), (8, 16), (13, 77), (63, 65), (99, 100)] {
            let mut word_wise = Bitmap::new(100, 13);
            let mut per_bit = Bitmap::new(100, 13);
            word_wise.set_range(start, end);
            for i in start..end {
                per_bit.set(i);
            }
            assert_eq!(word_wise, per_bit, "set_range({start}, {end})");
        }
    }

    #[test]
    fn clear_range_matches_per_bit_loop() {
        for (start, end) in [(0u32, 0u32), (0, 100), (3, 5), (7, 9), (8, 16), (13, 77), (63, 65), (99, 100)] {
            let mut word_wise = Bitmap::new(100, 13);
            let mut per_bit = Bitmap::new(100, 13);
            word_wise.set_range(0, 100);
            per_bit.set_range(0, 100);
            word_wise.clear_range(start, end);
            for i in start..end {
                per_bit.clear(i);
            }
            assert_eq!(word_wise, per_bit, "clear_range({start}, {end})");
        }
    }

    #[test]
    fn ranges_do_not_touch_padding() {
        let mut bm = Bitmap::new(12, 2);
        bm.set_range(0, 12);
        assert_eq!(bm.as_bytes()[1] & 0xF0, 0); // padding bits 12..16 untouched
        bm.clear_range(0, 12);
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn pad_tail_sets_padding_only() {
        let mut bm = Bitmap::new(12, 2); // 16 bits capacity
        bm.pad_tail();
        assert_eq!(bm.count_set(), 0); // tracked range untouched
        assert_eq!(bm.as_bytes()[1] & 0xF0, 0xF0); // bits 12..16 set
    }

    #[test]
    fn pad_tail_full_capacity_is_noop() {
        let mut bm = Bitmap::new(16, 2);
        bm.pad_tail();
        assert_eq!(bm.count_set(), 0);
        assert_eq!(bm.as_bytes(), &[0, 0]);
    }

    #[test]
    fn count_masks_padding() {
        let mut bm = Bitmap::new(12, 2);
        bm.pad_tail();
        bm.set(1);
        assert_eq!(bm.count_set(), 1);
        assert_eq!(bm.count_clear(), 11);
    }

    #[test]
    fn round_trip_bytes() {
        let mut bm = Bitmap::new(24, 3);
        bm.set(0);
        bm.set(23);
        let bytes = bm.as_bytes().to_vec();
        let back = Bitmap::from_bytes(&bytes, 24);
        assert_eq!(back, bm);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bm = Bitmap::new(8, 1);
        bm.get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut bm = Bitmap::new(8, 1);
        bm.set(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_range_panics() {
        let mut bm = Bitmap::new(8, 1);
        bm.set_range(4, 9);
    }

    #[test]
    fn zero_length_run() {
        let bm = Bitmap::new(8, 1);
        assert_eq!(bm.find_clear_run(2, 0), Some(2));
    }
}
