//! Allocation bitmaps (block and inode bitmaps share this type).

/// A fixed-capacity bitmap backed by one device block.
///
/// Bit `i` set means "unit `i` is in use". For block bitmaps a unit is a
/// block (or a cluster with `bigalloc`); for inode bitmaps it is an inode
/// slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: u32,
}

impl Bitmap {
    /// Creates an all-zero bitmap tracking `len` units, stored in
    /// `capacity_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` does not fit in `capacity_bytes`.
    pub fn new(len: u32, capacity_bytes: usize) -> Self {
        assert!(len as usize <= capacity_bytes * 8, "bitmap capacity too small");
        Bitmap { bits: vec![0u8; capacity_bytes], len }
    }

    /// Loads a bitmap from raw block bytes.
    pub fn from_bytes(bytes: &[u8], len: u32) -> Self {
        let mut bm = Bitmap::new(len, bytes.len());
        bm.bits.copy_from_slice(bytes);
        bm
    }

    /// The raw bytes (padding bits beyond `len` included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of tracked units.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the bitmap tracks zero units.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Sets bit `i`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: u32) -> bool {
        let prev = self.get(i);
        self.bits[(i / 8) as usize] |= 1 << (i % 8);
        prev
    }

    /// Clears bit `i`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn clear(&mut self, i: u32) -> bool {
        let prev = self.get(i);
        self.bits[(i / 8) as usize] &= !(1 << (i % 8));
        prev
    }

    /// Number of set bits within the tracked range.
    pub fn count_set(&self) -> u32 {
        (0..self.len).filter(|&i| self.get(i)).count() as u32
    }

    /// Number of clear bits within the tracked range.
    pub fn count_clear(&self) -> u32 {
        self.len - self.count_set()
    }

    /// First clear bit at or after `from`, if any.
    pub fn find_clear_from(&self, from: u32) -> Option<u32> {
        (from..self.len).find(|&i| !self.get(i))
    }

    /// First run of `n` consecutive clear bits at or after `from`.
    pub fn find_clear_run(&self, from: u32, n: u32) -> Option<u32> {
        if n == 0 {
            return Some(from.min(self.len));
        }
        let mut start = from;
        let mut run = 0u32;
        let mut i = from;
        while i < self.len {
            if self.get(i) {
                run = 0;
                start = i + 1;
            } else {
                run += 1;
                if run == n {
                    return Some(start);
                }
            }
            i += 1;
        }
        None
    }

    /// Marks the trailing bits beyond `len` as set, the ext4 convention
    /// for the padding of a short last group.
    pub fn pad_tail(&mut self) {
        let cap = (self.bits.len() * 8) as u32;
        for i in self.len..cap {
            self.bits[(i / 8) as usize] |= 1 << (i % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bm = Bitmap::new(64, 8);
        assert_eq!(bm.count_set(), 0);
        assert_eq!(bm.count_clear(), 64);
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(64, 8);
        assert!(!bm.set(10));
        assert!(bm.get(10));
        assert!(bm.set(10)); // already set
        assert!(bm.clear(10));
        assert!(!bm.get(10));
        assert!(!bm.clear(10)); // already clear
    }

    #[test]
    fn count_tracks_mutations() {
        let mut bm = Bitmap::new(100, 13);
        for i in 0..50 {
            bm.set(i);
        }
        assert_eq!(bm.count_set(), 50);
        bm.clear(25);
        assert_eq!(bm.count_set(), 49);
    }

    #[test]
    fn find_clear_from_skips_set() {
        let mut bm = Bitmap::new(16, 2);
        for i in 0..8 {
            bm.set(i);
        }
        assert_eq!(bm.find_clear_from(0), Some(8));
        assert_eq!(bm.find_clear_from(9), Some(9));
        for i in 8..16 {
            bm.set(i);
        }
        assert_eq!(bm.find_clear_from(0), None);
    }

    #[test]
    fn find_clear_run_finds_contiguous() {
        let mut bm = Bitmap::new(32, 4);
        bm.set(3);
        bm.set(10);
        // clear runs: 0-2 (3), 4-9 (6), 11-31 (21)
        assert_eq!(bm.find_clear_run(0, 3), Some(0));
        assert_eq!(bm.find_clear_run(0, 4), Some(4));
        assert_eq!(bm.find_clear_run(0, 7), Some(11));
        assert_eq!(bm.find_clear_run(0, 22), None);
        assert_eq!(bm.find_clear_run(5, 3), Some(5));
    }

    #[test]
    fn pad_tail_sets_padding_only() {
        let mut bm = Bitmap::new(12, 2); // 16 bits capacity
        bm.pad_tail();
        assert_eq!(bm.count_set(), 0); // tracked range untouched
        assert_eq!(bm.as_bytes()[1] & 0xF0, 0xF0); // bits 12..16 set
    }

    #[test]
    fn round_trip_bytes() {
        let mut bm = Bitmap::new(24, 3);
        bm.set(0);
        bm.set(23);
        let bytes = bm.as_bytes().to_vec();
        let back = Bitmap::from_bytes(&bytes, 24);
        assert_eq!(back, bm);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bm = Bitmap::new(8, 1);
        bm.get(8);
    }

    #[test]
    fn zero_length_run() {
        let bm = Bitmap::new(8, 1);
        assert_eq!(bm.find_clear_run(2, 0), Some(2));
    }
}
