//! Block-group descriptors (`struct ext4_group_desc`).

use crate::util::{get_u16, get_u32, put_u16, put_u32};

/// Flags stored in `bg_flags`.
pub mod bg_flags {
    /// Inode table/bitmap not initialised.
    pub const INODE_UNINIT: u16 = 0x1;
    /// Block bitmap not initialised.
    pub const BLOCK_UNINIT: u16 = 0x2;
}

/// One block-group descriptor. With the `64bit` feature the descriptor is
/// 64 bytes and block numbers carry high halves; otherwise it is 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GroupDesc {
    /// Absolute block number of the block bitmap.
    pub block_bitmap: u64,
    /// Absolute block number of the inode bitmap.
    pub inode_bitmap: u64,
    /// First block of the inode table.
    pub inode_table: u64,
    /// Free blocks in this group (the per-group counterpart of the
    /// superblock count corrupted by the Figure 1 bug).
    pub free_blocks_count: u32,
    /// Free inodes in this group.
    pub free_inodes_count: u32,
    /// Directories allocated in this group (used by the Orlov-style
    /// allocator).
    pub used_dirs_count: u32,
    /// Group flags.
    pub flags: u16,
}

impl GroupDesc {
    /// Encodes the descriptor. `desc_size` must be 32 or 64.
    ///
    /// # Panics
    ///
    /// Panics if `desc_size` is not 32 or 64.
    pub fn to_bytes(&self, desc_size: u16) -> Vec<u8> {
        assert!(desc_size == 32 || desc_size == 64, "desc_size must be 32 or 64");
        let mut b = vec![0u8; desc_size as usize];
        put_u32(&mut b, 0x00, self.block_bitmap as u32);
        put_u32(&mut b, 0x04, self.inode_bitmap as u32);
        put_u32(&mut b, 0x08, self.inode_table as u32);
        put_u16(&mut b, 0x0C, self.free_blocks_count as u16);
        put_u16(&mut b, 0x0E, self.free_inodes_count as u16);
        put_u16(&mut b, 0x10, self.used_dirs_count as u16);
        put_u16(&mut b, 0x12, self.flags);
        if desc_size == 64 {
            put_u32(&mut b, 0x20, (self.block_bitmap >> 32) as u32);
            put_u32(&mut b, 0x24, (self.inode_bitmap >> 32) as u32);
            put_u32(&mut b, 0x28, (self.inode_table >> 32) as u32);
            put_u16(&mut b, 0x2C, (self.free_blocks_count >> 16) as u16);
            put_u16(&mut b, 0x2E, (self.free_inodes_count >> 16) as u16);
            put_u16(&mut b, 0x30, (self.used_dirs_count >> 16) as u16);
        }
        b
    }

    /// Decodes a descriptor of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than `desc_size` or `desc_size` is not
    /// 32 or 64.
    pub fn from_bytes(b: &[u8], desc_size: u16) -> Self {
        assert!(desc_size == 32 || desc_size == 64, "desc_size must be 32 or 64");
        assert!(b.len() >= desc_size as usize, "descriptor buffer too short");
        let mut d = GroupDesc {
            block_bitmap: u64::from(get_u32(b, 0x00)),
            inode_bitmap: u64::from(get_u32(b, 0x04)),
            inode_table: u64::from(get_u32(b, 0x08)),
            free_blocks_count: u32::from(get_u16(b, 0x0C)),
            free_inodes_count: u32::from(get_u16(b, 0x0E)),
            used_dirs_count: u32::from(get_u16(b, 0x10)),
            flags: get_u16(b, 0x12),
        };
        if desc_size == 64 {
            d.block_bitmap |= u64::from(get_u32(b, 0x20)) << 32;
            d.inode_bitmap |= u64::from(get_u32(b, 0x24)) << 32;
            d.inode_table |= u64::from(get_u32(b, 0x28)) << 32;
            d.free_blocks_count |= u32::from(get_u16(b, 0x2C)) << 16;
            d.free_inodes_count |= u32::from(get_u16(b, 0x2E)) << 16;
            d.used_dirs_count |= u32::from(get_u16(b, 0x30)) << 16;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupDesc {
        GroupDesc {
            block_bitmap: 7,
            inode_bitmap: 8,
            inode_table: 9,
            free_blocks_count: 8000,
            free_inodes_count: 250,
            used_dirs_count: 3,
            flags: bg_flags::BLOCK_UNINIT,
        }
    }

    #[test]
    fn round_trip_32() {
        let d = sample();
        let b = d.to_bytes(32);
        assert_eq!(b.len(), 32);
        assert_eq!(GroupDesc::from_bytes(&b, 32), d);
    }

    #[test]
    fn round_trip_64_with_high_bits() {
        let mut d = sample();
        d.block_bitmap = 0x1_0000_0007;
        d.free_blocks_count = 0x12_3456;
        let b = d.to_bytes(64);
        assert_eq!(b.len(), 64);
        assert_eq!(GroupDesc::from_bytes(&b, 64), d);
    }

    #[test]
    fn bits_truncated_in_32_byte_mode() {
        let mut d = sample();
        d.block_bitmap = 0x1_0000_0007;
        let b = d.to_bytes(32);
        let back = GroupDesc::from_bytes(&b, 32);
        assert_eq!(back.block_bitmap, 7); // high half lost without 64bit
    }

    #[test]
    #[should_panic(expected = "desc_size must be 32 or 64")]
    fn bad_desc_size_panics() {
        let _ = sample().to_bytes(48);
    }
}
