//! Extent trees (`struct ext4_extent`), the block-mapping scheme used when
//! the `extent` feature is enabled.
//!
//! The on-disk format matches ext4: a 12-byte header with magic `0xF30A`
//! followed by 12-byte extent records. A depth-0 tree fits four extents in
//! the inode's 60-byte `i_block`; when a file needs more, the tree spills
//! to a single full leaf block referenced by an index record (depth 1) —
//! enough for every workload in this reproduction while preserving the real
//! encode/decode logic.

use crate::inode::I_BLOCK_SIZE;
use crate::util::{get_u16, get_u32, put_u16, put_u32};
use crate::FsError;

/// Magic number of an extent-tree node header.
pub const EXTENT_MAGIC: u16 = 0xF30A;

/// Size of a node header or a single record.
pub const RECORD_SIZE: usize = 12;

/// Extents that fit inline in `i_block` (header + 4 records).
pub const INLINE_EXTENTS: usize = (I_BLOCK_SIZE - RECORD_SIZE) / RECORD_SIZE;

/// One contiguous mapping: `len` blocks of file data starting at file
/// block `logical`, stored at device block `physical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Extent {
    /// First file (logical) block covered.
    pub logical: u32,
    /// Number of blocks covered (ext4 caps this at 32768).
    pub len: u16,
    /// First device (physical) block.
    pub physical: u64,
}

impl Extent {
    /// The file block one past the end of this extent.
    pub fn logical_end(&self) -> u32 {
        self.logical + u32::from(self.len)
    }

    /// Maps a logical block to its physical block if covered.
    pub fn map(&self, logical: u32) -> Option<u64> {
        if logical >= self.logical && logical < self.logical_end() {
            Some(self.physical + u64::from(logical - self.logical))
        } else {
            None
        }
    }
}

/// A (sorted) list of extents with the ext4 on-disk encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExtentTree {
    extents: Vec<Extent>,
}

impl ExtentTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// The extents in logical order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Number of extents.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// True if no extents are present.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Maps a logical block to a physical block.
    pub fn map(&self, logical: u32) -> Option<u64> {
        // extents are sorted by logical start
        let idx = self.extents.partition_point(|e| e.logical_end() <= logical);
        self.extents.get(idx).and_then(|e| e.map(logical))
    }

    /// Total blocks mapped.
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.iter().map(|e| u64::from(e.len)).sum()
    }

    /// Highest mapped logical block + 1 (0 when empty).
    pub fn logical_size(&self) -> u32 {
        self.extents.last().map_or(0, Extent::logical_end)
    }

    /// Appends a mapping for `logical`, merging with the previous extent
    /// when physically contiguous.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] if `logical` is already mapped or
    /// would create an out-of-order extent.
    pub fn append(&mut self, logical: u32, physical: u64) -> Result<(), FsError> {
        if let Some(last) = self.extents.last_mut() {
            if logical < last.logical_end() {
                return Err(FsError::Corrupt(format!(
                    "extent append out of order: logical {logical} already covered"
                )));
            }
            if logical == last.logical_end()
                && physical == last.physical + u64::from(last.len)
                && last.len < u16::MAX - 1
            {
                last.len += 1;
                return Ok(());
            }
        }
        self.extents.push(Extent { logical, len: 1, physical });
        Ok(())
    }

    /// Removes all extents and returns the physical blocks they covered
    /// (used by truncate/unlink to free blocks).
    pub fn take_all_blocks(&mut self) -> Vec<u64> {
        let mut blocks = Vec::new();
        for e in self.extents.drain(..) {
            for i in 0..u64::from(e.len) {
                blocks.push(e.physical + i);
            }
        }
        blocks
    }

    /// True if the tree still fits inline in `i_block`.
    pub fn fits_inline(&self) -> bool {
        self.extents.len() <= INLINE_EXTENTS
    }

    /// Extent records that fit in a spill node of `block_size` bytes.
    pub fn leaf_capacity(block_size: u32) -> usize {
        (block_size as usize - RECORD_SIZE) / RECORD_SIZE
    }

    /// Encodes a node (header + records) into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` cannot hold all records.
    fn encode_node(extents: &[Extent], depth: u16, buf: &mut [u8]) {
        put_u16(buf, 0, EXTENT_MAGIC);
        put_u16(buf, 2, extents.len() as u16);
        put_u16(buf, 4, ((buf.len() - RECORD_SIZE) / RECORD_SIZE) as u16);
        put_u16(buf, 6, depth);
        put_u32(buf, 8, 0); // generation
        for (i, e) in extents.iter().enumerate() {
            let off = RECORD_SIZE * (i + 1);
            put_u32(buf, off, e.logical);
            put_u16(buf, off + 4, e.len);
            put_u16(buf, off + 6, (e.physical >> 32) as u16);
            put_u32(buf, off + 8, e.physical as u32);
        }
    }

    fn decode_node(buf: &[u8]) -> Result<(Vec<Extent>, u16), FsError> {
        if get_u16(buf, 0) != EXTENT_MAGIC {
            return Err(FsError::Corrupt("bad extent node magic".to_string()));
        }
        let entries = get_u16(buf, 2) as usize;
        let max = get_u16(buf, 4) as usize;
        let depth = get_u16(buf, 6);
        if entries > max || RECORD_SIZE * (entries + 1) > buf.len() {
            return Err(FsError::Corrupt(format!("extent node overflow: {entries} entries")));
        }
        let mut extents = Vec::with_capacity(entries);
        for i in 0..entries {
            let off = RECORD_SIZE * (i + 1);
            extents.push(Extent {
                logical: get_u32(buf, off),
                len: get_u16(buf, off + 4),
                physical: (u64::from(get_u16(buf, off + 6)) << 32) | u64::from(get_u32(buf, off + 8)),
            });
        }
        Ok((extents, depth))
    }

    /// Encodes the tree into the inode `i_block` area. Returns `None` if
    /// it fits inline, or `Some(leaf_records)` when the caller must store
    /// the records in a spill block whose number it then writes via
    /// [`ExtentTree::encode_root_with_leaf`].
    pub fn encode_inline(&self, i_block: &mut [u8; I_BLOCK_SIZE]) -> Option<Vec<Extent>> {
        if self.fits_inline() {
            i_block.fill(0);
            Self::encode_node(&self.extents, 0, &mut i_block[..]);
            None
        } else {
            Some(self.extents.clone())
        }
    }

    /// Encodes a depth-1 root in `i_block` pointing at `leaf_block`, and
    /// returns the encoded leaf node for the caller to write there.
    pub fn encode_root_with_leaf(
        &self,
        i_block: &mut [u8; I_BLOCK_SIZE],
        leaf_block: u64,
        block_size: u32,
    ) -> Vec<u8> {
        i_block.fill(0);
        // root: depth 1, a single index entry (logical start of subtree,
        // leaf block number)
        put_u16(i_block, 0, EXTENT_MAGIC);
        put_u16(i_block, 2, 1);
        put_u16(i_block, 4, INLINE_EXTENTS as u16);
        put_u16(i_block, 6, 1);
        let off = RECORD_SIZE;
        put_u32(i_block, off, self.extents.first().map_or(0, |e| e.logical));
        put_u32(i_block, off + 4, leaf_block as u32);
        put_u16(i_block, off + 8, (leaf_block >> 32) as u16);
        let mut leaf = vec![0u8; block_size as usize];
        Self::encode_node(&self.extents, 0, &mut leaf);
        leaf
    }

    /// Decodes a tree rooted in `i_block`. Depth-0 roots decode directly;
    /// a depth-1 root returns the leaf block to fetch via
    /// [`ExtentTree::decode_leaf`].
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on malformed nodes.
    pub fn decode_inline(i_block: &[u8; I_BLOCK_SIZE]) -> Result<ExtentRoot, FsError> {
        let (extents, depth) = Self::decode_node(&i_block[..])?;
        match depth {
            0 => Ok(ExtentRoot::Inline(ExtentTree { extents })),
            1 => {
                if extents.len() != 1 {
                    return Err(FsError::Corrupt(format!(
                        "depth-1 extent root must have exactly 1 index, found {}",
                        extents.len()
                    )));
                }
                // for index nodes the "len/physical" fields encode the
                // child block: low 32 bits at +8 (physical lo), high 16 at +6
                let leaf_block =
                    (u64::from(get_u16(i_block, RECORD_SIZE + 8)) << 32) | u64::from(get_u32(i_block, RECORD_SIZE + 4));
                Ok(ExtentRoot::Spilled { leaf_block })
            }
            d => Err(FsError::Corrupt(format!("unsupported extent depth {d}"))),
        }
    }

    /// Decodes a leaf node previously written by
    /// [`ExtentTree::encode_root_with_leaf`].
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on malformed nodes.
    pub fn decode_leaf(buf: &[u8]) -> Result<ExtentTree, FsError> {
        let (extents, depth) = Self::decode_node(buf)?;
        if depth != 0 {
            return Err(FsError::Corrupt(format!("leaf node has depth {depth}")));
        }
        Ok(ExtentTree { extents })
    }
}

/// Result of decoding an extent root from an inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtentRoot {
    /// The whole tree was inline.
    Inline(ExtentTree),
    /// The records live in `leaf_block`.
    Spilled {
        /// Device block holding the leaf node.
        leaf_block: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_merges_contiguous() {
        let mut t = ExtentTree::new();
        t.append(0, 100).unwrap();
        t.append(1, 101).unwrap();
        t.append(2, 102).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.extents()[0], Extent { logical: 0, len: 3, physical: 100 });
    }

    #[test]
    fn append_splits_discontiguous() {
        let mut t = ExtentTree::new();
        t.append(0, 100).unwrap();
        t.append(1, 200).unwrap(); // physical gap
        t.append(5, 201).unwrap(); // logical gap
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn append_rejects_overlap() {
        let mut t = ExtentTree::new();
        t.append(3, 100).unwrap();
        assert!(t.append(3, 200).is_err());
        assert!(t.append(1, 200).is_err());
    }

    #[test]
    fn map_lookup() {
        let mut t = ExtentTree::new();
        for i in 0..4u32 {
            t.append(i, 100 + u64::from(i)).unwrap();
        }
        t.append(10, 555).unwrap();
        assert_eq!(t.map(2), Some(102));
        assert_eq!(t.map(10), Some(555));
        assert_eq!(t.map(5), None);
        assert_eq!(t.map(11), None);
        assert_eq!(t.mapped_blocks(), 5);
        assert_eq!(t.logical_size(), 11);
    }

    #[test]
    fn inline_encode_decode() {
        let mut t = ExtentTree::new();
        t.append(0, 100).unwrap();
        t.append(8, 300).unwrap();
        let mut i_block = [0u8; I_BLOCK_SIZE];
        assert!(t.encode_inline(&mut i_block).is_none());
        match ExtentTree::decode_inline(&i_block).unwrap() {
            ExtentRoot::Inline(back) => assert_eq!(back, t),
            other => panic!("expected inline, got {other:?}"),
        }
    }

    #[test]
    fn spill_encode_decode() {
        let mut t = ExtentTree::new();
        // 6 discontiguous extents > INLINE_EXTENTS (4)
        for i in 0..6u32 {
            t.append(i * 2, 1000 + u64::from(i) * 7).unwrap();
        }
        assert!(!t.fits_inline());
        let mut i_block = [0u8; I_BLOCK_SIZE];
        assert!(t.encode_inline(&mut i_block).is_some());
        let leaf = t.encode_root_with_leaf(&mut i_block, 4242, 1024);
        match ExtentTree::decode_inline(&i_block).unwrap() {
            ExtentRoot::Spilled { leaf_block } => assert_eq!(leaf_block, 4242),
            other => panic!("expected spilled, got {other:?}"),
        }
        let back = ExtentTree::decode_leaf(&leaf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        let i_block = [0u8; I_BLOCK_SIZE];
        assert!(ExtentTree::decode_inline(&i_block).is_err());
    }

    #[test]
    fn take_all_blocks_enumerates() {
        let mut t = ExtentTree::new();
        t.append(0, 10).unwrap();
        t.append(1, 11).unwrap();
        t.append(5, 99).unwrap();
        let blocks = t.take_all_blocks();
        assert_eq!(blocks, vec![10, 11, 99]);
        assert!(t.is_empty());
    }

    #[test]
    fn leaf_capacity_scales_with_block_size() {
        assert_eq!(ExtentTree::leaf_capacity(1024), 84);
        assert_eq!(ExtentTree::leaf_capacity(4096), 340);
    }

    #[test]
    fn large_physical_blocks_preserved() {
        let mut t = ExtentTree::new();
        t.append(0, 0x1_2345_6789).unwrap();
        let mut i_block = [0u8; I_BLOCK_SIZE];
        t.encode_inline(&mut i_block);
        match ExtentTree::decode_inline(&i_block).unwrap() {
            ExtentRoot::Inline(back) => {
                assert_eq!(back.extents()[0].physical, 0x1_2345_6789);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
