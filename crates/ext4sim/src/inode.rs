//! On-disk inodes (`struct ext4_inode`).

use std::fmt;

use crate::util::{get_u16, get_u32, put_u16, put_u32};

/// A 1-based inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct InodeNo(pub u32);

impl fmt::Display for InodeNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inode #{}", self.0)
    }
}

impl From<u32> for InodeNo {
    fn from(v: u32) -> Self {
        InodeNo(v)
    }
}

/// File mode bits (subset of the POSIX definitions ext4 uses).
pub mod mode {
    /// Regular file.
    pub const S_IFREG: u16 = 0x8000;
    /// Directory.
    pub const S_IFDIR: u16 = 0x4000;
    /// Symbolic link.
    pub const S_IFLNK: u16 = 0xA000;
    /// Format mask.
    pub const S_IFMT: u16 = 0xF000;
}

/// Inode flags (`i_flags`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct InodeFlags(pub u32);

impl InodeFlags {
    /// File content is mapped by an extent tree.
    pub const EXTENTS: InodeFlags = InodeFlags(0x0008_0000);
    /// File content lives inline in `i_block`.
    pub const INLINE_DATA: InodeFlags = InodeFlags(0x1000_0000);
    /// Directory uses hashed indexes (accepted, not materialised).
    pub const INDEX: InodeFlags = InodeFlags(0x0000_1000);

    /// True if all bits of `other` are set.
    pub fn contains(self, other: InodeFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Sets the bits of `other`.
    pub fn insert(&mut self, other: InodeFlags) {
        self.0 |= other.0;
    }

    /// Clears the bits of `other`.
    pub fn remove(&mut self, other: InodeFlags) {
        self.0 &= !other.0;
    }
}

/// Size of the `i_block` area.
pub const I_BLOCK_SIZE: usize = 60;

/// Number of direct block pointers in the legacy (non-extent) map.
pub const DIRECT_BLOCKS: usize = 12;

/// In-memory inode. `block_area` is the raw 60-byte `i_block` region whose
/// interpretation depends on the flags: extent tree, legacy block map,
/// inline data, or symlink target.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Inode {
    /// Mode bits.
    pub mode: u16,
    /// Owner uid.
    pub uid: u16,
    /// Owner gid.
    pub gid: u16,
    /// File size in bytes.
    pub size: u64,
    /// Access time.
    pub atime: u32,
    /// Change time.
    pub ctime: u32,
    /// Modification time.
    pub mtime: u32,
    /// Deletion time (0 while the inode is live; e2fsck pass 4 keys off
    /// this).
    pub dtime: u32,
    /// Hard-link count.
    pub links_count: u16,
    /// 512-byte sectors occupied (block accounting, like ext4).
    pub blocks: u32,
    /// Flags.
    pub flags: InodeFlags,
    /// Raw `i_block` region.
    #[serde(with = "serde_bytes_array")]
    pub block_area: [u8; I_BLOCK_SIZE],
    /// Generation (NFS).
    pub generation: u32,
}

mod serde_bytes_array {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8; 60], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(v.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 60], D::Error> {
        let v: Vec<u8> = Vec::deserialize(d)?;
        if v.len() != 60 {
            return Err(serde::de::Error::custom("i_block must be 60 bytes"));
        }
        let mut out = [0u8; 60];
        out.copy_from_slice(&v);
        Ok(out)
    }
}

impl Default for Inode {
    fn default() -> Self {
        Inode {
            mode: 0,
            uid: 0,
            gid: 0,
            size: 0,
            atime: 0,
            ctime: 0,
            mtime: 0,
            dtime: 0,
            links_count: 0,
            blocks: 0,
            flags: InodeFlags::default(),
            block_area: [0u8; I_BLOCK_SIZE],
            generation: 0,
        }
    }
}

impl Inode {
    /// A fresh regular-file inode. With `extents`, `i_block` is
    /// initialised with an empty extent-tree header (as
    /// `ext4_ext_tree_init` does).
    pub fn new_file(extents: bool) -> Self {
        let mut ino = Inode { mode: mode::S_IFREG | 0o644, links_count: 1, ..Inode::default() };
        if extents {
            ino.init_extent_root();
        }
        ino
    }

    /// A fresh directory inode (see [`Inode::new_file`] for `extents`).
    pub fn new_dir(extents: bool) -> Self {
        let mut ino = Inode { mode: mode::S_IFDIR | 0o755, links_count: 2, ..Inode::default() };
        if extents {
            ino.init_extent_root();
        }
        ino
    }

    /// Sets the `EXTENTS` flag and writes an empty extent-tree root into
    /// `i_block`.
    pub fn init_extent_root(&mut self) {
        self.flags.insert(InodeFlags::EXTENTS);
        crate::extent::ExtentTree::new().encode_inline(&mut self.block_area);
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.mode & mode::S_IFMT == mode::S_IFDIR
    }

    /// True for regular files.
    pub fn is_file(&self) -> bool {
        self.mode & mode::S_IFMT == mode::S_IFREG
    }

    /// True if the inode slot is unused (never allocated or deleted).
    pub fn is_unused(&self) -> bool {
        self.links_count == 0 && self.mode == 0
    }

    /// True if the content is inline in `i_block`.
    pub fn is_inline(&self) -> bool {
        self.flags.contains(InodeFlags::INLINE_DATA)
    }

    /// True if content is mapped by extents.
    pub fn uses_extents(&self) -> bool {
        self.flags.contains(InodeFlags::EXTENTS)
    }

    /// Encodes into `inode_size` on-disk bytes (128 or 256).
    ///
    /// # Panics
    ///
    /// Panics if `inode_size < 128`.
    pub fn to_bytes(&self, inode_size: u16) -> Vec<u8> {
        assert!(inode_size >= 128, "inode size must be at least 128");
        let mut b = vec![0u8; inode_size as usize];
        put_u16(&mut b, 0x00, self.mode);
        put_u16(&mut b, 0x02, self.uid);
        put_u32(&mut b, 0x04, self.size as u32);
        put_u32(&mut b, 0x08, self.atime);
        put_u32(&mut b, 0x0C, self.ctime);
        put_u32(&mut b, 0x10, self.mtime);
        put_u32(&mut b, 0x14, self.dtime);
        put_u16(&mut b, 0x18, self.gid);
        put_u16(&mut b, 0x1A, self.links_count);
        put_u32(&mut b, 0x1C, self.blocks);
        put_u32(&mut b, 0x20, self.flags.0);
        b[0x28..0x28 + I_BLOCK_SIZE].copy_from_slice(&self.block_area);
        put_u32(&mut b, 0x64, self.generation);
        put_u32(&mut b, 0x6C, (self.size >> 32) as u32);
        b
    }

    /// Decodes from on-disk bytes.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() < 128`.
    pub fn from_bytes(b: &[u8]) -> Self {
        assert!(b.len() >= 128, "inode buffer too short");
        let mut block_area = [0u8; I_BLOCK_SIZE];
        block_area.copy_from_slice(&b[0x28..0x28 + I_BLOCK_SIZE]);
        Inode {
            mode: get_u16(b, 0x00),
            uid: get_u16(b, 0x02),
            size: u64::from(get_u32(b, 0x04)) | (u64::from(get_u32(b, 0x6C)) << 32),
            atime: get_u32(b, 0x08),
            ctime: get_u32(b, 0x0C),
            mtime: get_u32(b, 0x10),
            dtime: get_u32(b, 0x14),
            gid: get_u16(b, 0x18),
            links_count: get_u16(b, 0x1A),
            blocks: get_u32(b, 0x1C),
            flags: InodeFlags(get_u32(b, 0x20)),
            block_area,
            generation: get_u32(b, 0x64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_and_dir_constructors() {
        let f = Inode::new_file(true);
        assert!(f.is_file());
        assert!(!f.is_dir());
        assert!(f.uses_extents());
        assert_eq!(f.links_count, 1);
        let d = Inode::new_dir(false);
        assert!(d.is_dir());
        assert!(!d.uses_extents());
        assert_eq!(d.links_count, 2);
    }

    #[test]
    fn round_trip_128() {
        let mut ino = Inode::new_file(true);
        ino.size = 0x1_2345_6789; // exercises the high half
        ino.blocks = 42;
        ino.block_area[0] = 0x0A;
        ino.block_area[59] = 0xF3;
        let b = ino.to_bytes(128);
        assert_eq!(b.len(), 128);
        assert_eq!(Inode::from_bytes(&b), ino);
    }

    #[test]
    fn round_trip_256() {
        let ino = Inode::new_dir(true);
        let b = ino.to_bytes(256);
        assert_eq!(b.len(), 256);
        assert_eq!(Inode::from_bytes(&b), ino);
    }

    #[test]
    fn unused_detection() {
        let blank = Inode::default();
        assert!(blank.is_unused());
        let f = Inode::new_file(false);
        assert!(!f.is_unused());
    }

    #[test]
    fn flags_ops() {
        let mut fl = InodeFlags::default();
        fl.insert(InodeFlags::EXTENTS);
        fl.insert(InodeFlags::INLINE_DATA);
        assert!(fl.contains(InodeFlags::EXTENTS));
        fl.remove(InodeFlags::EXTENTS);
        assert!(!fl.contains(InodeFlags::EXTENTS));
        assert!(fl.contains(InodeFlags::INLINE_DATA));
    }

    #[test]
    fn inode_no_display() {
        assert_eq!(InodeNo(2).to_string(), "inode #2");
        assert_eq!(InodeNo::from(7u32), InodeNo(7));
    }

    #[test]
    fn serde_round_trip() {
        let ino = Inode::new_file(true);
        let json = serde_json::to_string(&ino).unwrap();
        let back: Inode = serde_json::from_str(&json).unwrap();
        assert_eq!(ino, back);
    }
}
