//! Feature flags, mirroring ext4's three feature words.
//!
//! Real ext4 divides features into *compat* (a kernel that does not know the
//! feature may still mount read-write), *incompat* (an unknowing kernel must
//! refuse the mount), and *ro_compat* (an unknowing kernel may mount
//! read-only). The same trichotomy drives several of the paper's
//! cross-component dependencies, so it is preserved faithfully here.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

macro_rules! feature_word {
    ($(#[$meta:meta])* $name:ident { $($(#[$fmeta:meta])* $flag:ident = $bit:expr => $label:expr;)* }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($bit); )*

            /// The empty feature set.
            pub const fn empty() -> Self {
                $name(0)
            }

            /// True if every bit of `other` is set in `self`.
            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// True if any bit of `other` is set in `self`.
            pub fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }

            /// Removes the bits of `other`.
            pub fn remove(&mut self, other: $name) {
                self.0 &= !other.0;
            }

            /// Inserts the bits of `other`.
            pub fn insert(&mut self, other: $name) {
                self.0 |= other.0;
            }

            /// True if no feature bits are set.
            pub fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// Human-readable names of the set flags.
            pub fn names(self) -> Vec<&'static str> {
                let mut out = Vec::new();
                $( if self.contains($name::$flag) { out.push($label); } )*
                out
            }

            /// Parses a single feature name as spelled in `mke2fs -O`.
            pub fn from_name(name: &str) -> Option<Self> {
                match name {
                    $( $label => Some($name::$flag), )*
                    _ => None,
                }
            }
        }

        impl BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                $name(self.0 | rhs.0)
            }
        }

        impl BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) {
                self.0 |= rhs.0;
            }
        }

        impl BitAnd for $name {
            type Output = $name;
            fn bitand(self, rhs: $name) -> $name {
                $name(self.0 & rhs.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.names().join(","))
            }
        }
    };
}

feature_word! {
    /// Compatible feature word (`s_feature_compat`).
    CompatFeatures {
        /// The file system keeps a journal (we model the journal as a
        /// reserved inode with preallocated blocks).
        HAS_JOURNAL = 0x0004 => "has_journal";
        /// Extended attributes.
        EXT_ATTR = 0x0008 => "ext_attr";
        /// Reserved GDT blocks exist for online growth via the resize
        /// inode.
        RESIZE_INODE = 0x0010 => "resize_inode";
        /// Hashed directory indexes (accepted, not materialised).
        DIR_INDEX = 0x0020 => "dir_index";
        /// Sparse super block v2: exactly two backup superblocks, recorded
        /// in `s_backup_bgs`. NOTE: real e2fsprogs keeps the *flag* in the
        /// compat word.
        SPARSE_SUPER2 = 0x0200 => "sparse_super2";
    }
}

feature_word! {
    /// Incompatible feature word (`s_feature_incompat`).
    IncompatFeatures {
        /// File data in extents rather than indirect blocks.
        EXTENTS = 0x0040 => "extent";
        /// Block numbers may exceed 2^32; group descriptors are 64 bytes.
        BIT64 = 0x0080 => "64bit";
        /// Meta block groups: group descriptors stored per meta-group
        /// instead of one big table after the superblock.
        META_BG = 0x0010 => "meta_bg";
        /// Directories may store tiny files inline in the inode.
        INLINE_DATA = 0x8000 => "inline_data";
        /// Data is allocated in multi-block clusters.
        BIGALLOC = 0x0200 => "bigalloc";
        /// Compression (never supported; mounting must fail).
        COMPRESSION = 0x0001 => "compression";
        /// Files may use encryption.
        ENCRYPT = 0x10000 => "encrypt";
        /// Case-insensitive lookups allowed (casefold).
        CASEFOLD = 0x20000 => "casefold";
    }
}

feature_word! {
    /// Read-only-compatible feature word (`s_feature_ro_compat`).
    RoCompatFeatures {
        /// Backup superblocks only in groups 0, 1 and powers of 3/5/7.
        SPARSE_SUPER = 0x0001 => "sparse_super";
        /// Files larger than 2 GiB.
        LARGE_FILE = 0x0002 => "large_file";
        /// Group descriptors carry free-count hints beyond 2^15 (huge_file).
        HUGE_FILE = 0x0008 => "huge_file";
        /// Group descriptor checksums.
        GDT_CSUM = 0x0010 => "uninit_bg";
        /// Directory nlink count may exceed 65000.
        DIR_NLINK = 0x0020 => "dir_nlink";
        /// Metadata checksums on all structures.
        METADATA_CSUM = 0x0400 => "metadata_csum";
        /// Quota feature.
        QUOTA = 0x0100 => "quota";
        /// Project quotas.
        PROJECT = 0x2000 => "project";
    }
}

/// The complete feature configuration of an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FeatureSet {
    /// Compatible features.
    pub compat: CompatFeatures,
    /// Incompatible features.
    pub incompat: IncompatFeatures,
    /// Read-only-compatible features.
    pub ro_compat: RoCompatFeatures,
}

impl FeatureSet {
    /// The `mke2fs` default feature set (mirrors `mke2fs.conf`'s
    /// `base_features` for ext4): sparse_super, large_file, extent,
    /// resize_inode, dir_index, has_journal.
    pub fn ext4_defaults() -> Self {
        FeatureSet {
            compat: CompatFeatures::HAS_JOURNAL
                | CompatFeatures::RESIZE_INODE
                | CompatFeatures::DIR_INDEX
                | CompatFeatures::EXT_ATTR,
            incompat: IncompatFeatures::EXTENTS,
            ro_compat: RoCompatFeatures::SPARSE_SUPER | RoCompatFeatures::LARGE_FILE,
        }
    }

    /// Parses one `-O`-style feature token; a `^` prefix clears the
    /// feature. Returns `false` if the name is unknown.
    pub fn apply_token(&mut self, token: &str) -> bool {
        let (clear, name) = match token.strip_prefix('^') {
            Some(rest) => (true, rest),
            None => (false, token),
        };
        if let Some(f) = CompatFeatures::from_name(name) {
            if clear {
                self.compat.remove(f);
            } else {
                self.compat.insert(f);
            }
            return true;
        }
        if let Some(f) = IncompatFeatures::from_name(name) {
            if clear {
                self.incompat.remove(f);
            } else {
                self.incompat.insert(f);
            }
            return true;
        }
        if let Some(f) = RoCompatFeatures::from_name(name) {
            if clear {
                self.ro_compat.remove(f);
            } else {
                self.ro_compat.insert(f);
            }
            return true;
        }
        false
    }

    /// All set feature names across the three words.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v = self.compat.names();
        v.extend(self.incompat.names());
        v.extend(self.ro_compat.names());
        v
    }

    /// True if the named feature (in any word) is enabled.
    pub fn has(&self, name: &str) -> bool {
        self.names().contains(&name)
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.names().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_insert() {
        let mut c = CompatFeatures::empty();
        assert!(c.is_empty());
        c.insert(CompatFeatures::HAS_JOURNAL);
        assert!(c.contains(CompatFeatures::HAS_JOURNAL));
        assert!(!c.contains(CompatFeatures::RESIZE_INODE));
        c.remove(CompatFeatures::HAS_JOURNAL);
        assert!(c.is_empty());
    }

    #[test]
    fn bitor_combines() {
        let c = CompatFeatures::HAS_JOURNAL | CompatFeatures::RESIZE_INODE;
        assert!(c.contains(CompatFeatures::HAS_JOURNAL));
        assert!(c.contains(CompatFeatures::RESIZE_INODE));
        assert!(c.intersects(CompatFeatures::HAS_JOURNAL));
    }

    #[test]
    fn names_round_trip() {
        let f = IncompatFeatures::EXTENTS | IncompatFeatures::BIGALLOC;
        let names = f.names();
        assert!(names.contains(&"extent"));
        assert!(names.contains(&"bigalloc"));
        assert_eq!(IncompatFeatures::from_name("extent"), Some(IncompatFeatures::EXTENTS));
        assert_eq!(IncompatFeatures::from_name("nope"), None);
    }

    #[test]
    fn apply_token_sets_and_clears() {
        let mut fs = FeatureSet::ext4_defaults();
        assert!(fs.has("resize_inode"));
        assert!(fs.apply_token("^resize_inode"));
        assert!(!fs.has("resize_inode"));
        assert!(fs.apply_token("meta_bg"));
        assert!(fs.has("meta_bg"));
        assert!(!fs.apply_token("not_a_feature"));
    }

    #[test]
    fn defaults_match_mke2fs_conf() {
        let fs = FeatureSet::ext4_defaults();
        for name in ["has_journal", "extent", "sparse_super", "large_file", "resize_inode", "dir_index"] {
            assert!(fs.has(name), "missing default feature {name}");
        }
        assert!(!fs.has("bigalloc"));
        assert!(!fs.has("sparse_super2"));
    }

    #[test]
    fn display_joins_names() {
        let f = RoCompatFeatures::SPARSE_SUPER | RoCompatFeatures::LARGE_FILE;
        let s = f.to_string();
        assert!(s.contains("sparse_super"));
        assert!(s.contains("large_file"));
    }

    #[test]
    fn serde_round_trip() {
        let fs = FeatureSet::ext4_defaults();
        let json = serde_json::to_string(&fs).unwrap();
        let back: FeatureSet = serde_json::from_str(&json).unwrap();
        assert_eq!(fs, back);
    }
}
