use std::error::Error;
use std::fmt;

use blockdev::DeviceError;

/// Errors produced by the file-system simulator.
#[derive(Debug)]
pub enum FsError {
    /// The underlying block device failed.
    Device(DeviceError),
    /// The image does not carry the ext4 magic or is otherwise not an
    /// ext4sim image.
    BadMagic {
        /// The magic value found at the superblock offset.
        found: u16,
    },
    /// A `mke2fs`-style parameter failed validation.
    InvalidParam {
        /// The parameter name (as the utility spells it).
        param: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// Two parameters conflict (a cross-parameter dependency violation).
    ConflictingParams {
        /// First parameter.
        a: &'static str,
        /// Second parameter.
        b: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A mount option failed kernel-side validation
    /// (the `ext4_fill_super` equivalent).
    MountRejected {
        /// The offending option.
        option: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// No free blocks left to satisfy an allocation.
    NoSpace,
    /// No free inodes left.
    NoInodes,
    /// An inode number was out of range or unallocated.
    BadInode(u32),
    /// A directory entry was not found.
    NotFound(String),
    /// An entry with the same name already exists.
    AlreadyExists(String),
    /// The operation requires a directory but the inode is not one.
    NotADirectory(u32),
    /// The operation is invalid on a directory.
    IsADirectory(u32),
    /// The directory still has entries.
    DirectoryNotEmpty(u32),
    /// The file system was mounted read-only.
    ReadOnlyFs,
    /// The mount degraded itself to read-only after a metadata I/O
    /// failure because the image is configured with `errors=remount-ro`;
    /// reads are still served, writes are rejected with this error.
    DegradedReadOnly,
    /// The configured `errors=panic` policy fired after a metadata I/O
    /// failure. The real kernel would panic the machine; the simulator
    /// models that as a typed error that every subsequent operation on
    /// the halted handle also returns — never as a Rust panic.
    PolicyPanic(String),
    /// The image metadata is internally inconsistent.
    Corrupt(String),
    /// The operation requires the file system to be unmounted.
    Busy,
    /// A name exceeded the maximum length (255 bytes).
    NameTooLong(usize),
    /// The operation is not supported with the image's feature set
    /// (e.g., defragmenting a non-extent file).
    NotSupported(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Device(e) => write!(f, "device error: {e}"),
            FsError::BadMagic { found } => {
                write!(f, "bad magic {found:#06x} (expected {:#06x})", crate::EXT4_MAGIC)
            }
            FsError::InvalidParam { param, reason } => {
                write!(f, "invalid value for parameter '{param}': {reason}")
            }
            FsError::ConflictingParams { a, b, reason } => {
                write!(f, "parameters '{a}' and '{b}' conflict: {reason}")
            }
            FsError::MountRejected { option, reason } => {
                write!(f, "mount option '{option}' rejected: {reason}")
            }
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::BadInode(ino) => write!(f, "bad inode number {ino}"),
            FsError::NotFound(name) => write!(f, "no such file or directory: {name}"),
            FsError::AlreadyExists(name) => write!(f, "file exists: {name}"),
            FsError::NotADirectory(ino) => write!(f, "inode {ino} is not a directory"),
            FsError::IsADirectory(ino) => write!(f, "inode {ino} is a directory"),
            FsError::DirectoryNotEmpty(ino) => write!(f, "directory inode {ino} not empty"),
            FsError::ReadOnlyFs => write!(f, "read-only file system"),
            FsError::DegradedReadOnly => {
                write!(f, "file system degraded to read-only after a metadata error (errors=remount-ro)")
            }
            FsError::PolicyPanic(msg) => {
                write!(f, "kernel panic per errors=panic policy: {msg}")
            }
            FsError::Corrupt(msg) => write!(f, "filesystem corrupt: {msg}"),
            FsError::Busy => write!(f, "filesystem busy (mounted)"),
            FsError::NameTooLong(len) => write!(f, "name too long: {len} bytes (max 255)"),
            FsError::NotSupported(msg) => write!(f, "operation not supported: {msg}"),
        }
    }
}

impl Error for FsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FsError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for FsError {
    fn from(e: DeviceError) -> Self {
        FsError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FsError::InvalidParam { param: "blocksize", reason: "must be a power of 2".into() };
        assert!(e.to_string().contains("blocksize"));
        let e = FsError::ConflictingParams {
            a: "meta_bg",
            b: "resize_inode",
            reason: "cannot be used together".into(),
        };
        assert!(e.to_string().contains("meta_bg"));
        assert!(e.to_string().contains("resize_inode"));
    }

    #[test]
    fn device_error_chains() {
        let e: FsError = DeviceError::ReadOnly.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsError>();
    }
}
