//! Image-level consistency checking — the verification engine behind the
//! `e2fsck` utility and the detector that exposes the paper's Figure 1
//! corruption (a stale `free_blocks_count` after a buggy `resize2fs`
//! expansion).

use std::collections::BTreeMap;

use blockdev::BlockDevice;

use crate::fs::{Ext4Fs, RESERVED_INODES, ROOT_INODE};
use crate::inode::InodeNo;
use crate::superblock::state;
use crate::util::div_ceil;
use crate::FsError;

/// What kind of inconsistency was found.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InconsistencyKind {
    /// The superblock free-block count disagrees with the bitmaps.
    SuperFreeBlocks {
        /// Count recorded in the superblock.
        recorded: u64,
        /// Count recomputed from the bitmaps.
        actual: u64,
    },
    /// A group descriptor's free-block count disagrees with its bitmap.
    GroupFreeBlocks {
        /// Group number.
        group: u32,
        /// Count recorded in the descriptor.
        recorded: u32,
        /// Count recomputed from the bitmap.
        actual: u32,
    },
    /// The superblock free-inode count disagrees with the bitmaps.
    SuperFreeInodes {
        /// Count recorded in the superblock.
        recorded: u32,
        /// Count recomputed from the bitmaps.
        actual: u32,
    },
    /// A group descriptor's free-inode count disagrees with its bitmap.
    GroupFreeInodes {
        /// Group number.
        group: u32,
        /// Count recorded in the descriptor.
        recorded: u32,
        /// Count recomputed from the bitmap.
        actual: u32,
    },
    /// A metadata block is not marked in its block bitmap.
    MetadataBlockFree {
        /// Group number.
        group: u32,
        /// The unmarked cluster index.
        cluster: u32,
    },
    /// An allocated inode is not reachable from the root directory.
    UnreachableInode {
        /// The orphaned inode.
        ino: u32,
    },
    /// An inode's link count disagrees with the directory tree.
    WrongLinkCount {
        /// The inode.
        ino: u32,
        /// Recorded link count.
        recorded: u16,
        /// Count derived from directory entries.
        actual: u16,
    },
    /// A directory entry points at an unallocated inode.
    DanglingDirent {
        /// Directory inode.
        dir: u32,
        /// Entry name.
        name: String,
        /// Target inode.
        target: u32,
    },
    /// The image was not cleanly unmounted.
    NotCleanlyUnmounted,
    /// The superblock carries the error flag.
    ErrorFlagSet,
    /// A backup superblock disagrees with the primary on vital geometry.
    StaleBackupSuper {
        /// Backup group.
        group: u32,
        /// Field that differs.
        field: String,
    },
    /// A data block is referenced by two different inodes (cross-link).
    CrossLinkedBlock {
        /// The doubly-claimed block.
        block: u64,
        /// The two owners.
        inodes: (u32, u32),
    },
}

impl InconsistencyKind {
    /// Short machine-readable tag used by reports.
    pub fn tag(&self) -> &'static str {
        match self {
            InconsistencyKind::SuperFreeBlocks { .. } => "super_free_blocks",
            InconsistencyKind::GroupFreeBlocks { .. } => "group_free_blocks",
            InconsistencyKind::SuperFreeInodes { .. } => "super_free_inodes",
            InconsistencyKind::GroupFreeInodes { .. } => "group_free_inodes",
            InconsistencyKind::MetadataBlockFree { .. } => "metadata_block_free",
            InconsistencyKind::UnreachableInode { .. } => "unreachable_inode",
            InconsistencyKind::WrongLinkCount { .. } => "wrong_link_count",
            InconsistencyKind::DanglingDirent { .. } => "dangling_dirent",
            InconsistencyKind::NotCleanlyUnmounted => "not_cleanly_unmounted",
            InconsistencyKind::ErrorFlagSet => "error_flag_set",
            InconsistencyKind::StaleBackupSuper { .. } => "stale_backup_super",
            InconsistencyKind::CrossLinkedBlock { .. } => "cross_linked_block",
        }
    }
}

/// One detected inconsistency with the pass that found it (mirroring
/// e2fsck's pass structure).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Inconsistency {
    /// e2fsck pass number (1–5).
    pub pass: u8,
    /// The finding.
    pub kind: InconsistencyKind,
}

/// The result of a full check.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CheckReport {
    /// All findings in pass order.
    pub inconsistencies: Vec<Inconsistency>,
}

impl CheckReport {
    /// True when the image is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.inconsistencies.is_empty()
    }

    /// Findings of one kind tag.
    pub fn of_tag(&self, tag: &str) -> Vec<&Inconsistency> {
        self.inconsistencies.iter().filter(|i| i.kind.tag() == tag).collect()
    }
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass {}: {:?}", self.pass, self.kind)
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        writeln!(f, "{} inconsistencies:", self.inconsistencies.len())?;
        for i in &self.inconsistencies {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

/// Runs the full consistency check (all five passes) without modifying the
/// image.
///
/// # Errors
///
/// Returns device errors or [`FsError::Corrupt`] when metadata cannot even
/// be parsed well enough to check.
pub fn check_image<D: BlockDevice>(fs: &Ext4Fs<D>) -> Result<CheckReport, FsError> {
    let mut report = CheckReport::default();
    let sb = fs.superblock();
    let l = fs.layout();

    // pass 0: superblock state
    if sb.state & state::VALID_FS == 0 {
        report.inconsistencies.push(Inconsistency { pass: 0, kind: InconsistencyKind::NotCleanlyUnmounted });
    }
    if sb.state & state::ERROR_FS != 0 {
        report.inconsistencies.push(Inconsistency { pass: 0, kind: InconsistencyKind::ErrorFlagSet });
    }

    // pass 1: inodes and block ownership
    let mut claimed: BTreeMap<u64, u32> = BTreeMap::new();
    let mut allocated_inodes: Vec<u32> = Vec::new();
    for g in 0..l.group_count() {
        let ibm = fs.read_inode_bitmap(g)?;
        for idx in 0..l.inodes_per_group {
            if ibm.get(idx) {
                let ino = g * l.inodes_per_group + idx + 1;
                allocated_inodes.push(ino);
            }
        }
    }
    for &ino in &allocated_inodes {
        if ino <= RESERVED_INODES && ino != ROOT_INODE.0 {
            // reserved inodes other than root aren't part of the tree
            let inode = fs.read_inode(InodeNo(ino))?;
            for b in fs.file_blocks(&inode)? {
                claimed.insert(b, ino);
            }
            continue;
        }
        let inode = fs.read_inode(InodeNo(ino))?;
        for b in fs.file_blocks(&inode)? {
            if let Some(&other) = claimed.get(&b) {
                report.inconsistencies.push(Inconsistency {
                    pass: 1,
                    kind: InconsistencyKind::CrossLinkedBlock { block: b, inodes: (other, ino) },
                });
            } else {
                claimed.insert(b, ino);
            }
        }
    }

    // pass 2: directory structure; pass 3: connectivity; pass 4: link counts
    let mut link_counts: BTreeMap<u32, u16> = BTreeMap::new();
    let mut reachable: Vec<u32> = Vec::new();
    let mut stack = vec![ROOT_INODE.0];
    let mut visited: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    while let Some(dir) = stack.pop() {
        if !visited.insert(dir) {
            continue;
        }
        reachable.push(dir);
        let entries = match fs.readdir(InodeNo(dir)) {
            Ok(e) => e,
            Err(FsError::Corrupt(_)) | Err(FsError::NotADirectory(_)) => continue,
            Err(e) => return Err(e),
        };
        for e in entries {
            *link_counts.entry(e.inode).or_insert(0) += 1;
            if e.name == "." || e.name == ".." {
                continue;
            }
            if e.inode == 0 || e.inode > sb.inodes_count || !allocated_inodes.contains(&e.inode) {
                report.inconsistencies.push(Inconsistency {
                    pass: 2,
                    kind: InconsistencyKind::DanglingDirent { dir, name: e.name.clone(), target: e.inode },
                });
                continue;
            }
            let child = fs.read_inode(InodeNo(e.inode))?;
            if child.is_dir() {
                stack.push(e.inode);
            } else {
                reachable.push(e.inode);
            }
        }
    }
    for &ino in &allocated_inodes {
        if ino <= RESERVED_INODES && ino != ROOT_INODE.0 {
            continue;
        }
        if !reachable.contains(&ino) {
            report.inconsistencies.push(Inconsistency {
                pass: 3,
                kind: InconsistencyKind::UnreachableInode { ino },
            });
            continue;
        }
        let inode = fs.read_inode(InodeNo(ino))?;
        let expected: u16 = if inode.is_dir() {
            // '.' + parent's entry + one '..' per subdirectory
            let subdirs = fs
                .readdir(InodeNo(ino))?
                .iter()
                .filter(|e| e.name != "." && e.name != "..")
                .filter(|e| {
                    fs.read_inode(InodeNo(e.inode)).map(|i| i.is_dir()).unwrap_or(false)
                })
                .count() as u16;
            2 + subdirs
        } else {
            link_counts.get(&ino).copied().unwrap_or(0)
        };
        if inode.links_count != expected && ino != ROOT_INODE.0 {
            report.inconsistencies.push(Inconsistency {
                pass: 4,
                kind: InconsistencyKind::WrongLinkCount { ino, recorded: inode.links_count, actual: expected },
            });
        }
    }

    // pass 5: bitmaps and counters
    let mut actual_free_blocks: u64 = 0;
    let mut actual_free_inodes: u32 = 0;
    for g in 0..l.group_count() {
        let bbm = fs.read_block_bitmap(g)?;
        let free_clusters = bbm.count_clear();
        // metadata clusters must be marked used: hop across clear bits at
        // word granularity instead of probing every cluster
        let overhead = l.group_overhead(g);
        let overhead_clusters = div_ceil(u64::from(overhead), u64::from(l.cluster_ratio)) as u32;
        let mut c = 0u32;
        while let Some(idx) = bbm.find_clear_from(c) {
            if idx >= overhead_clusters {
                break;
            }
            report.inconsistencies.push(Inconsistency {
                pass: 5,
                kind: InconsistencyKind::MetadataBlockFree { group: g, cluster: idx },
            });
            c = idx + 1;
        }
        let actual = free_clusters * l.cluster_ratio;
        let gd = &fs.groups()[g as usize];
        if gd.free_blocks_count != actual {
            report.inconsistencies.push(Inconsistency {
                pass: 5,
                kind: InconsistencyKind::GroupFreeBlocks { group: g, recorded: gd.free_blocks_count, actual },
            });
        }
        actual_free_blocks += u64::from(actual);

        let ibm = fs.read_inode_bitmap(g)?;
        let actual_fi = ibm.count_clear();
        if gd.free_inodes_count != actual_fi {
            report.inconsistencies.push(Inconsistency {
                pass: 5,
                kind: InconsistencyKind::GroupFreeInodes { group: g, recorded: gd.free_inodes_count, actual: actual_fi },
            });
        }
        actual_free_inodes += actual_fi;
    }
    if sb.free_blocks_count != actual_free_blocks {
        report.inconsistencies.push(Inconsistency {
            pass: 5,
            kind: InconsistencyKind::SuperFreeBlocks { recorded: sb.free_blocks_count, actual: actual_free_blocks },
        });
    }
    if sb.free_inodes_count != actual_free_inodes {
        report.inconsistencies.push(Inconsistency {
            pass: 5,
            kind: InconsistencyKind::SuperFreeInodes { recorded: sb.free_inodes_count, actual: actual_free_inodes },
        });
    }

    // backup superblocks
    for g in l.backup_groups() {
        let base = l.group_first_block(g);
        let data = fs.device().read_block_vec(base)?;
        let mut sb_bytes = data;
        if sb_bytes.len() < crate::superblock::SUPERBLOCK_SIZE {
            continue;
        }
        sb_bytes.truncate(crate::superblock::SUPERBLOCK_SIZE);
        match crate::Superblock::from_bytes(&sb_bytes) {
            Ok(backup) => {
                if backup.blocks_count != sb.blocks_count {
                    report.inconsistencies.push(Inconsistency {
                        pass: 5,
                        kind: InconsistencyKind::StaleBackupSuper { group: g, field: "blocks_count".to_string() },
                    });
                } else if backup.features != sb.features {
                    report.inconsistencies.push(Inconsistency {
                        pass: 5,
                        kind: InconsistencyKind::StaleBackupSuper { group: g, field: "features".to_string() },
                    });
                }
            }
            Err(_) => {
                report.inconsistencies.push(Inconsistency {
                    pass: 5,
                    kind: InconsistencyKind::StaleBackupSuper { group: g, field: "magic".to_string() },
                });
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MkfsParams, MountOptions};
    use blockdev::MemDevice;

    fn clean_fs() -> Ext4Fs<MemDevice> {
        let dev = MemDevice::new(1024, 8192 * 2);
        let mut fs = Ext4Fs::format(
            dev,
            &MkfsParams { block_size: Some(1024), ..MkfsParams::default() },
        )
        .unwrap();
        let root = fs.root_inode();
        let f = fs.create_file(root, "file").unwrap();
        fs.write_file(f, 0, b"content").unwrap();
        fs.mkdir(root, "dir").unwrap();
        let dev = fs.unmount().unwrap();
        Ext4Fs::open_for_maintenance(dev).unwrap()
    }

    #[test]
    fn fresh_image_is_clean() {
        let fs = clean_fs();
        let report = check_image(&fs).unwrap();
        assert!(report.is_clean(), "unexpected findings: {:#?}", report.inconsistencies);
        assert_eq!(report.to_string(), "clean");
    }

    #[test]
    fn report_display_lists_findings() {
        let mut fs = clean_fs();
        fs.superblock_mut().free_blocks_count += 100;
        let report = check_image(&fs).unwrap();
        let s = report.to_string();
        assert!(s.contains("1 inconsistencies"));
        assert!(s.contains("pass 5"));
    }

    #[test]
    fn detects_wrong_super_free_blocks() {
        let mut fs = clean_fs();
        fs.superblock_mut().free_blocks_count += 100;
        let report = check_image(&fs).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.of_tag("super_free_blocks").len(), 1);
    }

    #[test]
    fn detects_wrong_group_free_blocks() {
        let mut fs = clean_fs();
        fs.groups_mut()[0].free_blocks_count += 7;
        let report = check_image(&fs).unwrap();
        assert_eq!(report.of_tag("group_free_blocks").len(), 1);
        // superblock total still matches bitmaps, so only the group is flagged
        assert!(report.of_tag("super_free_blocks").is_empty());
    }

    #[test]
    fn detects_metadata_block_freed() {
        let mut fs = clean_fs();
        let mut bbm = fs.read_block_bitmap(0).unwrap();
        bbm.clear(0); // the superblock's own cluster
        fs.write_block_bitmap(0, &bbm).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("metadata_block_free").is_empty());
    }

    #[test]
    fn detects_dirty_state() {
        let dev = MemDevice::new(1024, 8192);
        let fs = Ext4Fs::format(
            dev,
            &MkfsParams { block_size: Some(1024), ..MkfsParams::default() },
        )
        .unwrap();
        // crash: no unmount. Mount wrote the dirty flag at format time? No:
        // format flushes a clean sb, then the handle is rw. Simulate a rw
        // mount followed by crash:
        let dev = fs.unmount().unwrap();
        let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let dev = fs.dev_for_test();
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("not_cleanly_unmounted").is_empty());
    }

    #[test]
    fn detects_dangling_dirent() {
        let mut fs = clean_fs();
        // add a dirent pointing at a free inode
        let root = fs.root_inode();
        let victim = fs.create_file(root, "ghost").unwrap();
        // free the inode behind the directory's back
        fs.free_inode(victim, false).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("dangling_dirent").is_empty());
    }

    #[test]
    fn detects_unreachable_inode() {
        let mut fs = clean_fs();
        let root = fs.root_inode();
        let f = fs.create_file(root, "orphan-to-be").unwrap();
        fs.write_file(f, 0, b"data").unwrap();
        // remove the dirent without freeing the inode
        let mut inode = fs.read_inode(f).unwrap();
        inode.links_count = 1;
        fs.write_inode(f, &inode).unwrap();
        fs.remove_dirent_for_test(root, "orphan-to-be");
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("unreachable_inode").is_empty());
    }

    #[test]
    fn detects_wrong_link_count() {
        let mut fs = clean_fs();
        let root = fs.root_inode();
        let f = fs.create_file(root, "linky").unwrap();
        let mut inode = fs.read_inode(f).unwrap();
        inode.links_count = 5;
        fs.write_inode(f, &inode).unwrap();
        let report = check_image(&fs).unwrap();
        let findings = report.of_tag("wrong_link_count");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn detects_stale_backup_super() {
        let mut fs = clean_fs();
        // grow the primary's blocks_count without updating backups
        fs.superblock_mut().blocks_count += 8192;
        // (don't refresh layout: keep backup positions)
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("stale_backup_super").is_empty());
    }

    #[test]
    fn detects_cross_linked_blocks() {
        let mut fs = clean_fs();
        let root = fs.root_inode();
        let a = fs.create_file(root, "xa").unwrap();
        fs.write_file(a, 0, &[1u8; 1024]).unwrap();
        let ia = fs.read_inode(a).unwrap();
        let shared = fs.file_blocks(&ia).unwrap()[0];
        let b = fs.create_file(root, "xb").unwrap();
        // force file b to claim the same block
        let mut ib = fs.read_inode(b).unwrap();
        fs.set_block_for_test(&mut ib, 0, shared);
        ib.size = 1024;
        fs.write_inode(b, &ib).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(!report.of_tag("cross_linked_block").is_empty());
    }
}
