//! A jbd2-style write-ahead journal.
//!
//! The journal lives in the blocks preallocated to the reserved journal
//! inode (#8) at `mke2fs` time, with the real jbd2 structure: a journal
//! superblock, then transactions — each a *descriptor block* listing the
//! home locations of the blocks that follow, the data blocks themselves,
//! and a *commit block* sealing the transaction. Metadata updates are
//! written to the journal and committed before they are checkpointed to
//! their home locations; after a crash, [`Journal::replay`] re-applies
//! every sealed transaction and ignores a trailing unsealed one — the
//! invariant that makes `data=ordered` metadata updates atomic.

use blockdev::BlockDevice;

use crate::util::{checksum, get_u32, get_u64, put_u32, put_u64};
use crate::FsError;

/// Magic of every journal block header (jbd2's 0xc03b3998).
pub const JBD_MAGIC: u32 = 0xc03b_3998;

const KIND_SUPER: u32 = 1;
const KIND_DESCRIPTOR: u32 = 2;
const KIND_COMMIT: u32 = 3;

/// One metadata update: `data` belongs at home location `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Home (absolute) block number.
    pub target: u64,
    /// The block contents.
    pub data: Vec<u8>,
}

/// A transaction being assembled.
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    records: Vec<JournalRecord>,
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the update for `target`.
    pub fn add(&mut self, target: u64, data: Vec<u8>) {
        if let Some(r) = self.records.iter_mut().find(|r| r.target == target) {
            r.data = data;
        } else {
            self.records.push(JournalRecord { target, data });
        }
    }

    /// Number of block updates in the transaction.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no updates were added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The journal: a region of `blocks` (absolute block numbers, in order)
/// on a device with `block_size`-byte blocks.
#[derive(Debug, Clone)]
pub struct Journal {
    blocks: Vec<u64>,
    block_size: u32,
    /// Next free slot (index into `blocks`) and the next sequence number.
    head: u32,
    sequence: u32,
}

impl Journal {
    /// Opens a journal region, reading its superblock (slot 0).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] when the region is too small.
    pub fn open<D: BlockDevice>(dev: &D, blocks: Vec<u64>, block_size: u32) -> Result<Self, FsError> {
        if blocks.len() < 4 {
            return Err(FsError::Corrupt(format!(
                "journal region too small: {} blocks",
                blocks.len()
            )));
        }
        let raw = dev.read_block_vec(blocks[0])?;
        let mut j = Journal { blocks, block_size, head: 1, sequence: 1 };
        if get_u32(&raw, 0) == JBD_MAGIC && get_u32(&raw, 4) == KIND_SUPER {
            j.head = get_u32(&raw, 8).max(1);
            j.sequence = get_u32(&raw, 12).max(1);
        }
        Ok(j)
    }

    /// Formats the journal superblock (an empty journal).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn format<D: BlockDevice>(dev: &mut D, blocks: &[u64], block_size: u32) -> Result<(), FsError> {
        if blocks.len() < 4 {
            return Err(FsError::Corrupt(format!(
                "journal region too small: {} blocks",
                blocks.len()
            )));
        }
        let mut sb = vec![0u8; block_size as usize];
        put_u32(&mut sb, 0, JBD_MAGIC);
        put_u32(&mut sb, 4, KIND_SUPER);
        put_u32(&mut sb, 8, 1); // head
        put_u32(&mut sb, 12, 1); // sequence
        dev.write_block(blocks[0], &sb)?;
        Ok(())
    }

    /// Free slots remaining before the journal must be reset.
    pub fn free_slots(&self) -> u32 {
        (self.blocks.len() as u32).saturating_sub(self.head)
    }

    /// Writes and seals a transaction in the journal — after this
    /// returns, the updates survive a crash even if their home locations
    /// were never touched.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] when the transaction does not fit
    /// even in a freshly-reset journal, and device errors otherwise.
    pub fn commit<D: BlockDevice>(&mut self, dev: &mut D, txn: &Transaction) -> Result<(), FsError> {
        if txn.is_empty() {
            return Ok(());
        }
        let needed = txn.len() as u32 + 2; // descriptor + data + commit
        if needed > self.blocks.len() as u32 - 1 {
            return Err(FsError::NoSpace);
        }
        if needed > self.free_slots() {
            // the journal is full: earlier transactions were checkpointed
            // by their committers, so wrapping to the start is safe
            self.head = 1;
        }
        let bs = self.block_size as usize;
        // descriptor
        let mut desc = vec![0u8; bs];
        put_u32(&mut desc, 0, JBD_MAGIC);
        put_u32(&mut desc, 4, KIND_DESCRIPTOR);
        put_u32(&mut desc, 8, self.sequence);
        put_u32(&mut desc, 12, txn.len() as u32);
        for (i, r) in txn.records.iter().enumerate() {
            put_u64(&mut desc, 16 + i * 8, r.target);
        }
        dev.write_block(self.blocks[self.head as usize], &desc)?;
        self.head += 1;
        // data blocks
        let mut csum = checksum(&desc);
        for r in &txn.records {
            let mut data = r.data.clone();
            data.resize(bs, 0);
            csum ^= checksum(&data);
            dev.write_block(self.blocks[self.head as usize], &data)?;
            self.head += 1;
        }
        // Barrier: descriptor and data must be durable before the seal,
        // or a volatile cache could persist the commit block alone and
        // replay would apply garbage that happens to checksum.
        dev.flush()?;
        // commit block seals the transaction
        let mut commit = vec![0u8; bs];
        put_u32(&mut commit, 0, JBD_MAGIC);
        put_u32(&mut commit, 4, KIND_COMMIT);
        put_u32(&mut commit, 8, self.sequence);
        put_u32(&mut commit, 12, csum);
        dev.write_block(self.blocks[self.head as usize], &commit)?;
        self.head += 1;
        self.sequence += 1;
        // Barrier: the seal itself must be durable before the caller
        // checkpoints home locations (jbd2 issues the commit record
        // with FUA/flush for the same reason).
        dev.flush()?;
        self.write_super(dev)?;
        Ok(())
    }

    /// Checkpoints a committed transaction: writes the updates to their
    /// home locations. (Separated from [`Journal::commit`] so tests can
    /// crash between the two.)
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn checkpoint<D: BlockDevice>(dev: &mut D, txn: &Transaction, block_size: u32) -> Result<(), FsError> {
        let bs = block_size as usize;
        for r in &txn.records {
            let mut data = r.data.clone();
            data.resize(bs, 0);
            dev.write_block(r.target, &data)?;
        }
        Ok(())
    }

    /// Replays every sealed transaction in order, ignoring a trailing
    /// unsealed one. Returns the number of transactions applied and
    /// resets the journal.
    ///
    /// # Errors
    ///
    /// Propagates device errors; malformed journal content stops the
    /// scan (it is treated as the unsealed tail, as jbd2 does).
    pub fn replay<D: BlockDevice>(&mut self, dev: &mut D) -> Result<usize, FsError> {
        if self.head <= 1 {
            return Ok(0); // the journal superblock marks it empty
        }
        let bs = self.block_size as usize;
        let mut applied = 0usize;
        let mut slot = 1usize;
        let mut expected_seq = 1u32;
        while slot < self.blocks.len() {
            let desc = dev.read_block_vec(self.blocks[slot])?;
            if get_u32(&desc, 0) != JBD_MAGIC
                || get_u32(&desc, 4) != KIND_DESCRIPTOR
                || get_u32(&desc, 8) < expected_seq
            {
                break; // end of journal / stale data
            }
            let seq = get_u32(&desc, 8);
            let count = get_u32(&desc, 12) as usize;
            if slot + count + 1 > self.blocks.len() || count == 0 || 16 + count * 8 > bs {
                break;
            }
            // gather data and verify the seal
            let mut csum = checksum(&desc);
            let mut records = Vec::with_capacity(count);
            for i in 0..count {
                let data = dev.read_block_vec(self.blocks[slot + 1 + i])?;
                csum ^= checksum(&data);
                records.push(JournalRecord { target: get_u64(&desc, 16 + i * 8), data });
            }
            let commit_slot = slot + 1 + count;
            if commit_slot >= self.blocks.len() {
                break;
            }
            let commit = dev.read_block_vec(self.blocks[commit_slot])?;
            if get_u32(&commit, 0) != JBD_MAGIC
                || get_u32(&commit, 4) != KIND_COMMIT
                || get_u32(&commit, 8) != seq
                || get_u32(&commit, 12) != csum
            {
                break; // unsealed or torn transaction: discard
            }
            for r in &records {
                dev.write_block(r.target, &r.data)?;
            }
            applied += 1;
            expected_seq = seq + 1;
            slot = commit_slot + 1;
        }
        self.reset(dev)?;
        Ok(applied)
    }

    /// Marks the journal empty (after a clean checkpoint or a replay).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn reset<D: BlockDevice>(&mut self, dev: &mut D) -> Result<(), FsError> {
        self.head = 1;
        self.sequence = 1;
        self.write_super(dev)
    }

    fn write_super<D: BlockDevice>(&self, dev: &mut D) -> Result<(), FsError> {
        let mut sb = vec![0u8; self.block_size as usize];
        put_u32(&mut sb, 0, JBD_MAGIC);
        put_u32(&mut sb, 4, KIND_SUPER);
        put_u32(&mut sb, 8, self.head);
        put_u32(&mut sb, 12, self.sequence);
        dev.write_block(self.blocks[0], &sb)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDevice;

    fn setup() -> (MemDevice, Vec<u64>) {
        let dev = MemDevice::new(512, 256);
        let blocks: Vec<u64> = (100..140).collect();
        (dev, blocks)
    }

    #[test]
    fn commit_checkpoint_round_trip() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks, 512).unwrap();
        let mut txn = Transaction::new();
        txn.add(5, vec![0xAA; 512]);
        txn.add(7, vec![0xBB; 512]);
        j.commit(&mut dev, &txn).unwrap();
        Journal::checkpoint(&mut dev, &txn, 512).unwrap();
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![0xAA; 512]);
        assert_eq!(dev.read_block_vec(7).unwrap(), vec![0xBB; 512]);
    }

    #[test]
    fn replay_recovers_committed_but_not_checkpointed() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks.clone(), 512).unwrap();
        let mut txn = Transaction::new();
        txn.add(5, vec![0xAA; 512]);
        j.commit(&mut dev, &txn).unwrap();
        // CRASH before checkpoint: home block still zero
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![0u8; 512]);
        // reopen + replay (the journal superblock carries the head)
        let mut j2 = Journal::open(&dev, blocks, 512).unwrap();
        let applied = j2.replay(&mut dev).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![0xAA; 512]);
    }

    #[test]
    fn unsealed_transaction_is_discarded() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks.clone(), 512).unwrap();
        let mut txn = Transaction::new();
        txn.add(5, vec![0xCC; 512]);
        j.commit(&mut dev, &txn).unwrap();
        // tear the commit block of the transaction
        let commit_slot = blocks[2 + 1]; // sb, desc, data, commit
        dev.corrupt_byte(commit_slot, 0, 0).unwrap();
        let mut j2 = Journal::open(&dev, blocks, 512).unwrap();
        let applied = j2.replay(&mut dev).unwrap();
        assert_eq!(applied, 0, "a torn commit must not be replayed");
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn corrupted_data_block_fails_the_seal() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks.clone(), 512).unwrap();
        let mut txn = Transaction::new();
        txn.add(5, vec![0xDD; 512]);
        j.commit(&mut dev, &txn).unwrap();
        // flip a byte in the journaled data copy
        dev.corrupt_byte(blocks[2], 10, 0x00).unwrap();
        let mut j2 = Journal::open(&dev, blocks, 512).unwrap();
        assert_eq!(j2.replay(&mut dev).unwrap(), 0, "checksum mismatch must discard");
    }

    #[test]
    fn multiple_transactions_replay_in_order() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks.clone(), 512).unwrap();
        for round in 1..=3u8 {
            let mut txn = Transaction::new();
            txn.add(5, vec![round; 512]);
            j.commit(&mut dev, &txn).unwrap();
        }
        let mut j2 = Journal::open(&dev, blocks, 512).unwrap();
        assert_eq!(j2.replay(&mut dev).unwrap(), 3);
        // the last committed value wins
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![3u8; 512]);
    }

    #[test]
    fn journal_wraps_when_full() {
        let (mut dev, blocks) = setup(); // 40 slots
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks, 512).unwrap();
        // each txn takes 3 slots; 13 txns exceed 39 usable slots
        for round in 0..13u8 {
            let mut txn = Transaction::new();
            txn.add(5, vec![round; 512]);
            j.commit(&mut dev, &txn).unwrap();
            Journal::checkpoint(&mut dev, &txn, 512).unwrap();
        }
        assert_eq!(dev.read_block_vec(5).unwrap(), vec![12u8; 512]);
    }

    #[test]
    fn oversized_transaction_rejected() {
        let (mut dev, blocks) = setup();
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks, 512).unwrap();
        let mut txn = Transaction::new();
        for t in 0..60u64 {
            txn.add(t, vec![1; 512]);
        }
        assert!(matches!(j.commit(&mut dev, &txn), Err(FsError::NoSpace)));
    }

    #[test]
    fn transaction_dedups_targets() {
        let mut txn = Transaction::new();
        txn.add(5, vec![1; 4]);
        txn.add(5, vec![2; 4]);
        assert_eq!(txn.len(), 1);
        assert_eq!(txn.records[0].data, vec![2; 4]);
    }

    #[test]
    fn commit_brackets_the_seal_with_flush_barriers() {
        let (dev, blocks) = setup();
        let mut dev = blockdev::RecordingDevice::new(dev);
        Journal::format(&mut dev, &blocks, 512).unwrap();
        let mut j = Journal::open(&dev, blocks, 512).unwrap();
        let mut txn = Transaction::new();
        txn.add(5, vec![0xEE; 512]);
        j.commit(&mut dev, &txn).unwrap();
        let (_, trace) = dev.into_parts();
        // stream: jsb, desc, data, FLUSH, commit, FLUSH, jsb
        let kinds: Vec<bool> = trace
            .events()
            .iter()
            .map(|e| matches!(e, blockdev::IoEvent::Flush))
            .collect();
        assert_eq!(kinds, vec![false, false, false, true, false, true, false]);
    }

    #[test]
    fn tiny_region_rejected() {
        let mut dev = MemDevice::new(512, 16);
        assert!(Journal::format(&mut dev, &[1, 2], 512).is_err());
        assert!(Journal::open(&dev, vec![1, 2], 512).is_err());
    }
}
