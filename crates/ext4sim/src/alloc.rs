//! Allocation policies: which block group should serve a new inode or
//! block. A simplified Orlov allocator, matching ext4's spirit: spread
//! directories across groups, keep files near their parent directory.

use crate::group::GroupDesc;

/// Picks a group for a new directory inode: the group with the most free
/// inodes among those with above-average free blocks (Orlov top-level
/// heuristic, simplified).
pub fn pick_group_for_dir(groups: &[GroupDesc]) -> Option<u32> {
    if groups.is_empty() {
        return None;
    }
    let avg_free_blocks =
        groups.iter().map(|g| u64::from(g.free_blocks_count)).sum::<u64>() / groups.len() as u64;
    let candidates: Vec<(u32, &GroupDesc)> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| (i as u32, g))
        .filter(|(_, g)| g.free_inodes_count > 0 && u64::from(g.free_blocks_count) >= avg_free_blocks)
        .collect();
    let pool: Vec<(u32, &GroupDesc)> = if candidates.is_empty() {
        groups
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u32, g))
            .filter(|(_, g)| g.free_inodes_count > 0)
            .collect()
    } else {
        candidates
    };
    pool.into_iter()
        .min_by_key(|(i, g)| (std::cmp::Reverse(g.free_inodes_count), *i))
        .map(|(i, _)| i)
}

/// Picks a group for a new file inode: the parent's group when it has free
/// inodes, else the nearest group that does.
pub fn pick_group_for_file(groups: &[GroupDesc], parent_group: u32) -> Option<u32> {
    let n = groups.len() as u32;
    if n == 0 {
        return None;
    }
    let start = parent_group.min(n - 1);
    if groups[start as usize].free_inodes_count > 0 {
        return Some(start);
    }
    // quadratic-ish probe like ext4's find_group_other
    for d in 1..n {
        let g = (start + d) % n;
        if groups[g as usize].free_inodes_count > 0 {
            return Some(g);
        }
    }
    None
}

/// Picks a group for block allocation: prefer `goal_group`, else the first
/// group with free blocks.
pub fn pick_group_for_block(groups: &[GroupDesc], goal_group: u32) -> Option<u32> {
    let n = groups.len() as u32;
    if n == 0 {
        return None;
    }
    let start = goal_group.min(n - 1);
    if groups[start as usize].free_blocks_count > 0 {
        return Some(start);
    }
    for d in 1..n {
        let g = (start + d) % n;
        if groups[g as usize].free_blocks_count > 0 {
            return Some(g);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(free_blocks: &[u32], free_inodes: &[u32]) -> Vec<GroupDesc> {
        free_blocks
            .iter()
            .zip(free_inodes)
            .map(|(&fb, &fi)| GroupDesc {
                free_blocks_count: fb,
                free_inodes_count: fi,
                ..GroupDesc::default()
            })
            .collect()
    }

    #[test]
    fn dir_prefers_roomy_group() {
        let groups = mk(&[100, 8000, 4000], &[10, 200, 150]);
        assert_eq!(pick_group_for_dir(&groups), Some(1));
    }

    #[test]
    fn dir_falls_back_when_no_above_average_group_has_inodes() {
        let groups = mk(&[100, 8000], &[10, 0]);
        assert_eq!(pick_group_for_dir(&groups), Some(0));
    }

    #[test]
    fn dir_none_when_no_inodes_anywhere() {
        let groups = mk(&[100, 100], &[0, 0]);
        assert_eq!(pick_group_for_dir(&groups), None);
        assert_eq!(pick_group_for_dir(&[]), None);
    }

    #[test]
    fn file_sticks_with_parent() {
        let groups = mk(&[10, 10, 10], &[5, 5, 5]);
        assert_eq!(pick_group_for_file(&groups, 1), Some(1));
    }

    #[test]
    fn file_probes_forward_with_wraparound() {
        let groups = mk(&[10, 10, 10], &[5, 0, 0]);
        assert_eq!(pick_group_for_file(&groups, 2), Some(0));
        assert_eq!(pick_group_for_file(&groups, 1), Some(0));
    }

    #[test]
    fn block_goal_honored() {
        let groups = mk(&[0, 7, 7], &[1, 1, 1]);
        assert_eq!(pick_group_for_block(&groups, 0), Some(1));
        assert_eq!(pick_group_for_block(&groups, 2), Some(2));
    }

    #[test]
    fn block_none_when_full() {
        let groups = mk(&[0, 0], &[1, 1]);
        assert_eq!(pick_group_for_block(&groups, 0), None);
    }

    #[test]
    fn out_of_range_goal_clamped() {
        let groups = mk(&[5], &[5]);
        assert_eq!(pick_group_for_block(&groups, 99), Some(0));
        assert_eq!(pick_group_for_file(&groups, 99), Some(0));
    }
}
