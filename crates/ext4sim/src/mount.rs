//! Mount options and the kernel-side validation that real ext4 performs in
//! `ext4_fill_super` (the paper's mount-stage configuration surface).

use crate::features::{CompatFeatures, IncompatFeatures, RoCompatFeatures};
use crate::{FsError, Superblock};

/// Journalling mode selected with `data=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DataMode {
    /// Metadata-only journalling, data written before commit (default).
    #[default]
    Ordered,
    /// All data goes through the journal.
    Journal,
    /// Metadata-only journalling, no data ordering.
    Writeback,
}

impl DataMode {
    /// The `mount -o data=` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DataMode::Ordered => "ordered",
            DataMode::Journal => "journal",
            DataMode::Writeback => "writeback",
        }
    }

    /// Parses the `mount -o data=` spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ordered" => Some(DataMode::Ordered),
            "journal" => Some(DataMode::Journal),
            "writeback" => Some(DataMode::Writeback),
            _ => None,
        }
    }
}

/// Typed mount options (the `-o` surface of `mount`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MountOptions {
    /// Mount read-only.
    pub read_only: bool,
    /// Enable DAX (direct access to persistent memory, bypassing the page
    /// cache).
    pub dax: bool,
    /// Journalling mode.
    pub data: DataMode,
    /// Check block allocations against metadata regions on every mapping.
    pub block_validity: bool,
    /// Skip journal replay (`noload`).
    pub noload: bool,
    /// Override the on-image error policy.
    pub errors: Option<u16>,
    /// Continue even if the image carries errors (`force`; not a real ext4
    /// option, used by violation-injection experiments).
    pub force: bool,
    /// Simulated page size of the host (DAX requires block size == page
    /// size); 4096 matches x86-64.
    pub page_size: u32,
    /// Journal group commit: up to this many operations' metadata
    /// updates coalesce into one commit record with a single flush
    /// barrier (jbd2's transaction batching). `0` and `1` both mean
    /// commit-per-operation — the historical behaviour — and values
    /// above `1` require the image to carry a journal.
    #[serde(default)]
    pub max_batch_ops: u32,
}

impl Default for MountOptions {
    fn default() -> Self {
        MountOptions {
            read_only: false,
            dax: false,
            data: DataMode::Ordered,
            block_validity: false,
            noload: false,
            errors: None,
            force: false,
            page_size: 4096,
            max_batch_ops: 1,
        }
    }
}

impl MountOptions {
    /// Read-only options.
    pub fn read_only() -> Self {
        MountOptions { read_only: true, ..MountOptions::default() }
    }

    /// The `ext4_fill_super`-equivalent validation: every check here is a
    /// real ext4 mount-time constraint and most are cross-component
    /// dependencies in the paper's taxonomy (a `mount` parameter depending
    /// on an `mke2fs` feature recorded in the superblock).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::MountRejected`] naming the offending option.
    pub fn validate_against(&self, sb: &Superblock) -> Result<(), FsError> {
        // CCD: dax requires the block size to equal the page size.
        if self.dax && sb.block_size() != self.page_size {
            return Err(FsError::MountRejected {
                option: "dax".to_string(),
                reason: format!(
                    "DAX requires block size {} to equal the page size {}",
                    sb.block_size(),
                    self.page_size
                ),
            });
        }
        // CCD: dax is incompatible with the inline_data mkfs feature.
        if self.dax && sb.features.incompat.contains(IncompatFeatures::INLINE_DATA) {
            return Err(FsError::MountRejected {
                option: "dax".to_string(),
                reason: "DAX is not supported on a file system with inline_data".to_string(),
            });
        }
        // CCD: data=journal conflicts with dax.
        if self.dax && self.data == DataMode::Journal {
            return Err(FsError::MountRejected {
                option: "data=journal".to_string(),
                reason: "DAX cannot be used with data journalling".to_string(),
            });
        }
        // CCD: data=journal requires a journal on the image.
        if self.data == DataMode::Journal
            && !sb.features.compat.contains(CompatFeatures::HAS_JOURNAL)
        {
            return Err(FsError::MountRejected {
                option: "data=journal".to_string(),
                reason: "the file system has no journal (mke2fs -O ^has_journal)".to_string(),
            });
        }
        // CCD: group commit batches journal transactions, so it needs a
        // journal to batch into.
        if self.max_batch_ops > 1 && !sb.features.compat.contains(CompatFeatures::HAS_JOURNAL) {
            return Err(FsError::MountRejected {
                option: "max_batch_ops".to_string(),
                reason: "journal group commit requires a journal (mke2fs -O has_journal)"
                    .to_string(),
            });
        }
        // CCD: noload without a journal is meaningless but allowed by the
        // kernel only read-only when the fs is dirty.
        if self.noload && !self.read_only && !sb.is_clean() {
            return Err(FsError::MountRejected {
                option: "noload".to_string(),
                reason: "refusing read-write mount with unreplayed journal on a dirty fs"
                    .to_string(),
            });
        }
        // Unknown/unsupported incompat features must refuse any mount.
        if sb.features.incompat.contains(IncompatFeatures::COMPRESSION) {
            return Err(FsError::MountRejected {
                option: "(superblock)".to_string(),
                reason: "unsupported incompat feature: compression".to_string(),
            });
        }
        // A read-write mount of an image with the metadata_csum+uninit_bg
        // combination is refused by real ext4.
        if sb.features.ro_compat.contains(RoCompatFeatures::METADATA_CSUM)
            && sb.features.ro_compat.contains(RoCompatFeatures::GDT_CSUM)
        {
            return Err(FsError::MountRejected {
                option: "(superblock)".to_string(),
                reason: "metadata_csum and uninit_bg cannot both be set".to_string(),
            });
        }
        // Dirty/errored images: rw mount refused unless forced.
        if !sb.is_clean() && !self.read_only && !self.force {
            return Err(FsError::MountRejected {
                option: "rw".to_string(),
                reason: "file system has errors or was not cleanly unmounted; run e2fsck"
                    .to_string(),
            });
        }
        if let Some(e) = self.errors {
            if !(1..=3).contains(&e) {
                return Err(FsError::MountRejected {
                    option: "errors".to_string(),
                    reason: format!("unknown errors policy {e}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;

    fn sb_with(bs_log: u32, features: FeatureSet) -> Superblock {
        Superblock { log_block_size: bs_log, features, ..Superblock::default() }
    }

    #[test]
    fn defaults_mount_clean_fs() {
        let sb = sb_with(0, FeatureSet::ext4_defaults());
        MountOptions::default().validate_against(&sb).unwrap();
    }

    #[test]
    fn dax_requires_page_sized_blocks() {
        let sb = sb_with(0, FeatureSet::ext4_defaults()); // 1 KiB blocks
        let opts = MountOptions { dax: true, ..MountOptions::default() };
        let err = opts.validate_against(&sb).unwrap_err();
        assert!(err.to_string().contains("dax"));
        // 4 KiB blocks are fine
        let sb4k = sb_with(2, FeatureSet::ext4_defaults());
        opts.validate_against(&sb4k).unwrap();
    }

    #[test]
    fn dax_conflicts_with_inline_data() {
        let mut features = FeatureSet::ext4_defaults();
        features.incompat.insert(IncompatFeatures::INLINE_DATA);
        let sb = sb_with(2, features);
        let opts = MountOptions { dax: true, ..MountOptions::default() };
        assert!(opts.validate_against(&sb).is_err());
    }

    #[test]
    fn dax_conflicts_with_data_journal() {
        let sb = sb_with(2, FeatureSet::ext4_defaults());
        let opts = MountOptions { dax: true, data: DataMode::Journal, ..MountOptions::default() };
        assert!(opts.validate_against(&sb).is_err());
    }

    #[test]
    fn data_journal_needs_journal_feature() {
        let mut features = FeatureSet::ext4_defaults();
        features.compat.remove(CompatFeatures::HAS_JOURNAL);
        let sb = sb_with(0, features);
        let opts = MountOptions { data: DataMode::Journal, ..MountOptions::default() };
        assert!(opts.validate_against(&sb).is_err());
    }

    #[test]
    fn dirty_fs_requires_ro_or_force() {
        let mut sb = sb_with(0, FeatureSet::ext4_defaults());
        sb.set_error_state();
        assert!(MountOptions::default().validate_against(&sb).is_err());
        MountOptions::read_only().validate_against(&sb).unwrap();
        let forced = MountOptions { force: true, ..MountOptions::default() };
        forced.validate_against(&sb).unwrap();
    }

    #[test]
    fn noload_rw_dirty_rejected() {
        let mut sb = sb_with(0, FeatureSet::ext4_defaults());
        sb.state = 0; // not cleanly unmounted
        let opts = MountOptions { noload: true, ..MountOptions::default() };
        assert!(opts.validate_against(&sb).is_err());
        let opts_ro = MountOptions { noload: true, read_only: true, ..MountOptions::default() };
        opts_ro.validate_against(&sb).unwrap();
    }

    #[test]
    fn compression_feature_blocks_mount() {
        let mut features = FeatureSet::ext4_defaults();
        features.incompat.insert(IncompatFeatures::COMPRESSION);
        let sb = sb_with(0, features);
        assert!(MountOptions::read_only().validate_against(&sb).is_err());
    }

    #[test]
    fn csum_conflict_rejected() {
        let mut features = FeatureSet::ext4_defaults();
        features.ro_compat.insert(RoCompatFeatures::METADATA_CSUM);
        features.ro_compat.insert(RoCompatFeatures::GDT_CSUM);
        let sb = sb_with(0, features);
        assert!(MountOptions::default().validate_against(&sb).is_err());
    }

    #[test]
    fn bad_errors_policy_rejected() {
        let sb = sb_with(0, FeatureSet::ext4_defaults());
        let opts = MountOptions { errors: Some(9), ..MountOptions::default() };
        assert!(opts.validate_against(&sb).is_err());
        let opts = MountOptions { errors: Some(2), ..MountOptions::default() };
        opts.validate_against(&sb).unwrap();
    }

    #[test]
    fn batching_requires_a_journal() {
        let mut features = FeatureSet::ext4_defaults();
        features.compat.remove(CompatFeatures::HAS_JOURNAL);
        let sb = sb_with(0, features);
        let opts = MountOptions { max_batch_ops: 4, ..MountOptions::default() };
        let err = opts.validate_against(&sb).unwrap_err();
        assert!(err.to_string().contains("max_batch_ops"), "{err}");
        // 0 and 1 are the commit-per-op default and always fine
        for batch in [0, 1] {
            let opts = MountOptions { max_batch_ops: batch, ..MountOptions::default() };
            opts.validate_against(&sb).unwrap();
        }
        // with a journal, batching validates
        let sb = sb_with(0, FeatureSet::ext4_defaults());
        let opts = MountOptions { max_batch_ops: 4, ..MountOptions::default() };
        opts.validate_against(&sb).unwrap();
    }

    #[test]
    fn data_mode_parse_round_trip() {
        for m in [DataMode::Ordered, DataMode::Journal, DataMode::Writeback] {
            assert_eq!(DataMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(DataMode::parse("bogus"), None);
    }
}
