//! Buffered metadata cache: deserialized per-group bitmaps and raw
//! inode-table blocks with dirty tracking.
//!
//! Under [`CachePolicy::WriteBack`] an fs operation mutates in-memory
//! state only; each dirty block is written back to the device exactly
//! once, in deterministic group-major order (per group: block bitmap,
//! inode bitmap, inode-table blocks ascending), at explicit sync points —
//! operation commit ([`crate::Ext4Fs::flush_metadata`]), the journal
//! barrier, `unmount`, and the pre-publish flush inside the defragmenter.
//! [`CachePolicy::WriteThrough`] keeps the legacy direct path: every
//! mutation is a read-modify-write round trip through the device, and the
//! cache holds nothing.
//!
//! The group descriptors already live deserialized in `Ext4Fs::groups`
//! and reach the device only through `flush_metadata`; this module gives
//! the remaining per-group metadata the same treatment.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::bitmap::Bitmap;

/// How an [`crate::Ext4Fs`] handle propagates metadata mutations to the
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Every metadata mutation is written to the device immediately (the
    /// legacy baseline; maintenance handles always use this).
    WriteThrough,
    /// Mutations hit cached in-memory state; dirty blocks are written
    /// back once per sync point, in group-major order.
    WriteBack,
}

#[derive(Debug, Default)]
struct GroupSlot {
    block_bitmap: Option<Bitmap>,
    block_dirty: bool,
    inode_bitmap: Option<Bitmap>,
    inode_dirty: bool,
}

#[derive(Debug)]
struct CachedBlock {
    data: Vec<u8>,
    dirty: bool,
}

/// The cache proper, owned by an [`crate::Ext4Fs`] handle.
#[derive(Debug)]
pub(crate) struct MetadataCache {
    policy: CachePolicy,
    slots: Vec<GroupSlot>,
    /// Inode-table blocks, keyed by device block number.
    itable: BTreeMap<u64, CachedBlock>,
    dirty_count: usize,
    /// Set when a write-back pass failed partway: some dirty blocks may
    /// already be on the device while others are still only in memory.
    /// The dirty flags stay accurate (a failed block keeps its flag), so
    /// a retried flush resumes exactly where the last one stopped; a
    /// successful retry clears the poison.
    poisoned: bool,
}

impl MetadataCache {
    pub(crate) fn new(policy: CachePolicy, group_count: u32) -> Self {
        let mut slots = Vec::with_capacity(group_count as usize);
        slots.resize_with(group_count as usize, GroupSlot::default);
        MetadataCache { policy, slots, itable: BTreeMap::new(), dirty_count: 0, poisoned: false }
    }

    /// Marks the cache as having survived a failed write-back pass.
    pub(crate) fn poison(&mut self) {
        self.poisoned = true;
    }

    /// A completed write-back pass means cache and device agree again.
    pub(crate) fn clear_poison(&mut self) {
        self.poisoned = false;
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    pub(crate) fn policy(&self) -> CachePolicy {
        self.policy
    }

    pub(crate) fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
    }

    pub(crate) fn is_write_back(&self) -> bool {
        self.policy == CachePolicy::WriteBack
    }

    pub(crate) fn has_dirty(&self) -> bool {
        self.dirty_count > 0
    }

    /// Drops every cached copy. The caller must have flushed first.
    ///
    /// # Panics
    ///
    /// Panics if dirty state would be lost.
    pub(crate) fn invalidate(&mut self) {
        assert!(!self.has_dirty(), "invalidating a cache with unflushed dirty blocks");
        for slot in &mut self.slots {
            *slot = GroupSlot::default();
        }
        self.itable.clear();
    }

    /// Rebuilds the slot table for a new group count (after a resize),
    /// dropping all cached state.
    pub(crate) fn reset(&mut self, group_count: u32) {
        assert!(!self.has_dirty(), "resetting a cache with unflushed dirty blocks");
        self.slots.clear();
        self.slots.resize_with(group_count as usize, GroupSlot::default);
        self.itable.clear();
    }

    pub(crate) fn block_bitmap(&self, g: u32) -> Option<&Bitmap> {
        self.slots.get(g as usize)?.block_bitmap.as_ref()
    }

    /// Mutable access to a cached block bitmap; marks it dirty.
    pub(crate) fn block_bitmap_mut(&mut self, g: u32) -> Option<&mut Bitmap> {
        let slot = self.slots.get_mut(g as usize)?;
        let bm = slot.block_bitmap.as_mut()?;
        if !slot.block_dirty {
            slot.block_dirty = true;
            self.dirty_count += 1;
        }
        Some(bm)
    }

    pub(crate) fn store_block_bitmap(&mut self, g: u32, bm: Bitmap, dirty: bool) {
        let slot = &mut self.slots[g as usize];
        if dirty && !slot.block_dirty {
            self.dirty_count += 1;
        }
        slot.block_dirty |= dirty;
        slot.block_bitmap = Some(bm);
    }

    pub(crate) fn inode_bitmap(&self, g: u32) -> Option<&Bitmap> {
        self.slots.get(g as usize)?.inode_bitmap.as_ref()
    }

    /// Mutable access to a cached inode bitmap; marks it dirty.
    pub(crate) fn inode_bitmap_mut(&mut self, g: u32) -> Option<&mut Bitmap> {
        let slot = self.slots.get_mut(g as usize)?;
        let bm = slot.inode_bitmap.as_mut()?;
        if !slot.inode_dirty {
            slot.inode_dirty = true;
            self.dirty_count += 1;
        }
        Some(bm)
    }

    pub(crate) fn store_inode_bitmap(&mut self, g: u32, bm: Bitmap, dirty: bool) {
        let slot = &mut self.slots[g as usize];
        if dirty && !slot.inode_dirty {
            self.dirty_count += 1;
        }
        slot.inode_dirty |= dirty;
        slot.inode_bitmap = Some(bm);
    }

    pub(crate) fn itable_block(&self, block: u64) -> Option<&[u8]> {
        self.itable.get(&block).map(|c| c.data.as_slice())
    }

    /// Mutable access to a cached inode-table block; marks it dirty.
    pub(crate) fn itable_block_mut(&mut self, block: u64) -> Option<&mut [u8]> {
        let cached = self.itable.get_mut(&block)?;
        if !cached.dirty {
            cached.dirty = true;
            self.dirty_count += 1;
        }
        Some(&mut cached.data)
    }

    pub(crate) fn store_itable_block(&mut self, block: u64, data: Vec<u8>, dirty: bool) {
        let prev_dirty = self.itable.get(&block).is_some_and(|c| c.dirty);
        if dirty && !prev_dirty {
            self.dirty_count += 1;
        }
        self.itable.insert(block, CachedBlock { data, dirty: dirty || prev_dirty });
    }

    pub(crate) fn block_bitmap_dirty(&self, g: u32) -> bool {
        self.slots.get(g as usize).is_some_and(|s| s.block_dirty)
    }

    pub(crate) fn inode_bitmap_dirty(&self, g: u32) -> bool {
        self.slots.get(g as usize).is_some_and(|s| s.inode_dirty)
    }

    pub(crate) fn clear_block_bitmap_dirty(&mut self, g: u32) {
        let slot = &mut self.slots[g as usize];
        if slot.block_dirty {
            slot.block_dirty = false;
            self.dirty_count -= 1;
        }
    }

    pub(crate) fn clear_inode_bitmap_dirty(&mut self, g: u32) {
        let slot = &mut self.slots[g as usize];
        if slot.inode_dirty {
            slot.inode_dirty = false;
            self.dirty_count -= 1;
        }
    }

    /// Device block numbers of the dirty inode-table blocks within
    /// `range`, in ascending order.
    pub(crate) fn dirty_itable_in(&self, range: Range<u64>) -> Vec<u64> {
        self.itable
            .range(range)
            .filter(|(_, c)| c.dirty)
            .map(|(&b, _)| b)
            .collect()
    }

    /// Every dirty inode-table block, ascending.
    pub(crate) fn dirty_itable_all(&self) -> Vec<u64> {
        self.dirty_itable_in(0..u64::MAX)
    }

    pub(crate) fn clear_itable_dirty(&mut self, block: u64) {
        if let Some(cached) = self.itable.get_mut(&block) {
            if cached.dirty {
                cached.dirty = false;
                self.dirty_count -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_tracking_counts_each_block_once() {
        let mut c = MetadataCache::new(CachePolicy::WriteBack, 2);
        assert!(!c.has_dirty());
        c.store_block_bitmap(0, Bitmap::new(8, 1), false);
        assert!(!c.has_dirty());
        c.block_bitmap_mut(0).unwrap();
        c.block_bitmap_mut(0).unwrap(); // second touch, still one dirty block
        assert!(c.has_dirty());
        c.clear_block_bitmap_dirty(0);
        assert!(!c.has_dirty());
    }

    #[test]
    fn itable_range_query_is_sorted_and_filtered() {
        let mut c = MetadataCache::new(CachePolicy::WriteBack, 1);
        c.store_itable_block(9, vec![0u8; 4], true);
        c.store_itable_block(12, vec![0u8; 4], false);
        c.store_itable_block(10, vec![0u8; 4], true);
        c.store_itable_block(40, vec![0u8; 4], true);
        assert_eq!(c.dirty_itable_in(9..41), vec![9, 10, 40]);
        assert_eq!(c.dirty_itable_in(9..40), vec![9, 10]);
        c.clear_itable_dirty(10);
        assert_eq!(c.dirty_itable_all(), vec![9, 40]);
    }

    #[test]
    fn invalidate_drops_clean_state() {
        let mut c = MetadataCache::new(CachePolicy::WriteBack, 1);
        c.store_block_bitmap(0, Bitmap::new(8, 1), false);
        c.store_itable_block(5, vec![1u8; 4], false);
        c.invalidate();
        assert!(c.block_bitmap(0).is_none());
        assert!(c.itable_block(5).is_none());
    }

    #[test]
    #[should_panic(expected = "unflushed dirty")]
    fn invalidate_refuses_dirty_state() {
        let mut c = MetadataCache::new(CachePolicy::WriteBack, 1);
        c.store_block_bitmap(0, Bitmap::new(8, 1), true);
        c.invalidate();
    }

    #[test]
    fn poison_round_trip() {
        let mut c = MetadataCache::new(CachePolicy::WriteBack, 1);
        assert!(!c.is_poisoned());
        c.poison();
        assert!(c.is_poisoned());
        c.clear_poison();
        assert!(!c.is_poisoned());
    }

    #[test]
    fn out_of_range_group_reads_are_none() {
        let c = MetadataCache::new(CachePolicy::WriteThrough, 1);
        assert!(c.block_bitmap(7).is_none());
        assert!(c.inode_bitmap(7).is_none());
    }
}
