//! Linear directory blocks (`struct ext4_dir_entry_2`).
//!
//! Each directory data block is a chain of records: inode (u32), record
//! length (u16), name length (u8), file type (u8), then the name bytes.
//! The final record's length always extends to the end of the block, and a
//! deleted leading record is marked with inode 0 — exactly as in ext2/3/4.

use crate::util::{get_u16, get_u32, put_u16, put_u32};
use crate::FsError;

/// Maximum file-name length in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// Fixed header size of a directory record.
const DIRENT_HEADER: usize = 8;

/// File type stored in directory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FileType {
    /// Unknown (only appears in damaged images).
    Unknown,
    /// Regular file.
    Regular,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// On-disk code.
    pub fn code(self) -> u8 {
        match self {
            FileType::Unknown => 0,
            FileType::Regular => 1,
            FileType::Dir => 2,
            FileType::Symlink => 7,
        }
    }

    /// Decodes an on-disk code (unknown codes map to `Unknown`).
    pub fn from_code(c: u8) -> Self {
        match c {
            1 => FileType::Regular,
            2 => FileType::Dir,
            7 => FileType::Symlink,
            _ => FileType::Unknown,
        }
    }
}

/// A parsed directory entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DirEntry {
    /// Target inode (0 = deleted slot).
    pub inode: u32,
    /// Entry name.
    pub name: String,
    /// File type.
    pub file_type: FileType,
}

fn rec_len_for(name_len: usize) -> usize {
    // round up to 4-byte alignment, like ext4
    (DIRENT_HEADER + name_len + 3) & !3
}

/// Parses every live entry in a directory block.
///
/// # Errors
///
/// Returns [`FsError::Corrupt`] on malformed record chains (zero or
/// unaligned record lengths, records overrunning the block).
pub fn parse_block(block: &[u8]) -> Result<Vec<DirEntry>, FsError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + DIRENT_HEADER <= block.len() {
        let inode = get_u32(block, off);
        let rec_len = get_u16(block, off + 4) as usize;
        let name_len = block[off + 6] as usize;
        let ftype = block[off + 7];
        if rec_len < DIRENT_HEADER || !rec_len.is_multiple_of(4) || off + rec_len > block.len() {
            return Err(FsError::Corrupt(format!(
                "bad dirent rec_len {rec_len} at offset {off}"
            )));
        }
        if DIRENT_HEADER + name_len > rec_len {
            return Err(FsError::Corrupt(format!(
                "dirent name_len {name_len} overruns rec_len {rec_len} at offset {off}"
            )));
        }
        if inode != 0 {
            let name_bytes = &block[off + DIRENT_HEADER..off + DIRENT_HEADER + name_len];
            out.push(DirEntry {
                inode,
                name: String::from_utf8_lossy(name_bytes).into_owned(),
                file_type: FileType::from_code(ftype),
            });
        }
        off += rec_len;
    }
    if off != block.len() {
        return Err(FsError::Corrupt(format!(
            "directory block not fully covered: ended at {off} of {}",
            block.len()
        )));
    }
    Ok(out)
}

/// Initialises an empty directory block containing `.` and `..`.
pub fn init_block(block: &mut [u8], self_ino: u32, parent_ino: u32) {
    block.fill(0);
    // "."
    put_u32(block, 0, self_ino);
    put_u16(block, 4, 12);
    block[6] = 1;
    block[7] = FileType::Dir.code();
    block[8] = b'.';
    // ".." takes the rest of the block
    let off = 12;
    put_u32(block, off, parent_ino);
    put_u16(block, off + 4, (block.len() - off) as u16);
    block[off + 6] = 2;
    block[off + 7] = FileType::Dir.code();
    block[off + 8] = b'.';
    block[off + 9] = b'.';
}

/// Adds an entry to a directory block in place. Returns `false` if the
/// block has no room (the caller then allocates another block).
///
/// # Errors
///
/// Returns [`FsError::NameTooLong`] for names over 255 bytes and
/// [`FsError::Corrupt`] if the existing chain is malformed.
pub fn add_entry(
    block: &mut [u8],
    name: &str,
    inode: u32,
    file_type: FileType,
) -> Result<bool, FsError> {
    let name_bytes = name.as_bytes();
    if name_bytes.len() > MAX_NAME_LEN {
        return Err(FsError::NameTooLong(name_bytes.len()));
    }
    let needed = rec_len_for(name_bytes.len());
    let mut off = 0usize;
    while off + DIRENT_HEADER <= block.len() {
        let cur_inode = get_u32(block, off);
        let rec_len = get_u16(block, off + 4) as usize;
        let name_len = block[off + 6] as usize;
        if rec_len < DIRENT_HEADER || !rec_len.is_multiple_of(4) || off + rec_len > block.len() {
            return Err(FsError::Corrupt(format!(
                "bad dirent rec_len {rec_len} at offset {off}"
            )));
        }
        let used = if cur_inode == 0 { 0 } else { rec_len_for(name_len) };
        if rec_len - used >= needed {
            // split: shrink the current record to its used size, put the
            // new entry in the slack
            let new_off = off + used;
            let new_rec_len = rec_len - used;
            if used > 0 {
                put_u16(block, off + 4, used as u16);
            }
            put_u32(block, new_off, inode);
            put_u16(block, new_off + 4, new_rec_len as u16);
            block[new_off + 6] = name_bytes.len() as u8;
            block[new_off + 7] = file_type.code();
            block[new_off + DIRENT_HEADER..new_off + DIRENT_HEADER + name_bytes.len()]
                .copy_from_slice(name_bytes);
            return Ok(true);
        }
        off += rec_len;
    }
    Ok(false)
}

/// Removes `name` from a directory block in place. Returns the removed
/// entry's inode, or `None` if the name is absent.
///
/// # Errors
///
/// Returns [`FsError::Corrupt`] if the chain is malformed.
pub fn remove_entry(block: &mut [u8], name: &str) -> Result<Option<u32>, FsError> {
    let target = name.as_bytes();
    let mut off = 0usize;
    let mut prev_off: Option<usize> = None;
    while off + DIRENT_HEADER <= block.len() {
        let inode = get_u32(block, off);
        let rec_len = get_u16(block, off + 4) as usize;
        let name_len = block[off + 6] as usize;
        if rec_len < DIRENT_HEADER || !rec_len.is_multiple_of(4) || off + rec_len > block.len() {
            return Err(FsError::Corrupt(format!(
                "bad dirent rec_len {rec_len} at offset {off}"
            )));
        }
        if inode != 0 && &block[off + DIRENT_HEADER..off + DIRENT_HEADER + name_len] == target {
            match prev_off {
                Some(p) => {
                    // merge into the previous record
                    let prev_len = get_u16(block, p + 4) as usize;
                    put_u16(block, p + 4, (prev_len + rec_len) as u16);
                }
                None => {
                    // first record: mark deleted
                    put_u32(block, off, 0);
                }
            }
            return Ok(Some(inode));
        }
        prev_off = Some(off);
        off += rec_len;
    }
    Ok(None)
}

/// Looks up `name` in a directory block.
///
/// # Errors
///
/// Returns [`FsError::Corrupt`] if the chain is malformed.
pub fn find_entry(block: &[u8], name: &str) -> Result<Option<DirEntry>, FsError> {
    Ok(parse_block(block)?.into_iter().find(|e| e.name == name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(block_size: usize) -> Vec<u8> {
        let mut b = vec![0u8; block_size];
        init_block(&mut b, 2, 2);
        b
    }

    #[test]
    fn init_block_has_dot_entries() {
        let b = fresh(1024);
        let entries = parse_block(&b).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, ".");
        assert_eq!(entries[1].name, "..");
        assert_eq!(entries[0].inode, 2);
        assert_eq!(entries[0].file_type, FileType::Dir);
    }

    #[test]
    fn add_and_find() {
        let mut b = fresh(1024);
        assert!(add_entry(&mut b, "hello.txt", 12, FileType::Regular).unwrap());
        let e = find_entry(&b, "hello.txt").unwrap().unwrap();
        assert_eq!(e.inode, 12);
        assert_eq!(e.file_type, FileType::Regular);
        assert!(find_entry(&b, "other").unwrap().is_none());
    }

    #[test]
    fn add_many_until_full() {
        let mut b = fresh(1024);
        let mut added = 0;
        loop {
            let name = format!("file-{added:04}");
            if !add_entry(&mut b, &name, 100 + added, FileType::Regular).unwrap() {
                break;
            }
            added += 1;
        }
        assert!(added >= 50, "1 KiB block should hold >=50 short names, got {added}");
        let entries = parse_block(&b).unwrap();
        assert_eq!(entries.len() as u32, added + 2);
    }

    #[test]
    fn remove_merges_slack() {
        let mut b = fresh(1024);
        add_entry(&mut b, "a", 10, FileType::Regular).unwrap();
        add_entry(&mut b, "b", 11, FileType::Regular).unwrap();
        assert_eq!(remove_entry(&mut b, "a").unwrap(), Some(10));
        assert!(find_entry(&b, "a").unwrap().is_none());
        assert!(find_entry(&b, "b").unwrap().is_some());
        // space is reusable
        assert!(add_entry(&mut b, "c", 12, FileType::Regular).unwrap());
        assert!(find_entry(&b, "c").unwrap().is_some());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut b = fresh(1024);
        assert_eq!(remove_entry(&mut b, "ghost").unwrap(), None);
    }

    #[test]
    fn name_too_long_rejected() {
        let mut b = fresh(1024);
        let long = "x".repeat(256);
        assert!(matches!(add_entry(&mut b, &long, 5, FileType::Regular), Err(FsError::NameTooLong(256))));
    }

    #[test]
    fn parse_rejects_zero_rec_len() {
        let mut b = fresh(1024);
        put_u16(&mut b, 4, 0);
        assert!(parse_block(&b).is_err());
    }

    #[test]
    fn parse_rejects_overrun() {
        let mut b = fresh(64);
        put_u16(&mut b, 4, 200); // rec_len beyond block
        assert!(parse_block(&b).is_err());
    }

    #[test]
    fn file_type_codes_round_trip() {
        for ft in [FileType::Regular, FileType::Dir, FileType::Symlink, FileType::Unknown] {
            assert_eq!(FileType::from_code(ft.code()), ft);
        }
        assert_eq!(FileType::from_code(99), FileType::Unknown);
    }

    #[test]
    fn max_name_length_fits() {
        let mut b = fresh(1024);
        let name = "n".repeat(255);
        assert!(add_entry(&mut b, &name, 77, FileType::Regular).unwrap());
        assert_eq!(find_entry(&b, &name).unwrap().unwrap().inode, 77);
    }
}
