//! The file system proper: format (`mke2fs`'s engine), mount-time
//! validation, file and directory operations, allocation, and the
//! maintenance interface used by the offline utilities.

use blockdev::BlockDevice;

use crate::alloc::{pick_group_for_block, pick_group_for_dir, pick_group_for_file};
use crate::bitmap::Bitmap;
use crate::cache::{CachePolicy, MetadataCache};
use crate::dir::{self, DirEntry, FileType};
use crate::extent::{ExtentRoot, ExtentTree};
use crate::features::{CompatFeatures, IncompatFeatures};
use crate::inode::{mode, Inode, InodeFlags, InodeNo, DIRECT_BLOCKS, I_BLOCK_SIZE};
use crate::journal::{Journal, Transaction};
use crate::layout::Layout;
use crate::mkfs_params::MkfsParams;
use crate::mount::MountOptions;
use crate::superblock::{errors_policy, state, Superblock, SUPERBLOCK_OFFSET, SUPERBLOCK_SIZE};
use crate::util::{div_ceil, get_u32, put_u32};
use crate::FsError;

/// The root directory inode, as in real ext4.
pub const ROOT_INODE: InodeNo = InodeNo(2);

/// The journal's reserved inode.
pub const JOURNAL_INODE: u32 = 8;

/// Number of reserved inodes (1..=10).
pub const RESERVED_INODES: u32 = 10;

/// How a file-system handle was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsState {
    /// Read-write mount.
    MountedRw,
    /// Read-only mount.
    MountedRo,
    /// Offline maintenance access (the mode `resize2fs`/`e2fsck` use);
    /// everything is permitted, including superblock surgery.
    Maintenance,
}

/// An open ext4sim file system over a block device.
#[derive(Debug)]
pub struct Ext4Fs<D> {
    dev: D,
    sb: Superblock,
    layout: Layout,
    groups: Vec<crate::GroupDesc>,
    fs_state: FsState,
    clock: u32,
    journal: Option<Journal>,
    crash_after_journal_commit: bool,
    cache: MetadataCache,
    /// Effective `errors=` behaviour: the mount option when given, the
    /// on-image `s_errors` field (set by `tune2fs -e`) otherwise. See
    /// [`crate::errors_policy`].
    errors_policy: u16,
    /// Latched by `errors=remount-ro` on the first metadata I/O failure:
    /// reads keep working, writes return [`FsError::DegradedReadOnly`].
    degraded: bool,
    /// Latched by `errors=panic` on the first metadata I/O failure: every
    /// subsequent operation returns [`FsError::PolicyPanic`] (the
    /// simulator's stand-in for a kernel panic — never a Rust panic).
    panicked: bool,
    /// Journal group commit: up to this many [`Ext4Fs::sync`] points
    /// coalesce into one commit record (jbd2 transaction batching).
    /// `1` = commit per sync, the historical behaviour.
    max_batch_ops: u32,
    /// Metadata updates staged by batched syncs, awaiting their commit
    /// record. Merged (last-wins per block) into the next seal; dropped
    /// on a crash, exactly like an unsealed jbd2 transaction.
    pending_txn: Option<Transaction>,
    /// Syncs staged into `pending_txn` since the last sealed commit.
    pending_ops: u32,
}

// ---------------------------------------------------------------------
// byte-granular device access (the superblock sits at byte 1024 no matter
// the block size)
// ---------------------------------------------------------------------

/// A fast symlink keeps its target inline in `i_block` and owns no
/// blocks; its `i_block` bytes must never be read as a block map.
fn is_fast_symlink(inode: &Inode) -> bool {
    inode.mode & mode::S_IFMT == mode::S_IFLNK && inode.blocks == 0
}

fn read_bytes<D: BlockDevice>(dev: &D, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
    let bs = u64::from(dev.block_size());
    let mut out = Vec::with_capacity(len);
    let mut pos = offset;
    let end = offset + len as u64;
    let mut buf = vec![0u8; bs as usize];
    while pos < end {
        let block = pos / bs;
        let in_off = (pos % bs) as usize;
        dev.read_block(block, &mut buf)?;
        let take = ((bs as usize) - in_off).min((end - pos) as usize);
        out.extend_from_slice(&buf[in_off..in_off + take]);
        pos += take as u64;
    }
    Ok(out)
}

fn write_bytes<D: BlockDevice>(dev: &mut D, offset: u64, data: &[u8]) -> Result<(), FsError> {
    let bs = u64::from(dev.block_size());
    let mut pos = offset;
    let end = offset + data.len() as u64;
    let mut buf = vec![0u8; bs as usize];
    while pos < end {
        let block = pos / bs;
        let in_off = (pos % bs) as usize;
        let take = ((bs as usize) - in_off).min((end - pos) as usize);
        dev.read_block(block, &mut buf)?;
        let src = (pos - offset) as usize;
        buf[in_off..in_off + take].copy_from_slice(&data[src..src + take]);
        dev.write_block(block, &buf)?;
        pos += take as u64;
    }
    Ok(())
}

impl<D: BlockDevice> Ext4Fs<D> {
    // -----------------------------------------------------------------
    // format
    // -----------------------------------------------------------------

    /// Formats `dev` with `params` and returns a read-write handle.
    ///
    /// This is the engine behind the `mke2fs` utility; utility-level
    /// (man-page) validation happens there, while this function enforces
    /// the kernel-level invariants via [`MkfsParams::validate`].
    ///
    /// # Errors
    ///
    /// Returns parameter-validation errors, [`FsError::NoSpace`] when the
    /// geometry leaves no room for the root directory or journal, and any
    /// device error.
    pub fn format(dev: D, params: &MkfsParams) -> Result<Self, FsError> {
        Self::format_with_policy(dev, params, CachePolicy::WriteBack)
    }

    /// [`Ext4Fs::format`] with an explicit [`CachePolicy`] for the format
    /// run and the returned handle. The final image is byte-identical
    /// under either policy; `WriteThrough` is the legacy baseline kept
    /// for comparison benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`Ext4Fs::format`].
    pub fn format_with_policy(
        dev: D,
        params: &MkfsParams,
        policy: CachePolicy,
    ) -> Result<Self, FsError> {
        let bs = params.effective_block_size(dev.size_bytes());
        if u64::from(bs) % u64::from(dev.block_size()) != 0 && u64::from(dev.block_size()) % u64::from(bs) != 0 {
            return Err(FsError::InvalidParam {
                param: "blocksize",
                reason: format!(
                    "fs block size {bs} incompatible with device block size {}",
                    dev.block_size()
                ),
            });
        }
        let device_blocks = dev.size_bytes() / u64::from(bs);
        params.validate(device_blocks)?;
        let blocks_count = params.blocks_count.unwrap_or(device_blocks);
        if blocks_count < 64 {
            return Err(FsError::InvalidParam {
                param: "size",
                reason: format!("{blocks_count} blocks is too small"),
            });
        }

        let bigalloc = params.features.incompat.contains(IncompatFeatures::BIGALLOC);
        let cluster_size = if bigalloc { params.cluster_size.unwrap_or(bs * 16) } else { bs };
        let cluster_ratio = cluster_size / bs;
        if bigalloc && !blocks_count.is_multiple_of(u64::from(cluster_ratio)) {
            return Err(FsError::InvalidParam {
                param: "size",
                reason: format!(
                    "with bigalloc the block count must be a multiple of the cluster ratio {cluster_ratio}"
                ),
            });
        }

        let first_data_block = u64::from(bs == 1024);
        let mut blocks_per_group = params.blocks_per_group.unwrap_or(bs * 8);
        if bigalloc {
            // bitmap tracks clusters: capacity is 8*bs clusters per group
            blocks_per_group = (bs * 8).min(blocks_per_group) * cluster_ratio;
        }
        if !blocks_per_group.is_multiple_of(cluster_ratio) {
            return Err(FsError::InvalidParam {
                param: "blocks_per_group",
                reason: "must be a multiple of the cluster ratio".to_string(),
            });
        }
        let group_count = div_ceil(blocks_count - first_data_block, u64::from(blocks_per_group)) as u32;

        // inode geometry
        let total_inodes = params.inodes_count.unwrap_or_else(|| {
            let by_ratio = (blocks_count * u64::from(bs)) / u64::from(params.inode_ratio);
            by_ratio.clamp(64, u64::from(u32::MAX) / 2) as u32
        });
        let mut inodes_per_group = div_ceil(u64::from(total_inodes), u64::from(group_count)) as u32;
        inodes_per_group = inodes_per_group.div_ceil(8) * 8;
        inodes_per_group = inodes_per_group.max(16).min(bs * 8);

        let use_64bit = params.features.incompat.contains(IncompatFeatures::BIT64);
        let desc_size: u16 = if use_64bit { 64 } else { 32 };

        // reserved GDT blocks for resize_inode: dimension for growth
        let reserved_gdt_blocks = if params.features.compat.contains(CompatFeatures::RESIZE_INODE)
        {
            let headroom = params.resize_headroom.unwrap_or(blocks_count.saturating_mul(8));
            let target_groups = div_ceil(headroom, u64::from(blocks_per_group));
            let target_gdt = div_ceil(target_groups * u64::from(desc_size), u64::from(bs)) as u32;
            let cur_gdt =
                div_ceil(u64::from(group_count) * u64::from(desc_size), u64::from(bs)) as u32;
            target_gdt.saturating_sub(cur_gdt).clamp(1, 256)
        } else {
            0
        };

        let mut layout = Layout {
            block_size: bs,
            blocks_count,
            blocks_per_group,
            inodes_per_group,
            inode_size: params.inode_size,
            desc_size,
            first_data_block,
            cluster_ratio,
            reserved_gdt_blocks,
            backup_bgs: [0, 0],
            features: params.features,
        };
        if params.features.compat.contains(CompatFeatures::SPARSE_SUPER2) {
            layout.backup_bgs = Layout::sparse_super2_backups(layout.group_count());
        }

        // sanity: group 0 must fit its own metadata
        if u64::from(layout.group_overhead(0)) + 8 > u64::from(layout.blocks_in_group(0)) {
            return Err(FsError::InvalidParam {
                param: "size",
                reason: "file system too small for its own metadata".to_string(),
            });
        }

        let mut sb = Superblock {
            inodes_count: layout.inodes_count(),
            blocks_count,
            reserved_blocks_count: blocks_count * u64::from(params.reserved_percent) / 100,
            free_blocks_count: 0,
            free_inodes_count: 0,
            first_data_block: first_data_block as u32,
            log_block_size: bs.trailing_zeros() - 10,
            log_cluster_size: cluster_size.trailing_zeros() - 10,
            blocks_per_group,
            clusters_per_group: blocks_per_group / cluster_ratio,
            inodes_per_group,
            inode_size: params.inode_size,
            features: params.features,
            uuid: params.uuid,
            reserved_gdt_blocks: reserved_gdt_blocks as u16,
            desc_size,
            backup_bgs: layout.backup_bgs,
            ..Superblock::default()
        };
        sb.set_label(&params.label);

        let group_count = layout.group_count();
        let errors = sb.errors;
        let mut fs = Ext4Fs {
            dev,
            sb,
            layout,
            groups: Vec::new(),
            fs_state: FsState::Maintenance,
            clock: 1,
            journal: None,
            crash_after_journal_commit: false,
            cache: MetadataCache::new(policy, group_count),
            errors_policy: errors,
            degraded: false,
            panicked: false,
            max_batch_ops: 1,
            pending_txn: None,
            pending_ops: 0,
        };

        fs.init_groups()?;
        fs.init_root_dir()?;
        if params.features.compat.contains(CompatFeatures::HAS_JOURNAL) {
            let jb = params.journal_blocks.unwrap_or_else(|| {
                (blocks_count / 32).clamp(256, 1024) as u32
            });
            fs.init_journal(jb)?;
            if let Some(region) = fs.journal_region()? {
                Journal::format(&mut fs.dev, &region, fs.layout.block_size)?;
            }
        }
        fs.mkdir(ROOT_INODE, "lost+found")?;
        fs.flush_metadata()?;
        fs.fs_state = FsState::MountedRw;
        Ok(fs)
    }

    fn init_groups(&mut self) -> Result<(), FsError> {
        let l = self.layout.clone();
        let gc = l.group_count();
        let mut total_free_blocks: u64 = 0;
        let mut total_free_inodes: u32 = 0;
        // zero the inode tables in bulk spans, bounded so a huge-group
        // geometry does not balloon the staging buffer
        let itable_blocks = l.inode_table_blocks();
        let span = itable_blocks.min(256);
        let zero = vec![0u8; span as usize * l.block_size as usize];
        for g in 0..gc {
            // block bitmap (tracks clusters)
            let clusters_in_group =
                div_ceil(u64::from(l.blocks_in_group(g)), u64::from(l.cluster_ratio)) as u32;
            let mut bbm = Bitmap::new(clusters_in_group, l.block_size as usize);
            let overhead = l.group_overhead(g);
            let overhead_clusters = div_ceil(u64::from(overhead), u64::from(l.cluster_ratio)) as u32;
            bbm.set_range(0, overhead_clusters);
            bbm.pad_tail();

            // inode bitmap
            let mut ibm = Bitmap::new(l.inodes_per_group, l.block_size as usize);
            if g == 0 {
                ibm.set_range(0, RESERVED_INODES.min(l.inodes_per_group));
            }
            ibm.pad_tail();

            if self.cache.is_write_back() {
                self.cache.store_block_bitmap(g, bbm, true);
                self.cache.store_inode_bitmap(g, ibm, true);
            } else {
                self.dev.write_block(l.block_bitmap_block(g), bbm.as_bytes())?;
                self.dev.write_block(l.inode_bitmap_block(g), ibm.as_bytes())?;
            }

            // the table is written straight to the device once under both
            // policies; caching a one-time init would only double the work
            let mut b = 0u64;
            while b < u64::from(itable_blocks) {
                let n = (u64::from(itable_blocks) - b).min(u64::from(span));
                let buf = &zero[..n as usize * l.block_size as usize];
                self.dev.write_blocks(l.inode_table_block(g) + b, buf)?;
                b += n;
            }

            let free_blocks = l.blocks_in_group(g) - overhead_clusters * l.cluster_ratio;
            let free_inodes =
                l.inodes_per_group - if g == 0 { RESERVED_INODES.min(l.inodes_per_group) } else { 0 };
            self.groups.push(crate::GroupDesc {
                block_bitmap: l.block_bitmap_block(g),
                inode_bitmap: l.inode_bitmap_block(g),
                inode_table: l.inode_table_block(g),
                free_blocks_count: free_blocks,
                free_inodes_count: free_inodes,
                used_dirs_count: 0,
                flags: 0,
            });
            total_free_blocks += u64::from(free_blocks);
            total_free_inodes += free_inodes;
        }
        self.sb.free_blocks_count = total_free_blocks;
        self.sb.free_inodes_count = total_free_inodes;
        Ok(())
    }

    fn init_root_dir(&mut self) -> Result<(), FsError> {
        let block = self.alloc_block(0)?;
        let mut data = vec![0u8; self.layout.block_size as usize];
        dir::init_block(&mut data, ROOT_INODE.0, ROOT_INODE.0);
        self.dev.write_block(block, &data)?;
        let mut root = Inode::new_dir(self.uses_extent_feature());
        root.size = u64::from(self.layout.block_size);
        self.set_file_block(&mut root, 0, block)?;
        root.blocks = self.sectors_for(1);
        self.write_inode(ROOT_INODE, &root)?;
        self.groups[0].used_dirs_count += 1;
        Ok(())
    }

    fn init_journal(&mut self, journal_blocks: u32) -> Result<(), FsError> {
        // the legacy block map caps file size at 12 direct + one
        // single-indirect block of pointers
        let journal_blocks = if self.uses_extent_feature() {
            journal_blocks
        } else {
            journal_blocks.min(DIRECT_BLOCKS as u32 + self.layout.block_size / 4)
        };
        let mut jino = Inode::new_file(self.uses_extent_feature());
        jino.mode = mode::S_IFREG | 0o600;
        let mut allocated = 0u32;
        let mut logical = 0u32;
        while allocated < journal_blocks {
            let block = match self.alloc_block(0) {
                Ok(b) => b,
                Err(FsError::NoSpace) if allocated > 0 => break,
                Err(e) => return Err(e),
            };
            // map every block of the cluster so adjacent clusters merge
            // into one extent
            for i in 0..self.layout.cluster_ratio {
                self.set_file_block(&mut jino, logical + i, block + u64::from(i))?;
            }
            allocated += self.layout.cluster_ratio;
            logical += self.layout.cluster_ratio;
        }
        jino.size = u64::from(allocated) * u64::from(self.layout.block_size);
        jino.blocks = self.sectors_for(allocated);
        self.write_inode(InodeNo(JOURNAL_INODE), &jino)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // mount / open / unmount
    // -----------------------------------------------------------------

    /// Mounts an existing image, performing the `ext4_fill_super`-style
    /// validation of `opts` against the on-image superblock.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadMagic`] for a non-ext4sim image and
    /// [`FsError::MountRejected`] when option validation fails.
    ///
    /// A read-write mount uses the [`CachePolicy::WriteBack`] metadata
    /// cache; read-only mounts stay write-through (they never write).
    pub fn mount(dev: D, opts: &MountOptions) -> Result<Self, FsError> {
        Self::mount_with_policy(dev, opts, CachePolicy::WriteBack)
    }

    /// [`Ext4Fs::mount`] with an explicit [`CachePolicy`] for read-write
    /// handles.
    ///
    /// # Errors
    ///
    /// Same as [`Ext4Fs::mount`].
    pub fn mount_with_policy(
        dev: D,
        opts: &MountOptions,
        policy: CachePolicy,
    ) -> Result<Self, FsError> {
        let mut fs = Self::open_for_maintenance(dev)?;
        // journal recovery runs BEFORE option validation, as in the real
        // kernel: sealed transactions left by a crash between commit and
        // checkpoint are re-applied, and the recovered metadata (often a
        // clean superblock) is re-read
        if !opts.noload {
            if let Some(region) = fs.journal_region()? {
                let bs = fs.layout.block_size;
                let mut journal = Journal::open(&fs.dev, region, bs)?;
                let applied = journal.replay(&mut fs.dev)?;
                if applied > 0 {
                    let dev = fs.dev;
                    fs = Self::open_for_maintenance(dev)?;
                }
                fs.journal = Some(journal);
            }
        }
        opts.validate_against(&fs.sb)?;
        // the effective errors= behaviour: the mount option overrides the
        // on-image default that tune2fs -e recorded (a mount→tune2fs
        // dependency the conformance campaign exercises)
        fs.errors_policy = opts.errors.unwrap_or(fs.sb.errors);
        fs.max_batch_ops = opts.max_batch_ops.max(1);
        if opts.read_only {
            fs.fs_state = FsState::MountedRo;
        } else {
            fs.fs_state = FsState::MountedRw;
            fs.sb.mnt_count += 1;
            fs.sb.mtime = fs.clock;
            fs.sb.state &= !state::VALID_FS; // rw mount marks the fs in-use
            fs.write_primary_superblock()?;
            fs.cache.set_policy(policy);
        }
        Ok(fs)
    }

    /// Opens an image for offline maintenance (`resize2fs`, `e2fsck`):
    /// no option validation, everything mutable, dirty state permitted.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadMagic`] if the image is not recognisable.
    pub fn open_for_maintenance(dev: D) -> Result<Self, FsError> {
        let raw = read_bytes(&dev, SUPERBLOCK_OFFSET, SUPERBLOCK_SIZE)?;
        let sb = Superblock::from_bytes(&raw)?;
        let layout = Self::layout_from_sb(&sb);
        let group_count = layout.group_count();
        let errors = sb.errors;
        let mut fs = Ext4Fs {
            dev,
            sb,
            layout,
            groups: Vec::new(),
            fs_state: FsState::Maintenance,
            clock: 1,
            journal: None,
            crash_after_journal_commit: false,
            cache: MetadataCache::new(CachePolicy::WriteThrough, group_count),
            errors_policy: errors,
            degraded: false,
            panicked: false,
            max_batch_ops: 1,
            pending_txn: None,
            pending_ops: 0,
        };
        fs.read_group_descriptors()?;
        Ok(fs)
    }

    fn layout_from_sb(sb: &Superblock) -> Layout {
        Layout {
            block_size: sb.block_size(),
            blocks_count: sb.blocks_count,
            blocks_per_group: sb.blocks_per_group,
            inodes_per_group: sb.inodes_per_group,
            inode_size: sb.inode_size,
            desc_size: if sb.desc_size == 0 { 32 } else { sb.desc_size },
            first_data_block: u64::from(sb.first_data_block),
            cluster_ratio: sb.cluster_ratio(),
            reserved_gdt_blocks: u32::from(sb.reserved_gdt_blocks),
            backup_bgs: sb.backup_bgs,
            features: sb.features,
        }
    }

    fn read_group_descriptors(&mut self) -> Result<(), FsError> {
        let start = self.layout.group_first_block(0) + 1;
        self.read_group_descriptors_from(start)
    }

    fn read_group_descriptors_from(&mut self, gdt_start: u64) -> Result<(), FsError> {
        let l = &self.layout;
        let per_block = l.descs_per_block() as usize;
        let mut groups = Vec::with_capacity(l.group_count() as usize);
        for gb in 0..l.gdt_blocks() {
            let data = self.dev.read_block_vec(gdt_start + u64::from(gb))?;
            for i in 0..per_block {
                let idx = gb as usize * per_block + i;
                if idx >= l.group_count() as usize {
                    break;
                }
                let off = i * l.desc_size as usize;
                groups.push(crate::GroupDesc::from_bytes(
                    &data[off..off + l.desc_size as usize],
                    l.desc_size,
                ));
            }
        }
        self.groups = groups;
        Ok(())
    }

    /// Opens an image for maintenance using a *backup* superblock at
    /// byte offset `sb_offset` (the `e2fsck -b` recovery path). The
    /// decoded backup is treated as authoritative; a subsequent
    /// [`Ext4Fs::flush_metadata`] restores the primary from it.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadMagic`] when no superblock is found there.
    pub fn open_for_maintenance_at(dev: D, sb_offset: u64) -> Result<Self, FsError> {
        let raw = read_bytes(&dev, sb_offset, SUPERBLOCK_SIZE)?;
        let mut sb = Superblock::from_bytes(&raw)?;
        sb.block_group_nr = 0; // it now serves as the primary
        let layout = Self::layout_from_sb(&sb);
        // the GDT copy sits right after whichever superblock copy we read
        let gdt_start = if sb_offset == SUPERBLOCK_OFFSET {
            layout.group_first_block(0) + 1
        } else {
            sb_offset / u64::from(layout.block_size) + 1
        };
        let group_count = layout.group_count();
        let errors = sb.errors;
        let mut fs = Ext4Fs {
            dev,
            sb,
            layout,
            groups: Vec::new(),
            fs_state: FsState::Maintenance,
            clock: 1,
            journal: None,
            crash_after_journal_commit: false,
            cache: MetadataCache::new(CachePolicy::WriteThrough, group_count),
            errors_policy: errors,
            degraded: false,
            panicked: false,
            max_batch_ops: 1,
            pending_txn: None,
            pending_ops: 0,
        };
        fs.read_group_descriptors_from(gdt_start)?;
        Ok(fs)
    }

    /// Adds a directory entry for an *existing* inode (a hard link) and
    /// bumps its link count. `e2fsck` uses this to reconnect orphans into
    /// `lost+found`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] / [`FsError::NotADirectory`] /
    /// [`FsError::BadInode`].
    pub fn link(&mut self, dir: InodeNo, name: &str, ino: InodeNo) -> Result<(), FsError> {
        self.check_writable()?;
        if self.lookup(dir, name)?.is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let mut inode = self.read_inode(ino)?;
        let ftype = if inode.is_dir() { FileType::Dir } else { FileType::Regular };
        self.add_dir_entry(dir, name, ino, ftype)?;
        inode.links_count += 1;
        self.write_inode(ino, &inode)?;
        self.commit_op()
    }

    /// Removes a directory entry *without* touching the target inode —
    /// the repair primitive `e2fsck` uses to clear dangling entries.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] when the entry is absent.
    pub fn remove_entry_only(&mut self, dir: InodeNo, name: &str) -> Result<(), FsError> {
        self.check_writable()?;
        self.remove_dir_entry(dir, name)?;
        self.commit_op()
    }

    /// Truncates a regular file to zero bytes, freeing all of its blocks.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::IsADirectory`] for directories.
    pub fn truncate(&mut self, ino: InodeNo) -> Result<(), FsError> {
        self.check_writable()?;
        let mut inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory(ino.0));
        }
        if !inode.is_inline() {
            for b in self.file_blocks(&inode)? {
                if self.layout.cluster_ratio == 1
                    || self
                        .layout
                        .block_index_in_group(b)
                        .is_multiple_of(self.layout.cluster_ratio)
                {
                    self.free_block(b)?;
                }
            }
        }
        inode.size = 0;
        inode.blocks = 0;
        inode.block_area = [0u8; I_BLOCK_SIZE];
        if inode.is_inline() {
            // stays inline
        } else if self.uses_extent_feature() {
            inode.init_extent_root();
        }
        self.write_inode(ino, &inode)?;
        self.commit_op()
    }

    /// Allocates `clusters` physically contiguous clusters in one group.
    /// Returns the first block of the run.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] if no group holds a large-enough run.
    pub fn alloc_contiguous(&mut self, clusters: u32) -> Result<u64, FsError> {
        self.check_writable()?;
        for g in 0..self.layout.group_count() {
            let start = if self.cache.is_write_back() {
                self.load_block_bitmap(g)?;
                // peek before taking the dirtying mutable handle, so a
                // group without a run does not get flushed needlessly
                let found =
                    self.cache.block_bitmap(g).expect("loaded above").find_clear_run(0, clusters);
                if let Some(start) = found {
                    let bm = self.cache.block_bitmap_mut(g).expect("loaded above");
                    bm.set_range(start, start + clusters);
                }
                found
            } else {
                let mut bm = self.read_block_bitmap(g)?;
                let found = bm.find_clear_run(0, clusters);
                if let Some(start) = found {
                    bm.set_range(start, start + clusters);
                    self.write_block_bitmap(g, &bm)?;
                }
                found
            };
            if let Some(start) = start {
                let blocks = clusters * self.layout.cluster_ratio;
                self.groups[g as usize].free_blocks_count -= blocks;
                self.sb.free_blocks_count -= u64::from(blocks);
                return Ok(self.layout.group_first_block(g)
                    + u64::from(start) * u64::from(self.layout.cluster_ratio));
            }
        }
        Err(FsError::NoSpace)
    }

    /// Rewrites a fragmented extent file into one physically contiguous
    /// run — the engine behind `e4defrag` (the `EXT4_IOC_MOVE_EXT` ioctl
    /// of real ext4). Returns `(extents_before, extents_after)`.
    ///
    /// # Errors
    ///
    /// * [`FsError::NotSupported`] — the file does not use extents (the
    ///   same `EOPNOTSUPP` the real ioctl raises, a cross-component
    ///   dependency on the `mke2fs` `extent` feature);
    /// * [`FsError::NoSpace`] — no contiguous run available (the file is
    ///   left untouched).
    pub fn defragment_file(&mut self, ino: InodeNo) -> Result<(u32, u32), FsError> {
        self.check_writable()?;
        let inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory(ino.0));
        }
        if inode.is_inline() {
            return Ok((0, 0)); // nothing to defragment
        }
        if !inode.uses_extents() {
            return Err(FsError::NotSupported(
                "e4defrag requires the extent feature (EOPNOTSUPP)".to_string(),
            ));
        }
        let (tree, _leaf) = self.load_extent_tree(&inode)?;
        let before = tree.len() as u32;
        if before <= 1 {
            return Ok((before, before));
        }
        let data = self.read_file_to_vec(ino)?;
        let ratio = self.layout.cluster_ratio;
        let blocks_needed =
            (div_ceil(data.len() as u64, u64::from(self.layout.block_size)) as u32).max(1);
        let clusters_needed = blocks_needed.div_ceil(ratio);
        // crash-safe move order (as EXT4_IOC_MOVE_EXT must be): fill the
        // new home and build its mapping while the old mapping still
        // stands, publish with a single inode write, and only then
        // retire the old blocks — a crash at any write boundary leaves
        // the file readable through one mapping or the other
        let start = self.alloc_contiguous(clusters_needed)?;
        let old_blocks = self.file_blocks(&inode)?;
        let bs = self.layout.block_size as usize;
        let mut new_inode = inode.clone();
        new_inode.block_area = [0u8; I_BLOCK_SIZE];
        new_inode.init_extent_root();
        for i in 0..blocks_needed {
            let mut buf = vec![0u8; bs];
            let off = i as usize * bs;
            let take = bs.min(data.len() - off.min(data.len()));
            buf[..take].copy_from_slice(&data[off..off + take]);
            self.dev.write_block(start + u64::from(i), &buf)?;
            self.set_file_block(&mut new_inode, i, start + u64::from(i))?;
        }
        new_inode.size = data.len() as u64;
        new_inode.blocks = self.sectors_for(clusters_needed * ratio);
        // barrier: the copy must be durable before the mapping switch —
        // a volatile cache could otherwise evict the inode write first
        // and a crash would publish pointers to unwritten blocks
        self.flush_cache()?;
        self.dev.flush()?;
        self.write_inode(ino, &new_inode)?;
        for b in old_blocks {
            if ratio == 1 || self.layout.block_index_in_group(b).is_multiple_of(ratio) {
                self.free_block(b)?;
            }
        }
        let inode = self.read_inode(ino)?;
        let (tree, _) = self.load_extent_tree(&inode)?;
        self.commit_op()?;
        Ok((before, tree.len() as u32))
    }

    /// Returns the device *without* the clean-unmount bookkeeping,
    /// leaving the on-image state exactly as it is — the equivalent of a
    /// crash or a yanked device. Robustness experiments use this to hand
    /// a dirty image to the offline utilities.
    pub fn into_device_dirty(self) -> D {
        self.dev
    }

    /// Cleanly unmounts: marks the superblock valid, flushes all metadata
    /// (including backups) and returns the device.
    ///
    /// A handle halted by `errors=panic` unmounts like a crash: nothing
    /// is written (the error flag was already stamped when the policy
    /// fired) and the device is returned as the failure left it. A
    /// degraded (`errors=remount-ro`) handle behaves the same way by
    /// virtue of no longer being mounted read-write.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the handle is consumed either way.
    pub fn unmount(mut self) -> Result<D, FsError> {
        if self.panicked || self.degraded {
            // crash-like unmount: the device may be failing, and even its
            // final flush could error — hand it back untouched so the
            // recovery stack (e2fsck) can work on the image
            return Ok(self.dev);
        }
        if self.fs_state == FsState::MountedRw || self.fs_state == FsState::Maintenance {
            self.sb.state |= state::VALID_FS;
            self.sb.wtime = self.clock;
            self.flush_metadata()?;
            // after a clean checkpoint the journal is no longer needed;
            // the fault-injection crash keeps it for the next replay
            if !self.crash_after_journal_commit {
                if let Some(mut journal) = self.journal.take() {
                    journal.reset(&mut self.dev)?;
                }
            }
        }
        self.dev.flush()?;
        Ok(self.dev)
    }

    // -----------------------------------------------------------------
    // metadata I/O
    // -----------------------------------------------------------------

    fn write_primary_superblock(&mut self) -> Result<(), FsError> {
        let bytes = self.sb.to_bytes();
        write_bytes(&mut self.dev, SUPERBLOCK_OFFSET, &bytes)
    }

    /// Flushes the superblock (primary and backups) and the group
    /// descriptor table (primary and copies) to the device.
    ///
    /// # Errors
    ///
    /// Propagates device errors, filtered through the mount's `errors=`
    /// policy: a failure on this path stamps the on-image error flag and
    /// may degrade the mount ([`FsError::DegradedReadOnly`] thereafter)
    /// or halt it ([`FsError::PolicyPanic`]).
    pub fn flush_metadata(&mut self) -> Result<(), FsError> {
        if self.panicked {
            return Err(FsError::PolicyPanic("file system halted".to_string()));
        }
        if self.degraded {
            return Err(FsError::DegradedReadOnly);
        }
        // write back the buffered per-group metadata first, so the home
        // locations of bitmaps and inode tables are stable before the
        // superblock/GDT update is committed to the journal — the same
        // ordering the write-through path produces naturally
        self.flush_cache()?;
        match self.flush_metadata_inner() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.note_metadata_error(e)),
        }
    }

    fn flush_metadata_inner(&mut self) -> Result<(), FsError> {
        let writes = self.metadata_writes()?;
        // metadata journalling (jbd2-style): when mounted read-write on a
        // journalled file system, commit the metadata update to the
        // journal first, then checkpoint it to the home locations — so a
        // crash between the two is recoverable at the next mount
        if self.fs_state == FsState::MountedRw && self.journal.is_some() {
            // start from the pending group-commit batch (empty when
            // batching is off): a full flush force-seals staged updates
            let mut txn = self.pending_txn.take().unwrap_or_default();
            self.pending_ops = 0;
            for (block, data) in &writes {
                txn.add(*block, data.clone());
            }
            let mut journal = self.journal.take().expect("checked above");
            let commit = journal.commit(&mut self.dev, &txn);
            self.journal = Some(journal);
            commit?;
            if self.crash_after_journal_commit {
                // fault-injection hook: the "power failure" happens here
                return Ok(());
            }
            Journal::checkpoint(&mut self.dev, &txn, self.layout.block_size)?;
            return Ok(());
        }
        for (block, data) in &writes {
            self.dev.write_block(*block, data)?;
        }
        Ok(())
    }

    /// A durability point between operations (the explorer's stand-in
    /// for `fsync`). Without group commit (`max_batch_ops <= 1`, or no
    /// journal) this is exactly [`Ext4Fs::flush_metadata`]. Under group
    /// commit on a journalled read-write mount, the current metadata
    /// image is *staged* into a pending transaction instead — merged
    /// last-wins per block, like updates joining an open jbd2
    /// transaction — and only every `max_batch_ops`-th sync seals one
    /// commit record (one flush-bracketed journal commit plus its
    /// checkpoint) covering the whole batch.
    ///
    /// Returns `true` when this sync sealed a commit, `false` when it
    /// merely joined the pending batch. A crash before the seal loses
    /// the staged updates, exactly like an unsealed jbd2 transaction;
    /// [`Ext4Fs::flush_metadata`] and unmount force-seal the batch.
    ///
    /// # Errors
    ///
    /// As [`Ext4Fs::flush_metadata`]: device failures are filtered
    /// through the mount's `errors=` policy.
    pub fn sync(&mut self) -> Result<bool, FsError> {
        let batching =
            self.max_batch_ops > 1 && self.fs_state == FsState::MountedRw && self.journal.is_some();
        if !batching {
            self.flush_metadata()?;
            return Ok(true);
        }
        if self.panicked {
            return Err(FsError::PolicyPanic("file system halted".to_string()));
        }
        if self.degraded {
            return Err(FsError::DegradedReadOnly);
        }
        // same write-back ordering as flush_metadata: home-location
        // metadata first, then the superblock/GDT image is staged
        self.flush_cache()?;
        match self.stage_sync() {
            Ok(sealed) => Ok(sealed),
            Err(e) => Err(self.note_metadata_error(e)),
        }
    }

    fn stage_sync(&mut self) -> Result<bool, FsError> {
        let writes = self.metadata_writes()?;
        let mut txn = self.pending_txn.take().unwrap_or_default();
        for (block, data) in writes {
            txn.add(block, data);
        }
        self.pending_ops += 1;
        if self.pending_ops < self.max_batch_ops {
            self.pending_txn = Some(txn);
            return Ok(false);
        }
        self.pending_ops = 0;
        let mut journal = match self.journal.take() {
            Some(j) => j,
            // unreachable (sync() checked); degrade to a direct
            // checkpoint rather than dropping the batch
            None => {
                Journal::checkpoint(&mut self.dev, &txn, self.layout.block_size)?;
                return Ok(true);
            }
        };
        let commit = journal.commit(&mut self.dev, &txn);
        self.journal = Some(journal);
        commit?;
        if self.crash_after_journal_commit {
            // fault-injection hook: the "power failure" happens here
            return Ok(true);
        }
        Journal::checkpoint(&mut self.dev, &txn, self.layout.block_size)?;
        Ok(true)
    }

    /// The full metadata image — primary superblock, primary GDT, and
    /// every backup copy — as whole-block writes.
    fn metadata_writes(&self) -> Result<Vec<(u64, Vec<u8>)>, FsError> {
        let l = &self.layout;
        let bs = l.block_size as usize;
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        // primary superblock at byte 1024 (a partial block when bs > 1024)
        let sb_bytes = self.sb.to_bytes();
        let sb_block = SUPERBLOCK_OFFSET / bs as u64;
        let in_off = (SUPERBLOCK_OFFSET % bs as u64) as usize;
        let mut block0 = self.dev.read_block_vec(sb_block)?;
        let n = sb_bytes.len().min(bs - in_off);
        block0[in_off..in_off + n].copy_from_slice(&sb_bytes[..n]);
        out.push((sb_block, block0));
        // the GDT image
        let mut gdt = vec![0u8; l.gdt_blocks() as usize * bs];
        for (i, g) in self.groups.iter().enumerate() {
            let off = i * l.desc_size as usize;
            gdt[off..off + l.desc_size as usize].copy_from_slice(&g.to_bytes(l.desc_size));
        }
        let primary_gdt_start = l.group_first_block(0) + 1;
        for (i, chunk) in gdt.chunks(bs).enumerate() {
            out.push((primary_gdt_start + i as u64, chunk.to_vec()));
        }
        // backup copies
        for g in l.backup_groups() {
            let mut sb_copy = self.sb.clone();
            sb_copy.block_group_nr = g as u16;
            let base = l.group_first_block(g);
            let mut block = self.dev.read_block_vec(base)?;
            let sb_bytes = sb_copy.to_bytes();
            let n = sb_bytes.len().min(block.len());
            block[..n].copy_from_slice(&sb_bytes[..n]);
            out.push((base, block));
            for (i, chunk) in gdt.chunks(bs).enumerate() {
                out.push((base + 1 + i as u64, chunk.to_vec()));
            }
        }
        Ok(out)
    }

    /// The journal's block region (the data blocks of inode 8 in logical
    /// order), or `None` when the file system has no journal.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn journal_region(&self) -> Result<Option<Vec<u64>>, FsError> {
        if !self.layout.features.compat.contains(CompatFeatures::HAS_JOURNAL) {
            return Ok(None);
        }
        let jino = self.read_inode(InodeNo(JOURNAL_INODE))?;
        if jino.size == 0 {
            return Ok(None);
        }
        let nblocks = div_ceil(jino.size, u64::from(self.layout.block_size)) as u32;
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for logical in 0..nblocks {
            match self.file_block(&jino, logical)? {
                Some(b) => blocks.push(b),
                None => break,
            }
        }
        if blocks.len() < 4 {
            return Ok(None);
        }
        Ok(Some(blocks))
    }

    /// Fault-injection hook: when enabled, the next [`Ext4Fs::flush_metadata`]
    /// commits its transaction to the journal but "loses power" before the
    /// checkpoint — the scenario journal replay exists for.
    pub fn set_crash_after_journal_commit(&mut self, on: bool) {
        self.crash_after_journal_commit = on;
    }

    /// Reads group `g`'s block bitmap — from the metadata cache when a
    /// copy is buffered there, from the device otherwise.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_block_bitmap(&self, g: u32) -> Result<Bitmap, FsError> {
        if let Some(bm) = self.cache.block_bitmap(g) {
            return Ok(bm.clone());
        }
        let clusters = div_ceil(
            u64::from(self.layout.blocks_in_group(g)),
            u64::from(self.layout.cluster_ratio),
        ) as u32;
        let data = self.dev.read_block_vec(self.groups[g as usize].block_bitmap)?;
        Ok(Bitmap::from_bytes(&data, clusters))
    }

    /// Writes group `g`'s block bitmap (buffered until the next sync
    /// point under [`CachePolicy::WriteBack`]).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_block_bitmap(&mut self, g: u32, bm: &Bitmap) -> Result<(), FsError> {
        if self.cache.is_write_back() {
            self.cache.store_block_bitmap(g, bm.clone(), true);
            return Ok(());
        }
        let block = self.groups[g as usize].block_bitmap;
        self.write_metadata_block(block, bm.as_bytes())
    }

    /// Reads group `g`'s inode bitmap — from the metadata cache when a
    /// copy is buffered there, from the device otherwise.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_inode_bitmap(&self, g: u32) -> Result<Bitmap, FsError> {
        if let Some(bm) = self.cache.inode_bitmap(g) {
            return Ok(bm.clone());
        }
        let data = self.dev.read_block_vec(self.groups[g as usize].inode_bitmap)?;
        Ok(Bitmap::from_bytes(&data, self.layout.inodes_per_group))
    }

    /// Writes group `g`'s inode bitmap (buffered until the next sync
    /// point under [`CachePolicy::WriteBack`]).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_inode_bitmap(&mut self, g: u32, bm: &Bitmap) -> Result<(), FsError> {
        if self.cache.is_write_back() {
            self.cache.store_inode_bitmap(g, bm.clone(), true);
            return Ok(());
        }
        let block = self.groups[g as usize].inode_bitmap;
        self.write_metadata_block(block, bm.as_bytes())
    }

    /// Reads inode `ino` from the inode table.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadInode`] for out-of-range numbers.
    pub fn read_inode(&self, ino: InodeNo) -> Result<Inode, FsError> {
        // a handle halted by errors=panic serves nothing, reads included
        if self.panicked {
            return Err(FsError::PolicyPanic("file system halted".to_string()));
        }
        self.check_ino(ino)?;
        let (block, off) = self.layout.inode_position(ino.0);
        let isz = self.layout.inode_size as usize;
        if let Some(data) = self.cache.itable_block(block) {
            return Ok(Inode::from_bytes(&data[off..off + isz]));
        }
        let data = self.dev.read_block_vec(block)?;
        Ok(Inode::from_bytes(&data[off..off + isz]))
    }

    /// Writes inode `ino` to the inode table. Under
    /// [`CachePolicy::WriteBack`] the containing table block is buffered
    /// and the read-modify-write round trip happens in memory.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadInode`] for out-of-range numbers.
    pub fn write_inode(&mut self, ino: InodeNo, inode: &Inode) -> Result<(), FsError> {
        self.check_ino(ino)?;
        let (block, off) = self.layout.inode_position(ino.0);
        let bytes = inode.to_bytes(self.layout.inode_size);
        if self.cache.is_write_back() {
            if self.cache.itable_block(block).is_none() {
                let data = self.dev.read_block_vec(block)?;
                self.cache.store_itable_block(block, data, false);
            }
            let data = self.cache.itable_block_mut(block).expect("just stored");
            data[off..off + bytes.len()].copy_from_slice(&bytes);
            return Ok(());
        }
        let mut data = self.dev.read_block_vec(block)?;
        data[off..off + bytes.len()].copy_from_slice(&bytes);
        self.write_metadata_block(block, &data)
    }

    /// A write-through metadata write: the device failure, if any, goes
    /// through the `errors=` policy before reaching the caller.
    fn write_metadata_block(&mut self, block: u64, data: &[u8]) -> Result<(), FsError> {
        match self.dev.write_block(block, data) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.note_metadata_error(FsError::Device(e))),
        }
    }

    /// Ensures group `g`'s block bitmap is resident in the cache.
    fn load_block_bitmap(&mut self, g: u32) -> Result<(), FsError> {
        if self.cache.block_bitmap(g).is_none() {
            let bm = self.read_block_bitmap(g)?;
            self.cache.store_block_bitmap(g, bm, false);
        }
        Ok(())
    }

    /// Ensures group `g`'s inode bitmap is resident in the cache.
    fn load_inode_bitmap(&mut self, g: u32) -> Result<(), FsError> {
        if self.cache.inode_bitmap(g).is_none() {
            let bm = self.read_inode_bitmap(g)?;
            self.cache.store_inode_bitmap(g, bm, false);
        }
        Ok(())
    }

    /// Applies `f` to group `g`'s block bitmap: in place on the cached
    /// copy under [`CachePolicy::WriteBack`], as a device round trip
    /// otherwise. Write-through skips the device write when `f` fails,
    /// exactly as the direct code did.
    fn update_block_bitmap<R>(
        &mut self,
        g: u32,
        f: impl FnOnce(&mut Bitmap) -> Result<R, FsError>,
    ) -> Result<R, FsError> {
        if self.cache.is_write_back() {
            self.load_block_bitmap(g)?;
            return f(self.cache.block_bitmap_mut(g).expect("loaded above"));
        }
        let mut bm = self.read_block_bitmap(g)?;
        let r = f(&mut bm)?;
        let block = self.groups[g as usize].block_bitmap;
        self.write_metadata_block(block, bm.as_bytes())?;
        Ok(r)
    }

    /// Block-bitmap counterpart for the inode bitmap; see
    /// [`Ext4Fs::update_block_bitmap`].
    fn update_inode_bitmap<R>(
        &mut self,
        g: u32,
        f: impl FnOnce(&mut Bitmap) -> Result<R, FsError>,
    ) -> Result<R, FsError> {
        if self.cache.is_write_back() {
            self.load_inode_bitmap(g)?;
            return f(self.cache.inode_bitmap_mut(g).expect("loaded above"));
        }
        let mut bm = self.read_inode_bitmap(g)?;
        let r = f(&mut bm)?;
        let block = self.groups[g as usize].inode_bitmap;
        self.write_metadata_block(block, bm.as_bytes())?;
        Ok(r)
    }

    /// Writes every dirty cached block back to the device, exactly once
    /// each, in deterministic group-major order: per group the block
    /// bitmap, then the inode bitmap, then its inode-table blocks in
    /// ascending order. A no-op when nothing is dirty (and always under
    /// [`CachePolicy::WriteThrough`], which buffers nothing).
    ///
    /// # Errors
    ///
    /// Propagates device errors, filtered through the mount's `errors=`
    /// policy (see [`Ext4Fs::flush_metadata`]). A failed pass leaves the
    /// cache *poisoned*: every block that did not reach the device keeps
    /// its dirty flag, so nothing is silently dropped and a retried flush
    /// resumes with exactly the still-unwritten blocks. A later pass that
    /// completes clears the poison.
    pub fn flush_cache(&mut self) -> Result<(), FsError> {
        match self.flush_cache_inner() {
            Ok(()) => {
                self.cache.clear_poison();
                Ok(())
            }
            Err(e) => {
                self.cache.poison();
                Err(self.note_metadata_error(e))
            }
        }
    }

    fn flush_cache_inner(&mut self) -> Result<(), FsError> {
        if !self.cache.has_dirty() {
            return Ok(());
        }
        for g in 0..self.groups.len() as u32 {
            if self.cache.block_bitmap_dirty(g) {
                let block = self.groups[g as usize].block_bitmap;
                let bm = self.cache.block_bitmap(g).expect("dirty slot is populated");
                self.dev.write_block(block, bm.as_bytes())?;
                self.cache.clear_block_bitmap_dirty(g);
            }
            if self.cache.inode_bitmap_dirty(g) {
                let block = self.groups[g as usize].inode_bitmap;
                let bm = self.cache.inode_bitmap(g).expect("dirty slot is populated");
                self.dev.write_block(block, bm.as_bytes())?;
                self.cache.clear_inode_bitmap_dirty(g);
            }
            let it_start = self.groups[g as usize].inode_table;
            let it_end = it_start + u64::from(self.layout.inode_table_blocks());
            for block in self.cache.dirty_itable_in(it_start..it_end) {
                {
                    let data = self.cache.itable_block(block).expect("dirty block is cached");
                    self.dev.write_block(block, data)?;
                }
                self.cache.clear_itable_dirty(block);
            }
        }
        // anything left over (a table block outside every group's current
        // range can only appear after geometry surgery) still ascends
        for block in self.cache.dirty_itable_all() {
            {
                let data = self.cache.itable_block(block).expect("dirty block is cached");
                self.dev.write_block(block, data)?;
            }
            self.cache.clear_itable_dirty(block);
        }
        Ok(())
    }

    /// The handle's current [`CachePolicy`].
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache.policy()
    }

    /// Switches the metadata-cache policy. Moving to
    /// [`CachePolicy::WriteThrough`] flushes and drops all buffered
    /// state first, so the device is authoritative again.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the flush.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) -> Result<(), FsError> {
        if self.cache.policy() == policy {
            return Ok(());
        }
        if policy == CachePolicy::WriteThrough {
            self.flush_cache()?;
            self.cache.invalidate();
        }
        self.cache.set_policy(policy);
        Ok(())
    }

    fn check_ino(&self, ino: InodeNo) -> Result<(), FsError> {
        if ino.0 == 0 || ino.0 > self.sb.inodes_count {
            return Err(FsError::BadInode(ino.0));
        }
        Ok(())
    }

    fn check_writable(&self) -> Result<(), FsError> {
        if self.panicked {
            return Err(FsError::PolicyPanic("file system halted".to_string()));
        }
        if self.degraded {
            return Err(FsError::DegradedReadOnly);
        }
        if self.fs_state == FsState::MountedRo {
            return Err(FsError::ReadOnlyFs);
        }
        Ok(())
    }

    /// Applies the mount's `errors=` policy to a failed metadata I/O.
    ///
    /// Mirrors the kernel's `ext4_handle_error`: the on-image error flag
    /// is stamped on the first failure (best-effort — the device that
    /// just failed may refuse the stamp too; the in-memory flag still
    /// drives the policy and e2fsck re-derives the damage either way),
    /// then `errors=remount-ro` flips the mount into the degraded
    /// read-only state, `errors=panic` halts the handle behind a typed
    /// [`FsError::PolicyPanic`], and `errors=continue` hands the typed
    /// error to the caller and keeps going.
    fn note_metadata_error(&mut self, e: FsError) -> FsError {
        // only device-level failures are ext4_error conditions; logical
        // results (NoSpace, NotFound, ...) are normal op outcomes, and an
        // error that already went through the policy stays as-is
        if !matches!(e, FsError::Device(_)) {
            return e;
        }
        // offline maintenance tools (e2fsck, resize2fs) own their error
        // handling; the policy applies to mounted handles only
        if self.fs_state == FsState::Maintenance {
            return e;
        }
        if self.sb.state & state::ERROR_FS == 0 {
            self.sb.set_error_state();
            let _ = self.write_primary_superblock();
        }
        match self.errors_policy {
            errors_policy::REMOUNT_RO => {
                self.degraded = true;
                self.fs_state = FsState::MountedRo;
                e
            }
            errors_policy::PANIC => {
                self.panicked = true;
                FsError::PolicyPanic(e.to_string())
            }
            _ => e,
        }
    }

    /// The effective `errors=` behaviour of this handle (one of the
    /// [`crate::errors_policy`] constants).
    pub fn errors_policy(&self) -> u16 {
        self.errors_policy
    }

    /// True once `errors=remount-ro` has demoted this mount to the
    /// degraded read-only state.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// True once `errors=panic` has halted this handle.
    pub fn has_panicked(&self) -> bool {
        self.panicked
    }

    /// True while the write-back cache holds dirty blocks that a failed
    /// flush could not write; see [`Ext4Fs::flush_cache`].
    pub fn cache_poisoned(&self) -> bool {
        self.cache.is_poisoned()
    }

    /// Operation commit: a public file-system operation writes back the
    /// buffered metadata it touched before returning, so each dirty
    /// block hits the device once per operation instead of once per
    /// mutation — and a crash after the call sees the same metadata the
    /// write-through baseline would have persisted.
    fn commit_op(&mut self) -> Result<(), FsError> {
        self.flush_cache()
    }

    // -----------------------------------------------------------------
    // allocation
    // -----------------------------------------------------------------

    /// Allocates one cluster, preferring `goal_group`. Returns the first
    /// block of the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] when every group is full.
    pub fn alloc_block(&mut self, goal_group: u32) -> Result<u64, FsError> {
        self.check_writable()?;
        let g = pick_group_for_block(&self.groups, goal_group).ok_or(FsError::NoSpace)?;
        let idx = self.update_block_bitmap(g, |bm| {
            let idx = bm.find_clear_from(0).ok_or(FsError::NoSpace)?;
            bm.set(idx);
            Ok(idx)
        })?;
        let ratio = self.layout.cluster_ratio;
        self.groups[g as usize].free_blocks_count -= ratio;
        self.sb.free_blocks_count -= u64::from(ratio);
        Ok(self.layout.group_first_block(g) + u64::from(idx) * u64::from(ratio))
    }

    /// Frees the cluster containing `block`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] if the block was already free.
    pub fn free_block(&mut self, block: u64) -> Result<(), FsError> {
        self.check_writable()?;
        let g = self.layout.block_group_of(block);
        let idx = self.layout.block_index_in_group(block) / self.layout.cluster_ratio;
        self.update_block_bitmap(g, |bm| {
            if !bm.clear(idx) {
                return Err(FsError::Corrupt(format!("double free of block {block}")));
            }
            Ok(())
        })?;
        let ratio = self.layout.cluster_ratio;
        self.groups[g as usize].free_blocks_count += ratio;
        self.sb.free_blocks_count += u64::from(ratio);
        Ok(())
    }

    /// Allocates an inode; `is_dir` selects the Orlov-style policy.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoInodes`] when every group is out of inodes.
    pub fn alloc_inode(&mut self, is_dir: bool, parent: InodeNo) -> Result<InodeNo, FsError> {
        self.check_writable()?;
        let parent_group = self.layout.inode_group_of(parent.0);
        let g = if is_dir {
            pick_group_for_dir(&self.groups)
        } else {
            pick_group_for_file(&self.groups, parent_group)
        }
        .ok_or(FsError::NoInodes)?;
        let idx = self.update_inode_bitmap(g, |bm| {
            let idx = bm.find_clear_from(0).ok_or(FsError::NoInodes)?;
            bm.set(idx);
            Ok(idx)
        })?;
        self.groups[g as usize].free_inodes_count -= 1;
        self.sb.free_inodes_count -= 1;
        Ok(InodeNo(g * self.layout.inodes_per_group + idx + 1))
    }

    /// Frees inode `ino` (bitmap + counters only; the caller clears the
    /// table entry).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on double free.
    pub fn free_inode(&mut self, ino: InodeNo, was_dir: bool) -> Result<(), FsError> {
        self.check_writable()?;
        self.check_ino(ino)?;
        let g = self.layout.inode_group_of(ino.0);
        let idx = self.layout.inode_index_in_group(ino.0);
        self.update_inode_bitmap(g, |bm| {
            if !bm.clear(idx) {
                return Err(FsError::Corrupt(format!("double free of inode {}", ino.0)));
            }
            Ok(())
        })?;
        self.groups[g as usize].free_inodes_count += 1;
        self.sb.free_inodes_count += 1;
        if was_dir && self.groups[g as usize].used_dirs_count > 0 {
            self.groups[g as usize].used_dirs_count -= 1;
        }
        Ok(())
    }

    fn sectors_for(&self, blocks: u32) -> u32 {
        blocks * (self.layout.block_size / 512)
    }

    fn uses_extent_feature(&self) -> bool {
        self.layout.features.incompat.contains(IncompatFeatures::EXTENTS)
    }

    fn uses_inline_feature(&self) -> bool {
        self.layout.features.incompat.contains(IncompatFeatures::INLINE_DATA)
    }

    // -----------------------------------------------------------------
    // block mapping
    // -----------------------------------------------------------------

    fn load_extent_tree(&self, inode: &Inode) -> Result<(ExtentTree, Option<u64>), FsError> {
        match ExtentTree::decode_inline(&inode.block_area)? {
            ExtentRoot::Inline(t) => Ok((t, None)),
            ExtentRoot::Spilled { leaf_block } => {
                let data = self.dev.read_block_vec(leaf_block)?;
                Ok((ExtentTree::decode_leaf(&data)?, Some(leaf_block)))
            }
        }
    }

    fn store_extent_tree(
        &mut self,
        inode: &mut Inode,
        tree: &ExtentTree,
        leaf_block: Option<u64>,
    ) -> Result<(), FsError> {
        if tree.fits_inline() {
            tree.encode_inline(&mut inode.block_area);
            if let Some(lb) = leaf_block {
                self.free_block(lb)?;
            }
        } else {
            if tree.len() > ExtentTree::leaf_capacity(self.layout.block_size) {
                return Err(FsError::Corrupt(format!(
                    "file too fragmented: {} extents exceed one leaf node",
                    tree.len()
                )));
            }
            let lb = match leaf_block {
                Some(lb) => lb,
                None => self.alloc_block(0)?,
            };
            let leaf = tree.encode_root_with_leaf(&mut inode.block_area, lb, self.layout.block_size);
            self.dev.write_block(lb, &leaf)?;
        }
        Ok(())
    }

    /// Maps a file-logical block to a device block, if allocated.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on a malformed block map.
    pub fn file_block(&self, inode: &Inode, logical: u32) -> Result<Option<u64>, FsError> {
        if inode.is_inline() || is_fast_symlink(inode) {
            return Ok(None);
        }
        if inode.uses_extents() {
            let (tree, _) = self.load_extent_tree(inode)?;
            Ok(tree.map(logical))
        } else {
            // legacy map: 12 direct pointers + one single-indirect block
            if (logical as usize) < DIRECT_BLOCKS {
                let v = get_u32(&inode.block_area, logical as usize * 4);
                Ok(if v == 0 { None } else { Some(u64::from(v)) })
            } else {
                let ind = get_u32(&inode.block_area, DIRECT_BLOCKS * 4);
                if ind == 0 {
                    return Ok(None);
                }
                let per = self.layout.block_size / 4;
                let idx = logical - DIRECT_BLOCKS as u32;
                if idx >= per {
                    return Ok(None); // beyond single-indirect capacity
                }
                let data = self.dev.read_block_vec(u64::from(ind))?;
                let v = get_u32(&data, idx as usize * 4);
                Ok(if v == 0 { None } else { Some(u64::from(v)) })
            }
        }
    }

    fn set_file_block(&mut self, inode: &mut Inode, logical: u32, block: u64) -> Result<(), FsError> {
        if inode.uses_extents() {
            let (mut tree, leaf) = self.load_extent_tree(inode)?;
            tree.append(logical, block)?;
            self.store_extent_tree(inode, &tree, leaf)
        } else {
            if (logical as usize) < DIRECT_BLOCKS {
                put_u32(&mut inode.block_area, logical as usize * 4, block as u32);
                return Ok(());
            }
            let per = self.layout.block_size / 4;
            let idx = logical - DIRECT_BLOCKS as u32;
            if idx >= per {
                return Err(FsError::NoSpace); // file exceeds legacy map capacity
            }
            let mut ind = get_u32(&inode.block_area, DIRECT_BLOCKS * 4);
            if ind == 0 {
                let nb = self.alloc_block(0)?;
                let zero = vec![0u8; self.layout.block_size as usize];
                self.dev.write_block(nb, &zero)?;
                put_u32(&mut inode.block_area, DIRECT_BLOCKS * 4, nb as u32);
                ind = nb as u32;
            }
            let mut data = self.dev.read_block_vec(u64::from(ind))?;
            put_u32(&mut data, idx as usize * 4, block as u32);
            self.dev.write_block(u64::from(ind), &data)?;
            Ok(())
        }
    }

    /// Enumerates every data block of `inode`, including mapping blocks
    /// (extent leaf / indirect). Used by unlink, the checker and
    /// `e4defrag`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on a malformed block map.
    pub fn file_blocks(&self, inode: &Inode) -> Result<Vec<u64>, FsError> {
        let mut out = Vec::new();
        if inode.is_inline() || is_fast_symlink(inode) {
            return Ok(out);
        }
        if inode.uses_extents() {
            let (tree, leaf) = self.load_extent_tree(inode)?;
            if let Some(lb) = leaf {
                out.push(lb);
            }
            for e in tree.extents() {
                for i in 0..u64::from(e.len) {
                    out.push(e.physical + i);
                }
            }
        } else {
            for i in 0..DIRECT_BLOCKS {
                let v = get_u32(&inode.block_area, i * 4);
                if v != 0 {
                    out.push(u64::from(v));
                }
            }
            let ind = get_u32(&inode.block_area, DIRECT_BLOCKS * 4);
            if ind != 0 {
                out.push(u64::from(ind));
                let data = self.dev.read_block_vec(u64::from(ind))?;
                for i in 0..(self.layout.block_size / 4) as usize {
                    let v = get_u32(&data, i * 4);
                    if v != 0 {
                        out.push(u64::from(v));
                    }
                }
            }
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // file operations
    // -----------------------------------------------------------------

    /// The root directory inode number.
    pub fn root_inode(&self) -> InodeNo {
        ROOT_INODE
    }

    /// Creates an empty regular file `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`], [`FsError::NotADirectory`],
    /// allocation errors, or device errors.
    pub fn create_file(&mut self, dir: InodeNo, name: &str) -> Result<InodeNo, FsError> {
        self.check_writable()?;
        if self.lookup(dir, name)?.is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let ino = self.alloc_inode(false, dir)?;
        let mut inode = Inode::new_file(self.uses_extent_feature());
        if self.uses_inline_feature() {
            inode.flags.insert(InodeFlags::INLINE_DATA);
            inode.flags.remove(InodeFlags::EXTENTS);
            inode.block_area = [0u8; I_BLOCK_SIZE];
        }
        inode.ctime = self.tick();
        self.write_inode(ino, &inode)?;
        self.add_dir_entry(dir, name, ino, FileType::Regular)?;
        self.commit_op()?;
        Ok(ino)
    }

    /// Creates directory `name` under `dir`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Ext4Fs::create_file`].
    pub fn mkdir(&mut self, dir: InodeNo, name: &str) -> Result<InodeNo, FsError> {
        self.check_writable()?;
        if self.lookup(dir, name)?.is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let ino = self.alloc_inode(true, dir)?;
        let block = self.alloc_block(self.layout.inode_group_of(ino.0))?;
        let mut data = vec![0u8; self.layout.block_size as usize];
        dir::init_block(&mut data, ino.0, dir.0);
        self.dev.write_block(block, &data)?;
        let mut inode = Inode::new_dir(self.uses_extent_feature());
        inode.size = u64::from(self.layout.block_size);
        inode.ctime = self.tick();
        self.set_file_block(&mut inode, 0, block)?;
        inode.blocks = self.sectors_for(1);
        self.write_inode(ino, &inode)?;
        self.add_dir_entry(dir, name, ino, FileType::Dir)?;
        // parent gains a ".." reference
        let mut parent = self.read_inode(dir)?;
        parent.links_count += 1;
        self.write_inode(dir, &parent)?;
        let g = self.layout.inode_group_of(ino.0);
        self.groups[g as usize].used_dirs_count += 1;
        self.commit_op()?;
        Ok(ino)
    }

    /// Writes `data` into the file at byte `offset`, allocating blocks as
    /// needed (or keeping tiny files inline when `inline_data` is on).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::IsADirectory`] for directories, plus allocation
    /// and device errors.
    pub fn write_file(&mut self, ino: InodeNo, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.check_writable()?;
        let mut inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory(ino.0));
        }
        let end = offset + data.len() as u64;
        if inode.is_inline() {
            if end <= I_BLOCK_SIZE as u64 {
                inode.block_area[offset as usize..end as usize].copy_from_slice(data);
                inode.size = inode.size.max(end);
                inode.mtime = self.tick();
                self.write_inode(ino, &inode)?;
                return self.commit_op();
            }
            // migrate inline -> block-mapped
            let old: Vec<u8> = inode.block_area[..inode.size as usize].to_vec();
            inode.flags.remove(InodeFlags::INLINE_DATA);
            inode.block_area = [0u8; I_BLOCK_SIZE];
            if self.uses_extent_feature() {
                inode.init_extent_root();
            }
            let saved_size = inode.size;
            inode.size = 0;
            self.write_inode(ino, &inode)?;
            if !old.is_empty() {
                self.write_file(ino, 0, &old)?;
                inode = self.read_inode(ino)?;
                inode.size = saved_size;
                self.write_inode(ino, &inode)?;
            }
            inode = self.read_inode(ino)?;
        }
        let bs = u64::from(self.layout.block_size);
        let first_block = (offset / bs) as u32;
        let last_block = end.div_ceil(bs) as u32;
        let mut blocks_added = 0u32;
        for logical in first_block..last_block {
            let phys = match self.file_block(&inode, logical)? {
                Some(b) => b,
                None => {
                    let goal = self.layout.inode_group_of(ino.0);
                    let b = self.alloc_block(goal)?;
                    // allocating a cluster maps cluster_ratio logical blocks
                    let base_logical = logical - (logical % self.layout.cluster_ratio);
                    for i in 0..self.layout.cluster_ratio {
                        if self.file_block(&inode, base_logical + i)?.is_none() {
                            self.set_file_block(&mut inode, base_logical + i, b + u64::from(i))?;
                        }
                    }
                    blocks_added += self.layout.cluster_ratio;
                    self.file_block(&inode, logical)?.ok_or_else(|| {
                        FsError::Corrupt("freshly mapped block vanished".to_string())
                    })?
                }
            };
            // read-modify-write the affected byte range of this block
            let block_start = u64::from(logical) * bs;
            let from = offset.max(block_start);
            let to = end.min(block_start + bs);
            let mut buf = self.dev.read_block_vec(phys)?;
            let src_off = (from - offset) as usize;
            let dst_off = (from - block_start) as usize;
            let len = (to - from) as usize;
            buf[dst_off..dst_off + len].copy_from_slice(&data[src_off..src_off + len]);
            self.dev.write_block(phys, &buf)?;
        }
        inode.size = inode.size.max(end);
        inode.blocks += self.sectors_for(blocks_added);
        inode.mtime = self.tick();
        self.write_inode(ino, &inode)?;
        self.commit_op()
    }

    /// Reads up to `buf.len()` bytes from byte `offset`; returns the
    /// number of bytes read (short at EOF). Holes read as zeros.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::IsADirectory`] for directories plus device
    /// errors.
    pub fn read_file(&self, ino: InodeNo, offset: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        let inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory(ino.0));
        }
        if offset >= inode.size {
            return Ok(0);
        }
        let want = buf.len().min((inode.size - offset) as usize);
        if inode.is_inline() {
            buf[..want].copy_from_slice(&inode.block_area[offset as usize..offset as usize + want]);
            return Ok(want);
        }
        let bs = u64::from(self.layout.block_size);
        let mut done = 0usize;
        while done < want {
            let pos = offset + done as u64;
            let logical = (pos / bs) as u32;
            let in_off = (pos % bs) as usize;
            let take = (bs as usize - in_off).min(want - done);
            match self.file_block(&inode, logical)? {
                Some(phys) => {
                    let data = self.dev.read_block_vec(phys)?;
                    buf[done..done + take].copy_from_slice(&data[in_off..in_off + take]);
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        Ok(want)
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Same as [`Ext4Fs::read_file`].
    pub fn read_file_to_vec(&self, ino: InodeNo) -> Result<Vec<u8>, FsError> {
        let inode = self.read_inode(ino)?;
        let mut buf = vec![0u8; inode.size as usize];
        let n = self.read_file(ino, 0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Creates a symbolic link `name` in `dir` pointing at `target`.
    /// Targets up to 59 bytes are stored inline in the inode (a "fast
    /// symlink", as in real ext4); longer targets use a data block.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] / [`FsError::NameTooLong`] plus
    /// allocation and device errors.
    pub fn symlink(&mut self, dir: InodeNo, name: &str, target: &str) -> Result<InodeNo, FsError> {
        self.check_writable()?;
        if target.len() > 1024 {
            return Err(FsError::NameTooLong(target.len()));
        }
        if self.lookup(dir, name)?.is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let ino = self.alloc_inode(false, dir)?;
        let mut inode = Inode { mode: mode::S_IFLNK | 0o777, links_count: 1, ..Inode::default() };
        inode.ctime = self.tick();
        inode.size = target.len() as u64;
        if target.len() < I_BLOCK_SIZE {
            // fast symlink: the target lives in i_block
            inode.block_area[..target.len()].copy_from_slice(target.as_bytes());
        } else {
            let block = self.alloc_block(self.layout.inode_group_of(ino.0))?;
            let mut data = vec![0u8; self.layout.block_size as usize];
            data[..target.len()].copy_from_slice(target.as_bytes());
            self.dev.write_block(block, &data)?;
            if self.uses_extent_feature() {
                inode.init_extent_root();
            }
            self.set_file_block(&mut inode, 0, block)?;
            inode.blocks = self.sectors_for(1);
        }
        self.write_inode(ino, &inode)?;
        self.add_dir_entry(dir, name, ino, FileType::Symlink)?;
        self.commit_op()?;
        Ok(ino)
    }

    /// Reads a symbolic link's target.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] when the inode is not a symlink.
    pub fn readlink(&self, ino: InodeNo) -> Result<String, FsError> {
        let inode = self.read_inode(ino)?;
        if inode.mode & mode::S_IFMT != mode::S_IFLNK {
            return Err(FsError::NotFound(format!("inode {} is not a symlink", ino.0)));
        }
        let len = inode.size as usize;
        if len < I_BLOCK_SIZE && inode.blocks == 0 {
            return Ok(String::from_utf8_lossy(&inode.block_area[..len]).into_owned());
        }
        let block = self
            .file_block(&inode, 0)?
            .ok_or_else(|| FsError::Corrupt("symlink target block missing".to_string()))?;
        let data = self.dev.read_block_vec(block)?;
        Ok(String::from_utf8_lossy(&data[..len]).into_owned())
    }

    /// Renames `old_name` in `old_dir` to `new_name` in `new_dir`
    /// (replacing an existing *file* target, as POSIX rename does).
    ///
    /// # Errors
    ///
    /// * [`FsError::NotFound`] — the source entry is missing;
    /// * [`FsError::AlreadyExists`] — the target exists and is a
    ///   directory;
    /// * plus device and allocation errors.
    pub fn rename(
        &mut self,
        old_dir: InodeNo,
        old_name: &str,
        new_dir: InodeNo,
        new_name: &str,
    ) -> Result<(), FsError> {
        self.check_writable()?;
        let entry = self
            .lookup(old_dir, old_name)?
            .ok_or_else(|| FsError::NotFound(old_name.to_string()))?;
        let ino = InodeNo(entry.inode);
        let moving_dir = entry.file_type == FileType::Dir;
        if old_dir == new_dir && old_name == new_name {
            return Ok(());
        }
        // replace semantics for an existing target
        if let Some(target) = self.lookup(new_dir, new_name)? {
            if target.inode == entry.inode {
                return Ok(());
            }
            let tgt_inode = self.read_inode(InodeNo(target.inode))?;
            if tgt_inode.is_dir() {
                return Err(FsError::AlreadyExists(new_name.to_string()));
            }
            self.unlink(new_dir, new_name)?;
        }
        self.add_dir_entry(new_dir, new_name, ino, entry.file_type)?;
        self.remove_dir_entry(old_dir, old_name)?;
        if moving_dir && old_dir != new_dir {
            // fix '..' and the parents' link counts
            let inode = self.read_inode(ino)?;
            let bs = u64::from(self.layout.block_size);
            'fix: for logical in 0..div_ceil(inode.size, bs) as u32 {
                if let Some(phys) = self.file_block(&inode, logical)? {
                    let mut data = self.dev.read_block_vec(phys)?;
                    if dir::remove_entry(&mut data, "..")?.is_some() {
                        dir::add_entry(&mut data, "..", new_dir.0, FileType::Dir)?;
                        self.dev.write_block(phys, &data)?;
                        break 'fix;
                    }
                }
            }
            let mut old_parent = self.read_inode(old_dir)?;
            old_parent.links_count = old_parent.links_count.saturating_sub(1);
            self.write_inode(old_dir, &old_parent)?;
            let mut new_parent = self.read_inode(new_dir)?;
            new_parent.links_count += 1;
            self.write_inode(new_dir, &new_parent)?;
        }
        self.commit_op()
    }

    /// Removes file `name` from `dir`, freeing its inode and blocks when
    /// the link count drops to zero.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::IsADirectory`].
    pub fn unlink(&mut self, dir: InodeNo, name: &str) -> Result<(), FsError> {
        self.check_writable()?;
        let entry = self.lookup(dir, name)?.ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let ino = InodeNo(entry.inode);
        let mut inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory(ino.0));
        }
        self.remove_dir_entry(dir, name)?;
        inode.links_count = inode.links_count.saturating_sub(1);
        if inode.links_count == 0 {
            for b in self.file_blocks(&inode)? {
                // with bigalloc, only free each cluster once (its base)
                if self.layout.cluster_ratio == 1
                    || self.layout.block_index_in_group(b).is_multiple_of(self.layout.cluster_ratio)
                {
                    self.free_block(b)?;
                }
            }
            inode.dtime = self.tick();
            inode.size = 0;
            inode.block_area = [0u8; I_BLOCK_SIZE];
            self.write_inode(ino, &inode)?;
            self.free_inode(ino, false)?;
        } else {
            self.write_inode(ino, &inode)?;
        }
        self.commit_op()
    }

    /// Removes the empty directory `name` from `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::DirectoryNotEmpty`], [`FsError::NotFound`], or
    /// [`FsError::NotADirectory`].
    pub fn rmdir(&mut self, dir: InodeNo, name: &str) -> Result<(), FsError> {
        self.check_writable()?;
        let entry = self.lookup(dir, name)?.ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let ino = InodeNo(entry.inode);
        let mut inode = self.read_inode(ino)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(ino.0));
        }
        let entries = self.readdir(ino)?;
        if entries.iter().any(|e| e.name != "." && e.name != "..") {
            return Err(FsError::DirectoryNotEmpty(ino.0));
        }
        self.remove_dir_entry(dir, name)?;
        for b in self.file_blocks(&inode)? {
            self.free_block(b)?;
        }
        inode.links_count = 0;
        inode.dtime = self.tick();
        self.write_inode(ino, &inode)?;
        self.free_inode(ino, true)?;
        let mut parent = self.read_inode(dir)?;
        parent.links_count = parent.links_count.saturating_sub(1);
        self.write_inode(dir, &parent)?;
        self.commit_op()
    }

    /// Looks up `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotADirectory`] when `dir` is not a directory.
    pub fn lookup(&self, dir: InodeNo, name: &str) -> Result<Option<DirEntry>, FsError> {
        let inode = self.read_inode(dir)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(dir.0));
        }
        let bs = u64::from(self.layout.block_size);
        for logical in 0..div_ceil(inode.size, bs) as u32 {
            if let Some(phys) = self.file_block(&inode, logical)? {
                let data = self.dev.read_block_vec(phys)?;
                if let Some(e) = dir::find_entry(&data, name)? {
                    return Ok(Some(e));
                }
            }
        }
        Ok(None)
    }

    /// Lists every entry of directory `dir` (including `.` and `..`).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotADirectory`] when `dir` is not a directory.
    pub fn readdir(&self, dir: InodeNo) -> Result<Vec<DirEntry>, FsError> {
        let inode = self.read_inode(dir)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(dir.0));
        }
        let bs = u64::from(self.layout.block_size);
        let mut out = Vec::new();
        for logical in 0..div_ceil(inode.size, bs) as u32 {
            if let Some(phys) = self.file_block(&inode, logical)? {
                let data = self.dev.read_block_vec(phys)?;
                out.extend(dir::parse_block(&data)?);
            }
        }
        Ok(out)
    }

    fn add_dir_entry(
        &mut self,
        dir: InodeNo,
        name: &str,
        ino: InodeNo,
        ftype: FileType,
    ) -> Result<(), FsError> {
        let mut inode = self.read_inode(dir)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(dir.0));
        }
        let bs = u64::from(self.layout.block_size);
        let nblocks = div_ceil(inode.size, bs) as u32;
        for logical in 0..nblocks {
            if let Some(phys) = self.file_block(&inode, logical)? {
                let mut data = self.dev.read_block_vec(phys)?;
                if dir::add_entry(&mut data, name, ino.0, ftype)? {
                    self.dev.write_block(phys, &data)?;
                    return Ok(());
                }
            }
        }
        // every block full: extend the directory by one block
        let block = self.alloc_block(self.layout.inode_group_of(dir.0))?;
        let mut data = vec![0u8; bs as usize];
        // a single record spanning the whole block
        put_u32(&mut data, 0, ino.0);
        crate::util::put_u16(&mut data, 4, bs as u16);
        data[6] = name.len() as u8;
        data[7] = ftype.code();
        data[8..8 + name.len()].copy_from_slice(name.as_bytes());
        self.dev.write_block(block, &data)?;
        self.set_file_block(&mut inode, nblocks, block)?;
        inode.size += bs;
        inode.blocks += self.sectors_for(1);
        self.write_inode(dir, &inode)?;
        Ok(())
    }

    fn remove_dir_entry(&mut self, dir: InodeNo, name: &str) -> Result<(), FsError> {
        let inode = self.read_inode(dir)?;
        let bs = u64::from(self.layout.block_size);
        for logical in 0..div_ceil(inode.size, bs) as u32 {
            if let Some(phys) = self.file_block(&inode, logical)? {
                let mut data = self.dev.read_block_vec(phys)?;
                if dir::remove_entry(&mut data, name)?.is_some() {
                    self.dev.write_block(phys, &data)?;
                    return Ok(());
                }
            }
        }
        Err(FsError::NotFound(name.to_string()))
    }

    // -----------------------------------------------------------------
    // introspection
    // -----------------------------------------------------------------

    /// The in-memory superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Mutable superblock access; only offline maintenance may use it.
    ///
    /// # Panics
    ///
    /// Panics when the file system is not in maintenance mode — mounted
    /// superblock surgery is exactly the class of bug the paper studies.
    pub fn superblock_mut(&mut self) -> &mut Superblock {
        assert!(
            self.fs_state == FsState::Maintenance,
            "superblock surgery requires maintenance mode"
        );
        &mut self.sb
    }

    /// The computed layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Recomputes the layout from the (possibly edited) superblock —
    /// called by `resize2fs` after changing the geometry. Cached
    /// metadata keyed by the old geometry is dropped.
    pub fn refresh_layout(&mut self) {
        self.layout = Self::layout_from_sb(&self.sb);
        self.cache.reset(self.layout.group_count());
    }

    /// The group descriptors.
    pub fn groups(&self) -> &[crate::GroupDesc] {
        &self.groups
    }

    /// Mutable group-descriptor access (maintenance mode only).
    ///
    /// # Panics
    ///
    /// Panics when not in maintenance mode.
    pub fn groups_mut(&mut self) -> &mut Vec<crate::GroupDesc> {
        assert!(
            self.fs_state == FsState::Maintenance,
            "group-descriptor surgery requires maintenance mode"
        );
        &mut self.groups
    }

    /// The open mode of this handle.
    pub fn state(&self) -> FsState {
        self.fs_state
    }

    /// Shared access to the underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device (maintenance mode only).
    ///
    /// # Panics
    ///
    /// Panics when not in maintenance mode.
    pub fn device_mut(&mut self) -> &mut D {
        assert!(
            self.fs_state == FsState::Maintenance,
            "raw device access requires maintenance mode"
        );
        // the caller may rewrite any block, so cached copies (clean by
        // construction: maintenance handles are write-through) go stale
        self.cache.invalidate();
        &mut self.dev
    }

    /// `statfs`: (total blocks, free blocks, total inodes, free inodes).
    pub fn statfs(&self) -> (u64, u64, u32, u32) {
        (self.sb.blocks_count, self.sb.free_blocks_count, self.sb.inodes_count, self.sb.free_inodes_count)
    }

    fn tick(&mut self) -> u32 {
        self.clock += 1;
        self.clock
    }
}

#[cfg(test)]
impl<D: BlockDevice> Ext4Fs<D> {
    /// Test-only: extract the device without the clean-unmount bookkeeping
    /// (simulates a crash).
    pub(crate) fn dev_for_test(self) -> D {
        self.dev
    }

    /// Test-only: remove a directory entry without touching the inode
    /// (creates an orphan).
    pub(crate) fn remove_dirent_for_test(&mut self, dir: InodeNo, name: &str) {
        self.remove_dir_entry(dir, name).unwrap();
    }

    /// Test-only: map a block into an inode bypassing allocation
    /// (creates cross-links).
    pub(crate) fn set_block_for_test(&mut self, inode: &mut Inode, logical: u32, block: u64) {
        self.set_file_block(inode, logical, block).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDevice;
    use crate::features::RoCompatFeatures;

    fn small_fs() -> Ext4Fs<MemDevice> {
        let dev = MemDevice::new(1024, 8192);
        Ext4Fs::format(dev, &MkfsParams { block_size: Some(1024), ..MkfsParams::default() }).unwrap()
    }

    #[test]
    fn format_produces_consistent_counts() {
        let fs = small_fs();
        let (blocks, free, inodes, free_inodes) = fs.statfs();
        assert_eq!(blocks, 8192);
        assert!(free > 0 && free < blocks);
        assert!(inodes > 0);
        assert!(free_inodes < inodes);
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "a.txt").unwrap();
        fs.write_file(f, 0, b"hello world").unwrap();
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"hello world");
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "sparse").unwrap();
        fs.write_file(f, 5000, b"tail").unwrap();
        let data = fs.read_file_to_vec(f).unwrap();
        assert_eq!(data.len(), 5004);
        assert!(data[..5000].iter().all(|&b| b == 0));
        assert_eq!(&data[5000..], b"tail");
    }

    #[test]
    fn large_file_spans_many_blocks() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "big").unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        fs.write_file(f, 0, &payload).unwrap();
        assert_eq!(fs.read_file_to_vec(f).unwrap(), payload);
    }

    #[test]
    fn overwrite_in_place() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "f").unwrap();
        fs.write_file(f, 0, b"aaaaaaaaaa").unwrap();
        fs.write_file(f, 3, b"BBB").unwrap();
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"aaaBBBaaaa");
    }

    #[test]
    fn mkdir_and_nested_files() {
        let mut fs = small_fs();
        let d = fs.mkdir(ROOT_INODE, "subdir").unwrap();
        let f = fs.create_file(d, "inner.txt").unwrap();
        fs.write_file(f, 0, b"inner").unwrap();
        let e = fs.lookup(d, "inner.txt").unwrap().unwrap();
        assert_eq!(e.inode, f.0);
        let names: Vec<_> = fs.readdir(ROOT_INODE).unwrap().into_iter().map(|e| e.name).collect();
        assert!(names.contains(&"subdir".to_string()));
        assert!(names.contains(&"lost+found".to_string()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut fs = small_fs();
        fs.create_file(ROOT_INODE, "x").unwrap();
        assert!(matches!(fs.create_file(ROOT_INODE, "x"), Err(FsError::AlreadyExists(_))));
        assert!(matches!(fs.mkdir(ROOT_INODE, "x"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn unlink_frees_space() {
        let mut fs = small_fs();
        let (_, free0, _, fi0) = fs.statfs();
        let f = fs.create_file(ROOT_INODE, "tmp").unwrap();
        fs.write_file(f, 0, &vec![7u8; 4096]).unwrap();
        let (_, free1, _, _) = fs.statfs();
        assert!(free1 < free0);
        fs.unlink(ROOT_INODE, "tmp").unwrap();
        let (_, free2, _, fi2) = fs.statfs();
        assert_eq!(free2, free0);
        assert_eq!(fi2, fi0);
        assert!(fs.lookup(ROOT_INODE, "tmp").unwrap().is_none());
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = small_fs();
        let d = fs.mkdir(ROOT_INODE, "d").unwrap();
        fs.create_file(d, "f").unwrap();
        assert!(matches!(fs.rmdir(ROOT_INODE, "d"), Err(FsError::DirectoryNotEmpty(_))));
        fs.unlink(d, "f").unwrap();
        fs.rmdir(ROOT_INODE, "d").unwrap();
        assert!(fs.lookup(ROOT_INODE, "d").unwrap().is_none());
    }

    #[test]
    fn unmount_then_mount_round_trip() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "persist").unwrap();
        fs.write_file(f, 0, b"data survives").unwrap();
        let dev = fs.unmount().unwrap();
        let fs2 = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let e = fs2.lookup(ROOT_INODE, "persist").unwrap().unwrap();
        assert_eq!(fs2.read_file_to_vec(InodeNo(e.inode)).unwrap(), b"data survives");
    }

    #[test]
    fn read_only_mount_rejects_writes() {
        let fs = small_fs();
        let dev = fs.unmount().unwrap();
        let mut fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
        assert!(matches!(fs.create_file(ROOT_INODE, "nope"), Err(FsError::ReadOnlyFs)));
        assert!(matches!(fs.alloc_block(0), Err(FsError::ReadOnlyFs)));
    }

    #[test]
    fn dirty_image_refuses_rw_mount() {
        let fs = small_fs();
        let dev = fs.unmount().unwrap();
        // a read-write mount marks the image in-use on the device
        let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let dev = fs.dev; // crash: drop without unmount
        let err = Ext4Fs::mount(dev, &MountOptions::default()).unwrap_err();
        assert!(matches!(err, FsError::MountRejected { .. }));
    }

    #[test]
    fn maintenance_open_ignores_dirty_state() {
        let fs = small_fs();
        let dev = fs.dev; // crashed
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.state(), FsState::Maintenance);
    }

    #[test]
    fn mount_garbage_fails() {
        let dev = MemDevice::new(1024, 64);
        assert!(matches!(
            Ext4Fs::mount(dev, &MountOptions::default()),
            Err(FsError::BadMagic { .. })
        ));
    }

    #[test]
    fn journal_inode_allocated() {
        let fs = small_fs();
        let j = fs.read_inode(InodeNo(JOURNAL_INODE)).unwrap();
        assert!(j.size >= 256 * 1024, "journal should be at least 256 blocks");
        assert!(!fs.file_blocks(&j).unwrap().is_empty());
    }

    #[test]
    fn no_journal_feature_skips_journal() {
        let dev = MemDevice::new(1024, 8192);
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.compat.remove(CompatFeatures::HAS_JOURNAL);
        let fs = Ext4Fs::format(dev, &params).unwrap();
        let j = fs.read_inode(InodeNo(JOURNAL_INODE)).unwrap();
        assert_eq!(j.size, 0);
    }

    #[test]
    fn multi_group_format() {
        let dev = MemDevice::new(1024, 8192 * 3);
        let fs =
            Ext4Fs::format(dev, &MkfsParams { block_size: Some(1024), ..MkfsParams::default() })
                .unwrap();
        assert_eq!(fs.layout().group_count(), 3);
        assert_eq!(fs.groups().len(), 3);
        // per-group free counts sum to the superblock count
        let sum: u64 = fs.groups().iter().map(|g| u64::from(g.free_blocks_count)).sum();
        assert_eq!(sum, fs.superblock().free_blocks_count);
    }

    #[test]
    fn legacy_block_map_works_without_extents() {
        let dev = MemDevice::new(1024, 8192);
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.incompat.remove(IncompatFeatures::EXTENTS);
        let mut fs = Ext4Fs::format(dev, &params).unwrap();
        let f = fs.create_file(ROOT_INODE, "legacy").unwrap();
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 256) as u8).collect(); // needs indirect
        fs.write_file(f, 0, &payload).unwrap();
        assert_eq!(fs.read_file_to_vec(f).unwrap(), payload);
        let inode = fs.read_inode(f).unwrap();
        assert!(!inode.uses_extents());
    }

    #[test]
    fn inline_data_small_files_stay_in_inode() {
        let dev = MemDevice::new(1024, 8192);
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.incompat.insert(IncompatFeatures::INLINE_DATA);
        let mut fs = Ext4Fs::format(dev, &params).unwrap();
        let (_, free0, _, _) = fs.statfs();
        let f = fs.create_file(ROOT_INODE, "tiny").unwrap();
        fs.write_file(f, 0, b"0123456789").unwrap();
        let (_, free1, _, _) = fs.statfs();
        assert_eq!(free0, free1, "inline write must not allocate blocks");
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"0123456789");
        // growing beyond 60 bytes migrates to blocks
        let big = vec![9u8; 100];
        fs.write_file(f, 10, &big).unwrap();
        let (_, free2, _, _) = fs.statfs();
        assert!(free2 < free1);
        let data = fs.read_file_to_vec(f).unwrap();
        assert_eq!(data.len(), 110);
        assert_eq!(&data[..10], b"0123456789");
        assert!(data[10..].iter().all(|&b| b == 9));
    }

    #[test]
    fn sparse_super2_format_records_backups() {
        let dev = MemDevice::new(1024, 8192 * 4);
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.compat.insert(CompatFeatures::SPARSE_SUPER2);
        params.features.ro_compat.remove(RoCompatFeatures::SPARSE_SUPER);
        let fs = Ext4Fs::format(dev, &params).unwrap();
        assert_eq!(fs.superblock().backup_bgs, [1, 3]);
        assert_eq!(fs.layout().backup_groups(), vec![1, 3]);
    }

    #[test]
    fn fragmented_file_spills_extent_tree() {
        let mut fs = small_fs();
        // interleave two files so extents cannot merge
        let a = fs.create_file(ROOT_INODE, "a").unwrap();
        let b = fs.create_file(ROOT_INODE, "b").unwrap();
        for i in 0..12u64 {
            fs.write_file(a, i * 1024, &[1u8; 1024]).unwrap();
            fs.write_file(b, i * 1024, &[2u8; 1024]).unwrap();
        }
        let ia = fs.read_inode(a).unwrap();
        assert!(ia.uses_extents());
        let blocks = fs.file_blocks(&ia).unwrap();
        assert!(blocks.len() >= 12);
        let data = fs.read_file_to_vec(a).unwrap();
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn statfs_reflects_alloc_and_free() {
        let mut fs = small_fs();
        let (_, free0, _, _) = fs.statfs();
        let b = fs.alloc_block(0).unwrap();
        assert_eq!(fs.statfs().1, free0 - 1);
        fs.free_block(b).unwrap();
        assert_eq!(fs.statfs().1, free0);
        assert!(matches!(fs.free_block(b), Err(FsError::Corrupt(_))));
    }

    #[test]
    fn fast_symlink_round_trip() {
        let mut fs = small_fs();
        let (_, free0, _, _) = fs.statfs();
        let l = fs.symlink(ROOT_INODE, "link", "/target/path").unwrap();
        assert_eq!(fs.statfs().1, free0, "fast symlink must not allocate blocks");
        assert_eq!(fs.readlink(l).unwrap(), "/target/path");
        let e = fs.lookup(ROOT_INODE, "link").unwrap().unwrap();
        assert_eq!(e.file_type, FileType::Symlink);
        // unlink frees the inode and nothing else
        let (_, _, _, fi0) = fs.statfs();
        fs.unlink(ROOT_INODE, "link").unwrap();
        assert_eq!(fs.statfs().3, fi0 + 1);
        assert_eq!(fs.statfs().1, free0);
    }

    #[test]
    fn slow_symlink_uses_a_block() {
        let mut fs = small_fs();
        let (_, free0, _, _) = fs.statfs();
        let target = "t/".repeat(100); // 200 bytes > 59
        let l = fs.symlink(ROOT_INODE, "long", &target).unwrap();
        assert_eq!(fs.statfs().1, free0 - 1);
        assert_eq!(fs.readlink(l).unwrap(), target);
        fs.unlink(ROOT_INODE, "long").unwrap();
        assert_eq!(fs.statfs().1, free0);
    }

    #[test]
    fn readlink_rejects_non_symlinks() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "plain").unwrap();
        assert!(fs.readlink(f).is_err());
    }

    #[test]
    fn rename_within_directory() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "old").unwrap();
        fs.write_file(f, 0, b"payload").unwrap();
        fs.rename(ROOT_INODE, "old", ROOT_INODE, "new").unwrap();
        assert!(fs.lookup(ROOT_INODE, "old").unwrap().is_none());
        let e = fs.lookup(ROOT_INODE, "new").unwrap().unwrap();
        assert_eq!(e.inode, f.0);
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"payload");
    }

    #[test]
    fn rename_replaces_existing_file() {
        let mut fs = small_fs();
        let (_, _, _, fi0) = fs.statfs();
        let a = fs.create_file(ROOT_INODE, "a").unwrap();
        fs.write_file(a, 0, b"keep me").unwrap();
        let b = fs.create_file(ROOT_INODE, "b").unwrap();
        fs.write_file(b, 0, b"overwritten").unwrap();
        fs.rename(ROOT_INODE, "a", ROOT_INODE, "b").unwrap();
        let e = fs.lookup(ROOT_INODE, "b").unwrap().unwrap();
        assert_eq!(e.inode, a.0);
        assert_eq!(fs.read_file_to_vec(InodeNo(e.inode)).unwrap(), b"keep me");
        // the replaced file's inode was freed
        assert_eq!(fs.statfs().3, fi0 - 1);
    }

    #[test]
    fn rename_directory_across_parents_fixes_dotdot() {
        let mut fs = small_fs();
        let d1 = fs.mkdir(ROOT_INODE, "d1").unwrap();
        let d2 = fs.mkdir(ROOT_INODE, "d2").unwrap();
        let sub = fs.mkdir(d1, "sub").unwrap();
        fs.create_file(sub, "inner").unwrap();
        let links_d1 = fs.read_inode(d1).unwrap().links_count;
        let links_d2 = fs.read_inode(d2).unwrap().links_count;
        fs.rename(d1, "sub", d2, "sub-moved").unwrap();
        assert!(fs.lookup(d1, "sub").unwrap().is_none());
        let e = fs.lookup(d2, "sub-moved").unwrap().unwrap();
        assert_eq!(e.inode, sub.0);
        // '..' now points at d2
        let dotdot = fs.lookup(sub, "..").unwrap().unwrap();
        assert_eq!(dotdot.inode, d2.0);
        // parent link counts adjusted
        assert_eq!(fs.read_inode(d1).unwrap().links_count, links_d1 - 1);
        assert_eq!(fs.read_inode(d2).unwrap().links_count, links_d2 + 1);
        // the tree is still fully consistent
        let dev = fs.unmount().unwrap();
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = crate::check_image(&fs).unwrap();
        assert!(report.is_clean(), "{:#?}", report.inconsistencies);
    }

    #[test]
    fn rename_onto_directory_refused() {
        let mut fs = small_fs();
        fs.create_file(ROOT_INODE, "f").unwrap();
        fs.mkdir(ROOT_INODE, "d").unwrap();
        assert!(matches!(
            fs.rename(ROOT_INODE, "f", ROOT_INODE, "d"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn rename_missing_source_errors() {
        let mut fs = small_fs();
        assert!(matches!(
            fs.rename(ROOT_INODE, "ghost", ROOT_INODE, "x"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn rename_noop_same_name() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "same").unwrap();
        fs.rename(ROOT_INODE, "same", ROOT_INODE, "same").unwrap();
        assert_eq!(fs.lookup(ROOT_INODE, "same").unwrap().unwrap().inode, f.0);
    }

    #[test]
    fn hard_link_shares_content_and_counts() {
        let mut fs = small_fs();
        let f = fs.create_file(ROOT_INODE, "orig").unwrap();
        fs.write_file(f, 0, b"shared bytes").unwrap();
        fs.link(ROOT_INODE, "alias", f).unwrap();
        assert_eq!(fs.read_inode(f).unwrap().links_count, 2);
        let e = fs.lookup(ROOT_INODE, "alias").unwrap().unwrap();
        assert_eq!(e.inode, f.0);
        // unlinking one name keeps the data
        fs.unlink(ROOT_INODE, "orig").unwrap();
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"shared bytes");
        assert_eq!(fs.read_inode(f).unwrap().links_count, 1);
        // unlinking the last name frees everything
        let (_, free0, _, _) = fs.statfs();
        fs.unlink(ROOT_INODE, "alias").unwrap();
        assert!(fs.statfs().1 >= free0);
        assert!(fs.lookup(ROOT_INODE, "alias").unwrap().is_none());
    }

    #[test]
    fn bigalloc_allocates_clusters() {
        let dev = MemDevice::new(1024, 8192 * 4);
        let mut params = MkfsParams {
            block_size: Some(1024),
            cluster_size: Some(4096),
            ..MkfsParams::default()
        };
        params.features.incompat.insert(IncompatFeatures::BIGALLOC);
        let mut fs = Ext4Fs::format(dev, &params).unwrap();
        assert_eq!(fs.layout().cluster_ratio, 4);
        let (_, free0, _, _) = fs.statfs();
        let f = fs.create_file(ROOT_INODE, "c").unwrap();
        fs.write_file(f, 0, b"one byte write").unwrap();
        let (_, free1, _, _) = fs.statfs();
        assert_eq!(free0 - free1, 4, "one cluster = 4 blocks must be charged");
        assert_eq!(fs.read_file_to_vec(f).unwrap(), b"one byte write");
    }

    // -----------------------------------------------------------------
    // runtime errors= policy enforcement
    // -----------------------------------------------------------------

    use crate::superblock::errors_policy;
    use blockdev::{FaultPlan, FaultyDevice, InjectedFault};

    /// A clean image with one durable file `keep` (content `b"durable"`).
    fn image_with_durable_file() -> MemDevice {
        let dev = MemDevice::new(1024, 8192);
        let mut fs = Ext4Fs::format(
            dev,
            &MkfsParams { block_size: Some(1024), ..MkfsParams::default() },
        )
        .unwrap();
        let f = fs.create_file(ROOT_INODE, "keep").unwrap();
        fs.write_file(f, 0, b"durable").unwrap();
        fs.unmount().unwrap()
    }

    fn mount_faulty(
        image: MemDevice,
        plan: FaultPlan,
        errors: u16,
        policy: CachePolicy,
    ) -> Ext4Fs<FaultyDevice<MemDevice>> {
        let dev = FaultyDevice::new(image, plan);
        let opts = MountOptions { errors: Some(errors), ..MountOptions::default() };
        Ext4Fs::mount_with_policy(dev, &opts, policy).unwrap()
    }

    #[test]
    fn errors_continue_propagates_typed_errors_per_op() {
        // write #0 is the rw-mount superblock update; #1 is the first
        // metadata write of the operation
        let plan = FaultPlan::new().with(InjectedFault::FailWrite(1));
        let mut fs = mount_faulty(
            image_with_durable_file(),
            plan,
            errors_policy::CONTINUE,
            CachePolicy::WriteThrough,
        );
        let err = fs.create_file(ROOT_INODE, "new").unwrap_err();
        assert!(matches!(err, FsError::Device(_)), "{err}");
        assert!(!fs.is_degraded());
        assert!(!fs.has_panicked());
        // the fs keeps going: the next operation succeeds
        fs.create_file(ROOT_INODE, "after").unwrap();
    }

    #[test]
    fn errors_remount_ro_degrades_but_serves_reads() {
        let plan = FaultPlan::new().with(InjectedFault::FailWrite(1));
        let mut fs = mount_faulty(
            image_with_durable_file(),
            plan,
            errors_policy::REMOUNT_RO,
            CachePolicy::WriteThrough,
        );
        let err = fs.create_file(ROOT_INODE, "new").unwrap_err();
        assert!(matches!(err, FsError::Device(_)), "{err}");
        assert!(fs.is_degraded());
        // writes are rejected with the dedicated typed error...
        let err = fs.create_file(ROOT_INODE, "more").unwrap_err();
        assert!(matches!(err, FsError::DegradedReadOnly), "{err}");
        // ...while previously-durable data is still served
        let keep = fs.lookup(ROOT_INODE, "keep").unwrap().unwrap();
        assert_eq!(fs.read_file_to_vec(InodeNo(keep.inode)).unwrap(), b"durable");
    }

    #[test]
    fn errors_panic_halts_with_typed_error_and_stamps_image() {
        let plan = FaultPlan::new().with(InjectedFault::FailWrite(1));
        let mut fs = mount_faulty(
            image_with_durable_file(),
            plan,
            errors_policy::PANIC,
            CachePolicy::WriteThrough,
        );
        let err = fs.create_file(ROOT_INODE, "new").unwrap_err();
        assert!(matches!(err, FsError::PolicyPanic(_)), "{err}");
        assert!(fs.has_panicked());
        // the halted handle serves nothing, reads included
        let err = fs.lookup(ROOT_INODE, "keep").unwrap_err();
        assert!(matches!(err, FsError::PolicyPanic(_)), "{err}");
        // unmount is crash-like but hands the device back
        let dev = fs.unmount().unwrap().into_inner();
        // the error flag was stamped before the halt, so recovery tooling
        // (and the next mount) can see the damage
        let fsck = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_ne!(fsck.superblock().state & state::ERROR_FS, 0);
    }

    #[test]
    fn failed_writeback_poisons_cache_and_retry_drains_it() {
        let plan = FaultPlan::new().with(InjectedFault::FailWrite(1));
        let mut fs = mount_faulty(
            image_with_durable_file(),
            plan,
            errors_policy::CONTINUE,
            CachePolicy::WriteBack,
        );
        // dirty the itable cache without touching the device (write #0
        // was the rw-mount superblock update), then commit: the write-back
        // pass issues write #1, which the plan kills
        let root = fs.read_inode(ROOT_INODE).unwrap();
        fs.write_inode(ROOT_INODE, &root).unwrap();
        let err = fs.flush_cache().unwrap_err();
        assert!(matches!(err, FsError::Device(_)), "{err}");
        assert!(fs.cache_poisoned(), "failed flush must poison the cache");
        // dirty state was retained, not dropped: a retried flush writes
        // the remaining blocks (the fault fired once) and clears poison
        fs.flush_cache().unwrap();
        assert!(!fs.cache_poisoned());
        // and the clean unmount path completes
        let dev = fs.unmount().unwrap().into_inner();
        let reopened = Ext4Fs::open_for_maintenance(dev).unwrap();
        let check = crate::check_image(&reopened).unwrap();
        // the error flag was stamped when the fault fired (so fsck knows
        // to look), but the metadata itself must be fully consistent —
        // nothing was dropped on the floor
        assert!(
            check
                .inconsistencies
                .iter()
                .all(|i| matches!(i.kind, crate::InconsistencyKind::ErrorFlagSet)),
            "{:?}",
            check
        );
    }

    #[test]
    fn mount_effective_policy_comes_from_superblock_when_no_option() {
        let mut image = image_with_durable_file();
        // tune2fs -e panic equivalent: record the policy on the image
        {
            let mut fs = Ext4Fs::open_for_maintenance(image).unwrap();
            fs.superblock_mut().errors = errors_policy::PANIC;
            fs.flush_metadata().unwrap();
            image = fs.unmount().unwrap();
        }
        let fs = Ext4Fs::mount(image, &MountOptions::default()).unwrap();
        assert_eq!(fs.errors_policy(), errors_policy::PANIC);
        // an explicit mount option overrides the on-image default
        let image = fs.unmount().unwrap();
        let opts =
            MountOptions { errors: Some(errors_policy::REMOUNT_RO), ..MountOptions::default() };
        let fs = Ext4Fs::mount(image, &opts).unwrap();
        assert_eq!(fs.errors_policy(), errors_policy::REMOUNT_RO);
    }

    /// Runs `ops` create+write operations with a sync between each over
    /// a recording device; returns (device, flush barriers, seals).
    fn batched_run(dev: MemDevice, batch: u32, ops: usize) -> (MemDevice, usize, usize) {
        let rec = blockdev::RecordingDevice::new(dev);
        let opts = MountOptions { max_batch_ops: batch, ..MountOptions::default() };
        let mut fs = Ext4Fs::mount(rec, &opts).unwrap();
        let mut sealed = 0usize;
        for i in 0..ops {
            let f = fs.create_file(ROOT_INODE, &format!("f{i}")).unwrap();
            fs.write_file(f, 0, &[i as u8 + 1; 200]).unwrap();
            if fs.sync().unwrap() {
                sealed += 1;
            }
        }
        let rec = fs.unmount().unwrap();
        let (dev, trace) = rec.into_parts();
        (dev, trace.flush_count(), sealed)
    }

    #[test]
    fn group_commit_coalesces_flush_barriers() {
        let base = small_fs().unmount().unwrap();
        let (dev1, flushes1, sealed1) = batched_run(base.clone(), 1, 6);
        let (dev3, flushes3, sealed3) = batched_run(base, 3, 6);
        // commit-per-sync seals every operation; batch=3 every third
        assert_eq!(sealed1, 6);
        assert_eq!(sealed3, 2);
        assert!(
            flushes3 < flushes1,
            "batch=3 must need fewer barriers: {flushes3} vs {flushes1}"
        );
        // both schedules converge on the same files
        for dev in [dev1, dev3] {
            let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
            for i in 0..6usize {
                let e = fs.lookup(ROOT_INODE, &format!("f{i}")).unwrap().unwrap();
                assert_eq!(
                    fs.read_file_to_vec(InodeNo(e.inode)).unwrap(),
                    vec![i as u8 + 1; 200]
                );
            }
        }
    }

    #[test]
    fn batch_of_one_stays_commit_per_sync() {
        // 0 and 1 must both behave exactly like the historical
        // commit-per-operation path, write-for-write
        let base = small_fs().unmount().unwrap();
        let rec0 = blockdev::RecordingDevice::new(base.clone());
        let mut fs = Ext4Fs::mount(
            rec0,
            &MountOptions { max_batch_ops: 0, ..MountOptions::default() },
        )
        .unwrap();
        let f = fs.create_file(ROOT_INODE, "x").unwrap();
        fs.write_file(f, 0, b"abc").unwrap();
        assert!(fs.sync().unwrap(), "batch<=1 seals every sync");
        let (_, trace0) = fs.unmount().unwrap().into_parts();

        let rec1 = blockdev::RecordingDevice::new(base);
        let mut fs = Ext4Fs::mount(rec1, &MountOptions::default()).unwrap();
        let f = fs.create_file(ROOT_INODE, "x").unwrap();
        fs.write_file(f, 0, b"abc").unwrap();
        fs.flush_metadata().unwrap();
        let (_, trace1) = fs.unmount().unwrap().into_parts();
        assert_eq!(trace0.events(), trace1.events());
    }
}
