//! Little-endian field codecs used by the on-image metadata structures.
//!
//! Real ext4 lays its metadata out as packed little-endian C structs; these
//! helpers give the same explicit-offset style without `unsafe`.

/// Reads a `u16` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 2 > buf.len()`.
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Reads a `u32` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 4 > buf.len()`.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a `u64` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 8 > buf.len()`.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Writes a `u16` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 2 > buf.len()`.
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Writes a `u32` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 4 > buf.len()`.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Writes a `u64` at `off` (little-endian).
///
/// # Panics
///
/// Panics if `off + 8 > buf.len()`.
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Ceiling division for `u64`.
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// A tiny non-cryptographic checksum (FNV-1a) standing in for ext4's
/// crc32c metadata checksums.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Returns true if `n` is a power of `base` (used for sparse_super backup
/// group placement: powers of 3, 5, 7).
pub fn is_power_of(mut n: u64, base: u64) -> bool {
    debug_assert!(base >= 2);
    if n == 0 {
        return false;
    }
    while n.is_multiple_of(base) {
        n /= base;
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_round_trip() {
        let mut buf = [0u8; 8];
        put_u16(&mut buf, 2, 0xBEEF);
        assert_eq!(get_u16(&buf, 2), 0xBEEF);
        assert_eq!(buf[2], 0xEF);
        assert_eq!(buf[3], 0xBE);
    }

    #[test]
    fn u32_round_trip() {
        let mut buf = [0u8; 8];
        put_u32(&mut buf, 0, 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, 0), 0xDEAD_BEEF);
    }

    #[test]
    fn u64_round_trip() {
        let mut buf = [0u8; 16];
        put_u64(&mut buf, 4, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u64(&buf, 4), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn div_ceil_cases() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }

    #[test]
    fn checksum_is_stable_and_distinguishes() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn power_detection() {
        assert!(is_power_of(1, 3)); // 3^0
        assert!(is_power_of(3, 3));
        assert!(is_power_of(27, 3));
        assert!(is_power_of(25, 5));
        assert!(is_power_of(49, 7));
        assert!(!is_power_of(6, 3));
        assert!(!is_power_of(0, 3));
    }
}
