//! A thread-safe shared device handle.
//!
//! Real block devices are shared: several readers (and a writer) may
//! touch the same disk — e.g., an online utility inspecting an image
//! while a monitoring thread samples statistics. [`SharedDevice`] wraps
//! any [`BlockDevice`] in an `Arc<RwLock<_>>` (parking_lot, so read
//! access is cheap and never poisoned) and is itself a `BlockDevice`.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::{BlockDevice, DeviceError};

/// A cloneable, thread-safe handle to a shared block device.
#[derive(Debug)]
pub struct SharedDevice<D> {
    inner: Arc<RwLock<D>>,
}

impl<D> Clone for SharedDevice<D> {
    fn clone(&self) -> Self {
        SharedDevice { inner: Arc::clone(&self.inner) }
    }
}

impl<D: BlockDevice> SharedDevice<D> {
    /// Wraps `dev` for shared use.
    pub fn new(dev: D) -> Self {
        SharedDevice { inner: Arc::new(RwLock::new(dev)) }
    }

    /// Recovers the inner device if this is the last handle; otherwise
    /// returns `self` back.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while other handles are alive.
    pub fn try_into_inner(self) -> Result<D, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(inner) => Err(SharedDevice { inner }),
        }
    }

    /// Runs a closure with shared (read) access to the device.
    pub fn with_read<R>(&self, f: impl FnOnce(&D) -> R) -> R {
        f(&self.inner.read())
    }
}

impl<D: BlockDevice> BlockDevice for SharedDevice<D> {
    fn block_size(&self) -> u32 {
        self.inner.read().block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.read().num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.inner.read().read_block(block, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.inner.write().write_block(block, buf)
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.inner.write().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn shared_handles_see_the_same_bytes() {
        let mut a = SharedDevice::new(MemDevice::new(512, 8));
        let b = a.clone();
        a.write_block(3, &[9u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        b.read_block(3, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        assert_eq!(b.block_size(), 512);
        assert_eq!(b.num_blocks(), 8);
    }

    #[test]
    fn concurrent_readers_do_not_block_each_other() {
        let mut dev = SharedDevice::new(MemDevice::new(512, 64));
        for i in 0..64u64 {
            dev.write_block(i, &[i as u8; 512]).unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let d = dev.clone();
                std::thread::spawn(move || {
                    let mut buf = [0u8; 512];
                    for i in 0..64u64 {
                        d.read_block(i, &mut buf).unwrap();
                        assert_eq!(buf[0], i as u8, "thread {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let dev = SharedDevice::new(MemDevice::new(512, 64));
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                let mut d = dev.clone();
                std::thread::spawn(move || {
                    for i in 0..16u64 {
                        d.write_block(u64::from(t) * 16 + i, &[t; 512]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u8 {
            let mut buf = [0u8; 512];
            dev.read_block(u64::from(t) * 16, &mut buf).unwrap();
            assert_eq!(buf[0], t);
        }
    }

    #[test]
    fn into_inner_round_trip() {
        let dev = SharedDevice::new(MemDevice::new(512, 8));
        let clone = dev.clone();
        assert!(clone.try_into_inner().is_err(), "two handles alive");
        let inner = dev.try_into_inner().expect("last handle");
        assert_eq!(inner.num_blocks(), 8);
    }

    #[test]
    fn with_read_exposes_the_device() {
        let dev = SharedDevice::new(MemDevice::new(512, 8));
        let n = dev.with_read(|d| d.num_blocks());
        assert_eq!(n, 8);
    }
}
