//! Shared digest-keyed verdict memoisation with optional persistence.
//!
//! Both the crash explorer and the fault-injection campaigns classify
//! post-crash images, and both memoise verdicts by content digest so a
//! byte-identical image is never classified twice. [`VerdictStore`] is
//! the one implementation behind both: an in-memory map keyed by
//! `(ImageDigest, u64)` — the second component distinguishes contexts
//! that must not share verdicts, such as differing applicable
//! expectation sets — with shared hit/miss counters, plus an optional
//! append-only on-disk log so verdicts survive across process runs
//! (`CRASHSIM_STORE` / `--store`).
//!
//! # On-disk format
//!
//! An 8-byte header (`b"VSTR"` magic + little-endian `u32` version)
//! followed by records, each framed as
//!
//! ```text
//! [u32 payload length][u64 FNV-1a checksum of payload][payload]
//! ```
//!
//! where the payload is the JSON key line (`{"a":..,"b":..,"x":..}`),
//! a newline, and the JSON-serialised verdict. Length-prefixing plus a
//! per-record checksum means truncation and bit-level garbage are both
//! detected on load; a corrupt store falls back to a cold start (the
//! file is truncated back to its header) with a warning rather than
//! poisoning a campaign with bogus verdicts.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ImageDigest;

/// Store key: content digest plus a context discriminator (e.g. a hash
/// of the applicable expectation set).
pub type StoreKey = (ImageDigest, u64);

const MAGIC: [u8; 4] = *b"VSTR";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// Sanity cap on a single record payload (a verdict is small JSON).
const MAX_PAYLOAD: u32 = 1 << 24;

/// JSON shape of the key half of a record payload.
#[derive(Serialize, Deserialize)]
struct KeyLine {
    a: u64,
    b: u64,
    x: u64,
}

/// Derives a store context discriminator from a stable tag string
/// (FNV-1a). Subsystems sharing one store file — crash exploration,
/// fault campaigns, configuration fuzzing — hash a versioned tag like
/// `"conbugck/fuzz/v1"` so their verdicts never collide, and bumping
/// the tag retires stale verdicts without touching the file.
pub fn context(tag: &str) -> u64 {
    checksum(tag.as_bytes())
}

fn checksum(payload: &[u8]) -> u64 {
    // FNV-1a, same constants as the digest module's first stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &byte in payload {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What happened when a store was opened — the typed form of the
/// warnings [`VerdictStore::open`] prints, so campaign reports can
/// surface cold starts and dropped records instead of burying them in
/// stderr.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreOpenReport {
    /// The store file, when one was requested (`None` for purely
    /// in-memory stores).
    pub path: Option<String>,
    /// Whether an append-only log is attached (false when I/O trouble
    /// degraded the store to memory-only).
    pub persistent: bool,
    /// Why the store started cold, when it did: the corruption or I/O
    /// failure message. `None` for a clean open (including a fresh,
    /// empty file).
    pub cold_start: Option<String>,
    /// Records preloaded from disk.
    pub preloaded: usize,
    /// Records parsed and then discarded because a later frame was
    /// corrupt (the whole file is rejected on any framing error).
    pub dropped: usize,
}

/// Digest-keyed verdict memo shared by crashsim and faultsim, with an
/// optional append-only persistent log.
pub struct VerdictStore<V> {
    enabled: bool,
    map: Mutex<HashMap<StoreKey, V>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    preloaded: usize,
    log: Option<Mutex<File>>,
    open_report: StoreOpenReport,
}

impl<V> fmt::Debug for VerdictStore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerdictStore")
            .field("enabled", &self.enabled)
            .field("len", &self.map.lock().len())
            .field("preloaded", &self.preloaded)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("persistent", &self.log.is_some())
            .finish()
    }
}

impl<V> VerdictStore<V>
where
    V: Clone + Serialize + for<'de> Deserialize<'de>,
{
    /// A purely in-memory store. With `enabled == false` every lookup
    /// misses and nothing is retained (useful as a no-op cache).
    pub fn in_memory(enabled: bool) -> Self {
        VerdictStore {
            enabled,
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            preloaded: 0,
            log: None,
            open_report: StoreOpenReport::default(),
        }
    }

    /// An in-memory store carrying an explicit open report — the
    /// degraded-persistence fallback of [`VerdictStore::open`].
    fn degraded(report: StoreOpenReport) -> Self {
        let mut store = Self::in_memory(true);
        store.open_report = report;
        store
    }

    /// Opens (creating if absent) a persistent store at `path`.
    ///
    /// Infallible by design: an I/O failure degrades to a memory-only
    /// store with a warning, and a truncated or corrupt file is reset
    /// to an empty store (cold start) with a warning — campaigns never
    /// abort because of store trouble.
    pub fn open(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        let mut report =
            StoreOpenReport { path: Some(path.display().to_string()), ..StoreOpenReport::default() };
        let open = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path);
        let mut file = match open {
            Ok(f) => f,
            Err(e) => {
                eprintln!(
                    "warning: verdict store {}: {e}; continuing without persistence",
                    path.display()
                );
                report.cold_start = Some(format!("open failed: {e}"));
                return Self::degraded(report);
            }
        };
        let mut raw = Vec::new();
        if let Err(e) = file.read_to_end(&mut raw) {
            eprintln!(
                "warning: verdict store {}: read failed ({e}); continuing without persistence",
                path.display()
            );
            report.cold_start = Some(format!("read failed: {e}"));
            return Self::degraded(report);
        }
        let mut map = HashMap::new();
        let mut reset = false;
        if raw.is_empty() {
            reset = true; // fresh file: stamp the header below
        } else {
            match Self::parse(&raw, &mut map) {
                Ok(()) => {}
                Err(why) => {
                    eprintln!(
                        "warning: verdict store {} is corrupt ({why}); cold-starting",
                        path.display()
                    );
                    report.dropped = map.len();
                    report.cold_start = Some(why);
                    map.clear();
                    reset = true;
                }
            }
        }
        if reset {
            let fresh = file
                .set_len(0)
                .and_then(|()| file.seek(SeekFrom::Start(0)).map(|_| ()))
                .and_then(|()| file.write_all(&MAGIC))
                .and_then(|()| file.write_all(&VERSION.to_le_bytes()));
            if let Err(e) = fresh {
                eprintln!(
                    "warning: verdict store {}: reset failed ({e}); continuing without persistence",
                    path.display()
                );
                report.cold_start = Some(format!("reset failed: {e}"));
                return Self::degraded(report);
            }
        } else if let Err(e) = file.seek(SeekFrom::End(0)) {
            eprintln!(
                "warning: verdict store {}: seek failed ({e}); continuing without persistence",
                path.display()
            );
            report.cold_start = Some(format!("seek failed: {e}"));
            return Self::degraded(report);
        }
        report.persistent = true;
        report.preloaded = map.len();
        let preloaded = map.len();
        VerdictStore {
            enabled: true,
            map: Mutex::new(map),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            preloaded,
            log: Some(Mutex::new(file)),
            open_report: report,
        }
    }

    /// Parses a full store image into `map`; any framing, checksum or
    /// decode failure rejects the whole file (cold-start semantics).
    fn parse(raw: &[u8], map: &mut HashMap<StoreKey, V>) -> Result<(), String> {
        if raw.len() < HEADER_LEN as usize {
            return Err("short header".into());
        }
        if raw[..4] != MAGIC {
            return Err("bad magic".into());
        }
        let version = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let mut at = HEADER_LEN as usize;
        while at < raw.len() {
            if raw.len() - at < 12 {
                return Err(format!("truncated frame at byte {at}"));
            }
            let len = u32::from_le_bytes([raw[at], raw[at + 1], raw[at + 2], raw[at + 3]]);
            if len > MAX_PAYLOAD {
                return Err(format!("implausible record length {len} at byte {at}"));
            }
            let sum = u64::from_le_bytes([
                raw[at + 4],
                raw[at + 5],
                raw[at + 6],
                raw[at + 7],
                raw[at + 8],
                raw[at + 9],
                raw[at + 10],
                raw[at + 11],
            ]);
            let start = at + 12;
            let end = start + len as usize;
            if end > raw.len() {
                return Err(format!("truncated payload at byte {at}"));
            }
            let payload = &raw[start..end];
            if checksum(payload) != sum {
                return Err(format!("checksum mismatch at byte {at}"));
            }
            let text =
                std::str::from_utf8(payload).map_err(|_| format!("non-UTF8 payload at {at}"))?;
            let (key_line, value_json) =
                text.split_once('\n').ok_or_else(|| format!("unframed payload at {at}"))?;
            let key: KeyLine = serde_json::from_str(key_line)
                .map_err(|e| format!("bad key at byte {at}: {e:?}"))?;
            let value: V = serde_json::from_str(value_json)
                .map_err(|e| format!("bad value at byte {at}: {e:?}"))?;
            map.insert((ImageDigest { a: key.a, b: key.b }, key.x), value);
            at = end;
        }
        Ok(())
    }

    /// Looks up a verdict, counting a hit or a miss. A disabled store
    /// always misses.
    pub fn lookup(&self, key: StoreKey) -> Option<V> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.map.lock().get(&key).cloned() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a verdict (no-op on a disabled store) and appends it to
    /// the persistent log if one is attached. Does not touch counters.
    pub fn insert(&self, key: StoreKey, value: V) {
        if !self.enabled {
            return;
        }
        let fresh = self.map.lock().insert(key, value.clone()).is_none();
        if !fresh {
            return; // already logged (or superseded by an equal verdict)
        }
        if let Some(log) = &self.log {
            let key_line = KeyLine { a: key.0.a, b: key.0.b, x: key.1 };
            let (key_json, value_json) =
                match (serde_json::to_string(&key_line), serde_json::to_string(&value)) {
                    (Ok(k), Ok(v)) => (k, v),
                    _ => return, // unserialisable verdicts just stay in memory
                };
            let payload = format!("{key_json}\n{value_json}");
            let bytes = payload.as_bytes();
            let mut frame = Vec::with_capacity(12 + bytes.len());
            frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            frame.extend_from_slice(&checksum(bytes).to_le_bytes());
            frame.extend_from_slice(bytes);
            let mut file = log.lock();
            if let Err(e) = file.write_all(&frame) {
                eprintln!("warning: verdict store append failed: {e}");
            }
        }
    }

    /// Memoised computation: returns the cached verdict on a hit, else
    /// runs `compute`, stores the result and returns it.
    pub fn get_or_compute(&self, key: StoreKey, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of verdicts currently held.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Verdicts loaded from disk when the store was opened.
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// The typed record of what happened at open time (path,
    /// persistence, cold-start reason, preloaded/dropped records).
    pub fn open_report(&self) -> &StoreOpenReport {
        &self.open_report
    }

    /// Whether lookups can ever hit (false for the no-op cache).
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_store(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("blockdev_vstore_{}_{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn key(n: u64) -> StoreKey {
        (ImageDigest { a: n, b: n.wrapping_mul(31) }, n % 3)
    }

    #[test]
    fn in_memory_memoises_and_counts() {
        let store: VerdictStore<usize> = VerdictStore::in_memory(true);
        let mut calls = 0;
        let v = store.get_or_compute(key(1), || {
            calls += 1;
            7
        });
        assert_eq!(v, 7);
        let v = store.get_or_compute(key(1), || {
            calls += 1;
            99
        });
        assert_eq!(v, 7, "second lookup must hit the memo");
        assert_eq!(calls, 1);
        assert_eq!((store.hits(), store.misses()), (1, 1));
    }

    #[test]
    fn disabled_store_never_retains() {
        let store: VerdictStore<usize> = VerdictStore::in_memory(false);
        store.insert(key(1), 7);
        assert_eq!(store.lookup(key(1)), None);
        assert_eq!(store.len(), 0);
        assert_eq!((store.hits(), store.misses()), (0, 1));
    }

    #[test]
    fn persists_across_reopen() {
        let path = temp_store("roundtrip");
        {
            let store: VerdictStore<usize> = VerdictStore::open(&path);
            assert_eq!(store.preloaded(), 0);
            store.insert(key(1), 10);
            store.insert(key(2), 20);
            store.insert(key(2), 20); // duplicate insert must not double-log
        }
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 2);
        assert_eq!(store.lookup(key(1)), Some(10));
        assert_eq!(store.lookup(key(2)), Some(20));
        assert_eq!(store.hits(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_cold_starts_and_recovers() {
        let path = temp_store("bitflip");
        {
            let store: VerdictStore<usize> = VerdictStore::open(&path);
            store.insert(key(1), 10);
            store.insert(key(2), 20);
        }
        // Flip one bit inside the first record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        assert!(raw.len() > HEADER_LEN as usize + 12);
        let target = HEADER_LEN as usize + 12 + 3;
        raw[target] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 0, "corrupt store must cold-start");
        assert_eq!(store.lookup(key(1)), None);
        // The file was reset: new inserts round-trip cleanly again.
        store.insert(key(3), 30);
        drop(store);
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 1);
        assert_eq!(store.lookup(key(3)), Some(30));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_report_tracks_cold_start_and_preload() {
        let path = temp_store("report");
        {
            let store: VerdictStore<usize> = VerdictStore::open(&path);
            let r = store.open_report();
            assert!(r.persistent);
            assert_eq!(r.cold_start, None, "fresh file is not a cold start");
            assert_eq!((r.preloaded, r.dropped), (0, 0));
            store.insert(key(1), 10);
            store.insert(key(2), 20);
        }
        {
            let store: VerdictStore<usize> = VerdictStore::open(&path);
            let r = store.open_report();
            assert!(r.persistent && r.cold_start.is_none());
            assert_eq!(r.preloaded, 2);
            assert_eq!(r.path.as_deref(), Some(path.to_str().unwrap()));
        }
        // corrupt the second record: the first parses, then is dropped
        let mut raw = std::fs::read(&path).unwrap();
        let target = raw.len() - 3;
        raw[target] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        let r = store.open_report();
        assert!(r.persistent, "cold start still re-attaches the log");
        assert!(r.cold_start.as_deref().unwrap().contains("checksum mismatch"));
        assert_eq!((r.preloaded, r.dropped), (0, 1));
        // in-memory stores carry a default report
        let mem: VerdictStore<usize> = VerdictStore::in_memory(true);
        assert_eq!(mem.open_report(), &StoreOpenReport::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_cold_starts() {
        let path = temp_store("truncated");
        {
            let store: VerdictStore<usize> = VerdictStore::open(&path);
            store.insert(key(1), 10);
        }
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 0, "truncated store must cold-start");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_header_cold_starts() {
        let path = temp_store("garbage");
        std::fs::write(&path, b"not a verdict store at all").unwrap();
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 0);
        store.insert(key(5), 50);
        drop(store);
        let store: VerdictStore<usize> = VerdictStore::open(&path);
        assert_eq!(store.preloaded(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
