//! Block-device substrate for the confdep reproduction.
//!
//! The paper's artifact runs real Ext4 utilities against real block devices.
//! This crate provides the equivalent substrate for the simulated ecosystem:
//! a [`BlockDevice`] trait plus several implementations —
//!
//! * [`MemDevice`] — an in-memory device (the workhorse for tests and
//!   benchmarks),
//! * [`CowDevice`] — a copy-on-write device whose [`CowDevice::snapshot`]
//!   freezes the current state without copying block data, and which
//!   maintains a stable content [`ImageDigest`] incrementally (the
//!   substrate of the crash explorer's rolling materialisation and
//!   verdict cache),
//! * [`FileDevice`] — a file-backed device so images can persist on disk,
//! * [`FaultyDevice`] — a fault-injecting wrapper used by the robustness
//!   tests (I/O errors, torn writes, silent corruption),
//! * [`StatsDevice`] — an I/O-accounting wrapper used by the benchmarks,
//! * [`RecordingDevice`] — a write/flush recorder whose [`IoTrace`] the
//!   crash-consistency explorer replays.
//!
//! # Examples
//!
//! ```
//! use blockdev::{BlockDevice, MemDevice};
//!
//! # fn main() -> Result<(), blockdev::DeviceError> {
//! let mut dev = MemDevice::new(4096, 128);
//! let block = vec![0xA5u8; 4096];
//! dev.write_block(7, &block)?;
//! let mut out = vec![0u8; 4096];
//! dev.read_block(7, &mut out)?;
//! assert_eq!(block, out);
//! # Ok(())
//! # }
//! ```

mod cow;
mod device;
mod digest;
mod error;
mod faulty;
mod file;
mod mem;
mod recording;
mod shared;
mod stats;
mod store;

pub use cow::CowDevice;
pub use device::BlockDevice;
pub use digest::{
    block_contribution, digest_device, zero_block_contribution, BlockContribution, ImageDigest,
};
pub use error::DeviceError;
pub use faulty::{FaultPlan, FaultyDevice, InjectedFault};
pub use file::FileDevice;
pub use mem::MemDevice;
pub use recording::{IoEvent, IoTrace, RecordingDevice};
pub use shared::SharedDevice;
pub use stats::{IoStats, StatsDevice};
pub use store::{context as store_context, StoreKey, StoreOpenReport, VerdictStore};
