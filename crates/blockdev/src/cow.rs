//! A copy-on-write device with O(1)-per-block snapshots.
//!
//! Crash exploration needs the device state at *every* write boundary
//! of a trace. Re-replaying the prefix for each boundary costs O(W²)
//! block writes; [`CowDevice`] instead lets one rolling device advance
//! write-by-write and hand out a cheap frozen [`CowDevice::snapshot`]
//! at each boundary. Blocks are reference-counted (`Arc<[u8]>`), so a
//! snapshot copies pointers, never data, and later writes to either
//! side allocate a fresh block rather than disturbing the other.
//!
//! The device also maintains its own [`ImageDigest`] incrementally: an
//! overwrite swaps the old block's digest contribution for the new
//! one's, so every snapshot knows its content identity for free — the
//! key the crash explorer's verdict cache is indexed by.

use std::sync::Arc;

use crate::digest::{block_contribution, zero_block_contribution, BlockContribution, ImageDigest};
use crate::{BlockDevice, DeviceError};

/// A block device whose clones share storage copy-on-write.
#[derive(Debug, Clone)]
pub struct CowDevice {
    block_size: u32,
    blocks: Vec<Option<Arc<[u8]>>>,
    // None once tracking is stopped; see [`CowDevice::stop_digest_tracking`]
    digest: Option<ImageDigest>,
}

impl CowDevice {
    /// Creates a zero-filled device with `num_blocks` blocks of
    /// `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u32, num_blocks: u64) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        let mut digest = ImageDigest::default();
        for block in 0..num_blocks {
            digest.add(zero_block_contribution(block, block_size));
        }
        CowDevice { block_size, blocks: vec![None; num_blocks as usize], digest: Some(digest) }
    }

    /// Copies the logical content of `dev` into a fresh `CowDevice`
    /// (all-zero blocks stay unallocated).
    ///
    /// # Errors
    ///
    /// Propagates read errors from `dev`.
    pub fn from_device<D: BlockDevice>(dev: &D) -> Result<Self, DeviceError> {
        let mut out = CowDevice::new(dev.block_size(), dev.num_blocks());
        let mut buf = vec![0u8; dev.block_size() as usize];
        for block in 0..dev.num_blocks() {
            dev.read_block(block, &mut buf)?;
            if !buf.iter().all(|&b| b == 0) {
                if let Some(digest) = &mut out.digest {
                    digest.replace(
                        zero_block_contribution(block, out.block_size),
                        block_contribution(block, &buf),
                    );
                }
                out.blocks[block as usize] = Some(Arc::from(buf.as_slice()));
            }
        }
        Ok(out)
    }

    /// A frozen copy of the current state. Costs one pointer per block;
    /// no block data is copied until one side overwrites it.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Content identity of the current state, maintained incrementally
    /// across writes; `None` after [`CowDevice::stop_digest_tracking`].
    pub fn digest(&self) -> Option<ImageDigest> {
        self.digest
    }

    /// Stops maintaining the content digest, making every later
    /// [`BlockDevice::write_block`] cheaper (no hashing of the old and
    /// new block contents). For consumers that have already taken the
    /// digest and only keep mutating the device — e.g. a repair tool
    /// working on a crash image whose identity is already cached.
    pub fn stop_digest_tracking(&mut self) {
        self.digest = None;
    }

    /// Number of blocks holding allocated (written, non-shared-zero)
    /// storage.
    pub fn populated_blocks(&self) -> u64 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u64
    }

    fn contribution_of(&self, block: u64) -> BlockContribution {
        match &self.blocks[block as usize] {
            Some(data) => block_contribution(block, data),
            None => zero_block_contribution(block, self.block_size),
        }
    }
}

impl BlockDevice for CowDevice {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        match &self.blocks[block as usize] {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        if self.digest.is_some() {
            let old = self.contribution_of(block);
            if let Some(digest) = &mut self.digest {
                digest.replace(old, block_contribution(block, buf));
            }
        }
        // overwrite in place when nothing else shares the block
        if let Some(data) = self.blocks[block as usize].as_mut().and_then(Arc::get_mut) {
            data.copy_from_slice(buf);
        } else {
            self.blocks[block as usize] = Some(Arc::from(buf));
        }
        Ok(())
    }

    fn read_blocks(&self, start: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        let bs = self.block_size as usize;
        crate::mem::bulk_span(self, start, buf.len())?;
        for (i, chunk) in buf.chunks_exact_mut(bs).enumerate() {
            match &self.blocks[(start + i as u64) as usize] {
                Some(data) => chunk.copy_from_slice(data),
                None => chunk.fill(0),
            }
        }
        Ok(())
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let bs = self.block_size as usize;
        crate::mem::bulk_span(self, start, buf.len())?;
        for (i, chunk) in buf.chunks_exact(bs).enumerate() {
            let block = start + i as u64;
            if self.digest.is_some() {
                let old = self.contribution_of(block);
                if let Some(digest) = &mut self.digest {
                    digest.replace(old, block_contribution(block, chunk));
                }
            }
            if let Some(data) = self.blocks[block as usize].as_mut().and_then(Arc::get_mut) {
                data.copy_from_slice(chunk);
            } else {
                self.blocks[block as usize] = Some(Arc::from(chunk));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_device;
    use crate::MemDevice;

    #[test]
    fn reads_back_writes_and_zeroes() {
        let mut dev = CowDevice::new(512, 8);
        dev.write_block(3, &[9u8; 512]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![9u8; 512]);
        assert_eq!(dev.read_block_vec(0).unwrap(), vec![0u8; 512]);
        let mut buf = [0u8; 512];
        assert!(matches!(dev.read_block(8, &mut buf), Err(DeviceError::OutOfRange { .. })));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut dev = CowDevice::new(512, 4);
        dev.write_block(1, &[1u8; 512]).unwrap();
        let snap = dev.snapshot();
        dev.write_block(1, &[2u8; 512]).unwrap();
        dev.write_block(2, &[3u8; 512]).unwrap();
        assert_eq!(snap.read_block_vec(1).unwrap(), vec![1u8; 512]);
        assert_eq!(snap.read_block_vec(2).unwrap(), vec![0u8; 512]);
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![2u8; 512]);
    }

    #[test]
    fn snapshot_shares_storage() {
        let mut dev = CowDevice::new(512, 1024);
        for i in 0..64u64 {
            dev.write_block(i, &[i as u8; 512]).unwrap();
        }
        let snap = dev.snapshot();
        // same allocation count, no data copied
        assert_eq!(snap.populated_blocks(), 64);
        assert!(Arc::ptr_eq(
            dev.blocks[5].as_ref().unwrap(),
            snap.blocks[5].as_ref().unwrap()
        ));
    }

    #[test]
    fn incremental_digest_matches_full_scan() {
        let mut dev = CowDevice::new(512, 16);
        assert_eq!(dev.digest(), Some(digest_device(&dev).unwrap()));
        dev.write_block(2, &[7u8; 512]).unwrap();
        dev.write_block(9, &[8u8; 512]).unwrap();
        dev.write_block(2, &[1u8; 512]).unwrap(); // overwrite
        dev.write_block(4, &[0u8; 512]).unwrap(); // explicit zeroes
        assert_eq!(dev.digest(), Some(digest_device(&dev).unwrap()));
    }

    #[test]
    fn digest_agrees_with_mem_device_of_same_content() {
        let mut mem = MemDevice::new(512, 12);
        mem.write_block(0, &[5u8; 512]).unwrap();
        mem.write_block(7, &[6u8; 512]).unwrap();
        let cow = CowDevice::from_device(&mem).unwrap();
        assert_eq!(cow.digest(), Some(digest_device(&mem).unwrap()));
        assert_eq!(cow.read_block_vec(7).unwrap(), mem.read_block_vec(7).unwrap());
    }

    #[test]
    fn untracked_device_still_reads_and_writes_correctly() {
        let mut dev = CowDevice::new(512, 8);
        dev.write_block(1, &[3u8; 512]).unwrap();
        let frozen = dev.digest().unwrap();
        dev.stop_digest_tracking();
        assert_eq!(dev.digest(), None);
        dev.write_block(1, &[4u8; 512]).unwrap();
        dev.write_block(5, &[5u8; 512]).unwrap();
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![4u8; 512]);
        // content moved on; the frozen digest describes the old state
        assert_ne!(frozen, digest_device(&dev).unwrap());
    }

    #[test]
    fn in_place_overwrite_does_not_disturb_snapshots() {
        let mut dev = CowDevice::new(512, 4);
        dev.write_block(0, &[1u8; 512]).unwrap();
        let snap = dev.snapshot();
        dev.write_block(0, &[2u8; 512]).unwrap(); // shared -> fresh alloc
        dev.write_block(0, &[3u8; 512]).unwrap(); // unique -> in place
        assert_eq!(snap.read_block_vec(0).unwrap(), vec![1u8; 512]);
        assert_eq!(dev.read_block_vec(0).unwrap(), vec![3u8; 512]);
        assert_eq!(dev.digest(), Some(digest_device(&dev).unwrap()));
    }

    #[test]
    fn from_device_keeps_zero_blocks_unallocated() {
        let mut mem = MemDevice::new(512, 64);
        mem.write_block(1, &[1u8; 512]).unwrap();
        mem.write_block(2, &[0u8; 512]).unwrap(); // written but all-zero
        let cow = CowDevice::from_device(&mem).unwrap();
        assert_eq!(cow.populated_blocks(), 1);
    }

    #[test]
    fn snapshots_of_identical_content_share_digest() {
        let mut a = CowDevice::new(512, 8);
        let mut b = CowDevice::new(512, 8);
        a.write_block(3, &[4u8; 512]).unwrap();
        b.write_block(3, &[9u8; 512]).unwrap();
        b.write_block(3, &[4u8; 512]).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert!(a.digest().is_some());
    }

    #[test]
    #[should_panic(expected = "block size must be non-zero")]
    fn zero_block_size_panics() {
        let _ = CowDevice::new(0, 8);
    }

    #[test]
    fn bulk_writes_keep_digest_and_isolation() {
        let mut dev = CowDevice::new(512, 8);
        let mut data = vec![0u8; 512 * 3];
        data[0] = 1;
        data[600] = 2;
        dev.write_blocks(2, &data).unwrap();
        assert_eq!(dev.digest(), Some(digest_device(&dev).unwrap()));
        let snap = dev.snapshot();
        dev.write_blocks(2, &vec![7u8; 512 * 3]).unwrap();
        let mut back = vec![0u8; 512 * 3];
        snap.read_blocks(2, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.digest(), Some(digest_device(&dev).unwrap()));
        assert!(matches!(dev.write_blocks(6, &data), Err(DeviceError::OutOfRange { .. })));
    }
}
