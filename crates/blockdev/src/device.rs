use crate::DeviceError;

/// A fixed-block-size random-access storage device.
///
/// All file-system images in this workspace are laid out on top of this
/// trait, mirroring how the real Ext4 utilities operate on block devices.
/// Implementations must be deterministic: the bytes read back from a block
/// are exactly the bytes last written to it (unless a fault-injecting
/// wrapper deliberately breaks that contract).
pub trait BlockDevice {
    /// Size of one block in bytes.
    fn block_size(&self) -> u32;

    /// Total number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Reads block `block` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] if `block >= num_blocks()` and
    /// [`DeviceError::BadBufferSize`] if `buf.len() != block_size()`.
    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError>;

    /// Writes `buf` to block `block`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] if `block >= num_blocks()`,
    /// [`DeviceError::BadBufferSize`] if `buf.len() != block_size()`, and
    /// [`DeviceError::ReadOnly`] if the device rejects writes.
    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError>;

    /// Flushes any buffered state to stable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage cannot be synced.
    fn flush(&mut self) -> Result<(), DeviceError> {
        Ok(())
    }

    /// Total capacity in bytes.
    fn size_bytes(&self) -> u64 {
        self.num_blocks() * u64::from(self.block_size())
    }

    /// Convenience: reads a whole block into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`BlockDevice::read_block`].
    fn read_block_vec(&self, block: u64) -> Result<Vec<u8>, DeviceError> {
        let mut buf = vec![0u8; self.block_size() as usize];
        self.read_block(block, &mut buf)?;
        Ok(buf)
    }

    /// Reads the consecutive blocks starting at `start` into `buf`, whose
    /// length must be a whole number of blocks. The default loops over
    /// [`BlockDevice::read_block`]; contiguous-storage devices override
    /// this with slice copies.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadBufferSize`] if `buf` is not a whole
    /// number of blocks, plus the per-block errors of
    /// [`BlockDevice::read_block`].
    fn read_blocks(&self, start: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        let bs = self.block_size() as usize;
        if !buf.len().is_multiple_of(bs) {
            return Err(DeviceError::BadBufferSize { got: buf.len(), expected: self.block_size() });
        }
        for (i, chunk) in buf.chunks_exact_mut(bs).enumerate() {
            self.read_block(start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Writes `buf` — a whole number of blocks — to the consecutive blocks
    /// starting at `start`. The default loops over
    /// [`BlockDevice::write_block`]; contiguous-storage devices override
    /// this with slice copies. Fault-injecting and recording wrappers keep
    /// the default so every block still passes through their per-block
    /// hooks.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadBufferSize`] if `buf` is not a whole
    /// number of blocks, plus the per-block errors of
    /// [`BlockDevice::write_block`].
    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let bs = self.block_size() as usize;
        if !buf.len().is_multiple_of(bs) {
            return Err(DeviceError::BadBufferSize { got: buf.len(), expected: self.block_size() });
        }
        for (i, chunk) in buf.chunks_exact(bs).enumerate() {
            self.write_block(start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Validates `block`/`buf` against the device geometry.
    ///
    /// # Errors
    ///
    /// Returns the same errors documented on [`BlockDevice::read_block`].
    fn check_access(&self, block: u64, buf_len: usize) -> Result<(), DeviceError> {
        if block >= self.num_blocks() {
            return Err(DeviceError::OutOfRange { block, num_blocks: self.num_blocks() });
        }
        if buf_len != self.block_size() as usize {
            return Err(DeviceError::BadBufferSize { got: buf_len, expected: self.block_size() });
        }
        Ok(())
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn block_size(&self) -> u32 {
        (**self).block_size()
    }
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        (**self).read_block(block, buf)
    }
    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        (**self).write_block(block, buf)
    }
    fn flush(&mut self) -> Result<(), DeviceError> {
        (**self).flush()
    }
    fn read_block_vec(&self, block: u64) -> Result<Vec<u8>, DeviceError> {
        (**self).read_block_vec(block)
    }
    fn read_blocks(&self, start: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        (**self).read_blocks(start, buf)
    }
    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<(), DeviceError> {
        (**self).write_blocks(start, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn size_bytes_is_product() {
        let dev = MemDevice::new(1024, 16);
        assert_eq!(dev.size_bytes(), 16 * 1024);
    }

    #[test]
    fn read_block_vec_round_trip() {
        let mut dev = MemDevice::new(512, 4);
        dev.write_block(2, &[7u8; 512]).unwrap();
        assert_eq!(dev.read_block_vec(2).unwrap(), vec![7u8; 512]);
    }

    #[test]
    fn boxed_device_delegates() {
        let mut dev: Box<dyn BlockDevice> = Box::new(MemDevice::new(512, 4));
        dev.write_block(1, &[3u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
        assert_eq!(dev.block_size(), 512);
        assert_eq!(dev.num_blocks(), 4);
        dev.flush().unwrap();
    }

    #[test]
    fn bulk_round_trip_and_geometry() {
        let mut dev = MemDevice::new(512, 8);
        let mut data = vec![0u8; 512 * 3];
        data[0] = 1;
        data[512] = 2;
        data[1024] = 3;
        dev.write_blocks(2, &data).unwrap();
        let mut back = vec![0u8; 512 * 3];
        dev.read_blocks(2, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.read_block_vec(3).unwrap()[0], 2);
        // not a whole number of blocks
        assert!(matches!(dev.write_blocks(0, &[0u8; 100]), Err(DeviceError::BadBufferSize { .. })));
        assert!(matches!(dev.read_blocks(0, &mut [0u8; 100]), Err(DeviceError::BadBufferSize { .. })));
        // runs past the end of the device
        assert!(matches!(dev.write_blocks(6, &data), Err(DeviceError::OutOfRange { .. })));
        let mut big = vec![0u8; 512 * 3];
        assert!(matches!(dev.read_blocks(6, &mut big), Err(DeviceError::OutOfRange { .. })));
    }

    #[test]
    fn boxed_device_forwards_bulk_ops() {
        let mut dev: Box<dyn BlockDevice> = Box::new(MemDevice::new(512, 4));
        dev.write_blocks(0, &[5u8; 1024]).unwrap();
        let mut back = vec![0u8; 1024];
        dev.read_blocks(0, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 5));
    }

    #[test]
    fn check_access_rejects_bad_geometry() {
        let dev = MemDevice::new(512, 4);
        assert!(matches!(dev.check_access(4, 512), Err(DeviceError::OutOfRange { .. })));
        assert!(matches!(dev.check_access(0, 100), Err(DeviceError::BadBufferSize { .. })));
        assert!(dev.check_access(3, 512).is_ok());
    }
}
