use std::collections::BTreeMap;

use crate::{BlockDevice, DeviceError};

/// A fault to inject at a particular point of the I/O stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail the n-th write (0-based, counted across the device lifetime).
    FailWrite(u64),
    /// Fail the n-th read.
    FailRead(u64),
    /// On the n-th write, persist only the first `bytes` bytes of the block
    /// (a torn write), then report success.
    TornWrite {
        /// Which write (0-based) to tear.
        nth: u64,
        /// How many bytes actually reach the medium.
        bytes: usize,
    },
    /// All reads of `block` return data with byte `offset` flipped to
    /// `value` (silent corruption).
    CorruptRead {
        /// The block whose reads are corrupted.
        block: u64,
        /// Byte offset within the block.
        offset: usize,
        /// Value the byte is replaced with.
        value: u8,
    },
    /// Every write at or after the n-th write fails (models a device that
    /// was yanked mid-workload). Once the fault has fired, the device is
    /// gone for good: all subsequent reads and flushes fail too, not just
    /// writes.
    DeviceGone(u64),
    /// Fail the n-th flush (0-based). Models a volatile write cache
    /// whose drain is interrupted — the barrier the file system relied
    /// on never happens.
    FailFlush(u64),
}

/// A schedule of [`InjectedFault`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: InjectedFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Returns the scheduled faults.
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }
}

/// Wraps another [`BlockDevice`] and injects faults per a [`FaultPlan`].
///
/// Used by the robustness portions of the test suite — e.g., checking that
/// `e2fsck` detects metadata damage left behind by a torn superblock write.
#[derive(Debug)]
pub struct FaultyDevice<D> {
    inner: D,
    plan: FaultPlan,
    reads: std::cell::Cell<u64>,
    writes: u64,
    flushes: u64,
    /// All corruptions aimed at a block, in plan order — a plan may
    /// schedule several `CorruptRead`s for the same block and each one
    /// applies (last-wins shadowing would silently drop faults).
    corrupt_reads: BTreeMap<u64, Vec<(usize, u8)>>,
    /// Latched once a `DeviceGone` fault fires: a yanked device fails
    /// every subsequent read, write and flush, not just writes.
    gone: std::cell::Cell<bool>,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Wraps `inner` with the fault schedule `plan`.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        let mut corrupt_reads: BTreeMap<u64, Vec<(usize, u8)>> = BTreeMap::new();
        for f in plan.faults() {
            if let InjectedFault::CorruptRead { block, offset, value } = *f {
                corrupt_reads.entry(block).or_default().push((offset, value));
            }
        }
        FaultyDevice {
            inner,
            plan,
            reads: std::cell::Cell::new(0),
            writes: 0,
            flushes: 0,
            corrupt_reads,
            gone: std::cell::Cell::new(false),
        }
    }

    /// Unwraps the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Number of reads observed so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Number of writes observed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of flushes observed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Faults scheduled for one exact write take precedence over the
    /// open-ended `DeviceGone` range, regardless of plan order —
    /// otherwise `DeviceGone(n)` would shadow a `TornWrite`/`FailWrite`
    /// aimed at the same write and the plan's meaning would depend on
    /// insertion order.
    fn write_fault(&self, nth: u64) -> Option<&InjectedFault> {
        self.plan
            .faults()
            .iter()
            .find(|f| match f {
                InjectedFault::FailWrite(n) | InjectedFault::TornWrite { nth: n, .. } => *n == nth,
                _ => false,
            })
            .or_else(|| {
                self.plan
                    .faults()
                    .iter()
                    .find(|f| matches!(f, InjectedFault::DeviceGone(n) if nth >= *n))
            })
    }

    fn read_fault(&self, nth: u64) -> bool {
        self.plan.faults().iter().any(|f| matches!(f, InjectedFault::FailRead(n) if *n == nth))
    }

    fn check_gone(&self) -> Result<(), DeviceError> {
        if self.gone.get() {
            return Err(DeviceError::Io("injected device-gone failure".to_string()));
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        self.check_gone()?;
        let nth = self.reads.get();
        self.reads.set(nth + 1);
        if self.read_fault(nth) {
            return Err(DeviceError::Io(format!("injected read failure at read #{nth}")));
        }
        self.inner.read_block(block, buf)?;
        if let Some(corruptions) = self.corrupt_reads.get(&block) {
            for &(offset, value) in corruptions {
                // A wrapped offset would silently corrupt the wrong byte;
                // a misconfigured plan must surface, not hide.
                let len = buf.len();
                let byte = buf.get_mut(offset).ok_or_else(|| {
                    DeviceError::Io(format!(
                        "corrupt-read offset {offset} out of range for {len}-byte block"
                    ))
                })?;
                *byte = value;
            }
        }
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        self.check_gone()?;
        let nth = self.writes;
        self.writes += 1;
        match self.write_fault(nth) {
            Some(InjectedFault::FailWrite(_)) => {
                Err(DeviceError::Io(format!("injected write failure at write #{nth}")))
            }
            Some(InjectedFault::DeviceGone(_)) => {
                self.gone.set(true);
                Err(DeviceError::Io("injected device-gone failure".to_string()))
            }
            Some(InjectedFault::TornWrite { bytes, .. }) => {
                let bytes = (*bytes).min(buf.len());
                let mut old = vec![0u8; buf.len()];
                self.inner.read_block(block, &mut old)?;
                let mut torn = old;
                torn[..bytes].copy_from_slice(&buf[..bytes]);
                self.inner.write_block(block, &torn)
            }
            _ => self.inner.write_block(block, buf),
        }
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.check_gone()?;
        let nth = self.flushes;
        self.flushes += 1;
        let failed = self
            .plan
            .faults()
            .iter()
            .any(|f| matches!(f, InjectedFault::FailFlush(n) if *n == nth));
        if failed {
            return Err(DeviceError::Io(format!("injected flush failure at flush #{nth}")));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn no_faults_passthrough() {
        let plan = FaultPlan::new();
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(0, &[1u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn fail_write_fires_once() {
        let plan = FaultPlan::new().with(InjectedFault::FailWrite(1));
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        assert!(dev.write_block(0, &[1u8; 512]).is_ok());
        assert!(dev.write_block(1, &[1u8; 512]).is_err());
        assert!(dev.write_block(2, &[1u8; 512]).is_ok());
        assert_eq!(dev.writes(), 3);
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let plan = FaultPlan::new().with(InjectedFault::TornWrite { nth: 1, bytes: 4 });
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(0, &[0xAAu8; 512]).unwrap();
        dev.write_block(0, &[0xBBu8; 512]).unwrap(); // torn
        let mut buf = [0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[0xBB; 4]);
        assert_eq!(buf[4], 0xAA);
    }

    #[test]
    fn device_gone_kills_all_later_writes() {
        let plan = FaultPlan::new().with(InjectedFault::DeviceGone(2));
        let mut dev = FaultyDevice::new(MemDevice::new(512, 8), plan);
        assert!(dev.write_block(0, &[0u8; 512]).is_ok());
        assert!(dev.write_block(1, &[0u8; 512]).is_ok());
        assert!(dev.write_block(2, &[0u8; 512]).is_err());
        assert!(dev.write_block(3, &[0u8; 512]).is_err());
    }

    #[test]
    fn corrupt_read_flips_byte() {
        let plan = FaultPlan::new().with(InjectedFault::CorruptRead { block: 1, offset: 3, value: 0x77 });
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(1, &[0u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[3], 0x77);
        assert_eq!(buf[2], 0);
    }

    #[test]
    fn corrupt_read_offset_out_of_range_errors() {
        let plan =
            FaultPlan::new().with(InjectedFault::CorruptRead { block: 1, offset: 512, value: 1 });
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(1, &[0u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        let err = dev.read_block(1, &mut buf).unwrap_err();
        assert!(matches!(err, DeviceError::Io(ref m) if m.contains("out of range")), "{err}");
        // the buffer is untouched rather than corrupted at a wrapped offset
        assert_eq!(buf, [0u8; 512]);
    }

    #[test]
    fn torn_write_beats_device_gone_regardless_of_plan_order() {
        for plan in [
            FaultPlan::new()
                .with(InjectedFault::DeviceGone(1))
                .with(InjectedFault::TornWrite { nth: 1, bytes: 4 }),
            FaultPlan::new()
                .with(InjectedFault::TornWrite { nth: 1, bytes: 4 })
                .with(InjectedFault::DeviceGone(1)),
        ] {
            let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
            dev.write_block(0, &[0xAAu8; 512]).unwrap();
            // write 1 is torn (and reports success), not killed by DeviceGone
            dev.write_block(0, &[0xBBu8; 512]).unwrap();
            let mut buf = [0u8; 512];
            dev.read_block(0, &mut buf).unwrap();
            assert_eq!(&buf[..4], &[0xBB; 4]);
            assert_eq!(buf[4], 0xAA);
            // past the torn write, DeviceGone takes over
            assert!(dev.write_block(0, &[0xCCu8; 512]).is_err());
        }
    }

    #[test]
    fn fail_write_beats_device_gone_at_same_nth() {
        for plan in [
            FaultPlan::new()
                .with(InjectedFault::DeviceGone(0))
                .with(InjectedFault::FailWrite(0)),
            FaultPlan::new()
                .with(InjectedFault::FailWrite(0))
                .with(InjectedFault::DeviceGone(0)),
        ] {
            let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
            let err = dev.write_block(0, &[0u8; 512]).unwrap_err();
            assert!(
                matches!(err, DeviceError::Io(ref m) if m.contains("write failure at write #0")),
                "{err}"
            );
        }
    }

    #[test]
    fn fail_flush_fires_on_the_scheduled_flush_only() {
        let plan = FaultPlan::new().with(InjectedFault::FailFlush(1));
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        assert!(dev.flush().is_ok());
        assert!(dev.flush().is_err());
        assert!(dev.flush().is_ok());
        assert_eq!(dev.flushes(), 3);
    }

    #[test]
    fn duplicate_corrupt_reads_all_apply() {
        // Two corruptions aimed at the same block must both land; the old
        // last-wins map silently dropped the first one.
        let plan = FaultPlan::new()
            .with(InjectedFault::CorruptRead { block: 1, offset: 3, value: 0x77 })
            .with(InjectedFault::CorruptRead { block: 1, offset: 9, value: 0x99 });
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(1, &[0u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[3], 0x77);
        assert_eq!(buf[9], 0x99);
    }

    #[test]
    fn duplicate_corrupt_reads_same_offset_last_wins_in_plan_order() {
        let plan = FaultPlan::new()
            .with(InjectedFault::CorruptRead { block: 1, offset: 3, value: 0x11 })
            .with(InjectedFault::CorruptRead { block: 1, offset: 3, value: 0x22 });
        let mut dev = FaultyDevice::new(MemDevice::new(512, 4), plan);
        dev.write_block(1, &[0u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(1, &mut buf).unwrap();
        // both apply, in plan order, so the later fault is what sticks
        assert_eq!(buf[3], 0x22);
    }

    #[test]
    fn device_gone_fails_all_later_io() {
        let plan = FaultPlan::new().with(InjectedFault::DeviceGone(1));
        let mut dev = FaultyDevice::new(MemDevice::new(512, 8), plan);
        let mut buf = [0u8; 512];
        // before the fault fires the device behaves normally
        assert!(dev.write_block(0, &[7u8; 512]).is_ok());
        assert!(dev.read_block(0, &mut buf).is_ok());
        assert!(dev.flush().is_ok());
        // the yank: write #1 fails and latches the gone state
        assert!(dev.write_block(1, &[7u8; 512]).is_err());
        // ...after which every kind of I/O fails
        assert!(dev.read_block(0, &mut buf).is_err());
        assert!(dev.flush().is_err());
        assert!(dev.write_block(2, &[7u8; 512]).is_err());
    }

    #[test]
    fn device_gone_does_not_fire_until_the_scheduled_write() {
        // reads and flushes before the n-th write are unaffected: the
        // device is yanked at a point in the write stream, not at t=0
        let plan = FaultPlan::new().with(InjectedFault::DeviceGone(2));
        let mut dev = FaultyDevice::new(MemDevice::new(512, 8), plan);
        let mut buf = [0u8; 512];
        assert!(dev.read_block(0, &mut buf).is_ok());
        assert!(dev.flush().is_ok());
        assert!(dev.write_block(0, &[1u8; 512]).is_ok());
        assert!(dev.read_block(0, &mut buf).is_ok());
        assert!(dev.write_block(1, &[1u8; 512]).is_ok());
        assert!(dev.write_block(2, &[1u8; 512]).is_err());
        assert!(dev.read_block(0, &mut buf).is_err());
    }

    #[test]
    fn into_inner_returns_device() {
        let dev = FaultyDevice::new(MemDevice::new(512, 4), FaultPlan::new());
        let inner = dev.into_inner();
        assert_eq!(inner.num_blocks(), 4);
    }
}
