//! A recording wrapper that captures the write/flush stream of a
//! workload as a replayable I/O trace.
//!
//! Crash-consistency exploration (the `crashsim` crate) needs to ask:
//! "what would the disk look like if power failed after the k-th
//! write?" [`RecordingDevice`] answers by logging every write (with
//! the overwritten pre-image) and every flush barrier. The resulting
//! [`IoTrace`] can re-create the device state at any write boundary,
//! in either direction:
//!
//! * [`IoTrace::apply_prefix`] replays writes onto the pre-workload
//!   image,
//! * [`IoTrace::undo_suffix`] rolls writes back from the final image
//!   using the recorded pre-images.

use serde::{Deserialize, Serialize};

use crate::{BlockDevice, DeviceError};

/// One event of a recorded I/O stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoEvent {
    /// A block write: the data that was written and the bytes it
    /// overwrote.
    Write {
        /// Target block number.
        block: u64,
        /// Bytes written.
        data: Vec<u8>,
        /// Bytes the write replaced (for rollback).
        pre: Vec<u8>,
    },
    /// A flush barrier: every earlier write is durable past this point.
    Flush,
}

/// A replayable trace of a workload's writes and flush barriers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoTrace {
    events: Vec<IoEvent>,
}

impl IoTrace {
    /// The recorded events, in issue order.
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of recorded writes.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, IoEvent::Write { .. })).count()
    }

    /// Number of recorded flush barriers.
    pub fn flush_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, IoEvent::Flush)).count()
    }

    /// Event indices of the writes, in order.
    pub fn write_indices(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, IoEvent::Write { .. }).then_some(i))
            .collect()
    }

    /// Index (into [`Self::events`]) one past the last flush barrier,
    /// or 0 if no flush was recorded. Writes before this point are
    /// durable even on a device with a volatile cache.
    pub fn durable_boundary(&self) -> usize {
        self.events
            .iter()
            .rposition(|e| matches!(e, IoEvent::Flush))
            .map_or(0, |i| i + 1)
    }

    /// Replays the first `prefix_writes` writes onto `dev` (which must
    /// hold the pre-workload image).
    ///
    /// # Errors
    ///
    /// Propagates write errors from `dev`.
    pub fn apply_prefix<D: BlockDevice>(
        &self,
        dev: &mut D,
        prefix_writes: usize,
    ) -> Result<(), DeviceError> {
        let mut done = 0;
        for event in &self.events {
            if done == prefix_writes {
                break;
            }
            if let IoEvent::Write { block, data, .. } = event {
                dev.write_block(*block, data)?;
                done += 1;
            }
        }
        Ok(())
    }

    /// Rolls back every write after the first `keep_writes` on `dev`
    /// (which must hold the post-workload image), restoring the
    /// recorded pre-images in reverse order.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `dev`.
    pub fn undo_suffix<D: BlockDevice>(
        &self,
        dev: &mut D,
        keep_writes: usize,
    ) -> Result<(), DeviceError> {
        let mut seen = 0;
        let mut undo = Vec::new();
        for event in &self.events {
            if let IoEvent::Write { block, pre, .. } = event {
                if seen >= keep_writes {
                    undo.push((*block, pre));
                }
                seen += 1;
            }
        }
        for (block, pre) in undo.into_iter().rev() {
            dev.write_block(block, pre)?;
        }
        Ok(())
    }
}

/// Wraps a [`BlockDevice`] and records its write/flush stream.
#[derive(Debug)]
pub struct RecordingDevice<D> {
    inner: D,
    trace: IoTrace,
}

impl<D: BlockDevice> RecordingDevice<D> {
    /// Starts recording on top of `inner` (whose current contents are
    /// the trace's implicit pre-workload image).
    pub fn new(inner: D) -> Self {
        RecordingDevice { inner, trace: IoTrace::default() }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &IoTrace {
        &self.trace
    }

    /// Stops recording, returning the device and the trace.
    pub fn into_parts(self) -> (D, IoTrace) {
        (self.inner, self.trace)
    }
}

impl<D: BlockDevice> BlockDevice for RecordingDevice<D> {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.inner.read_block(block, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let mut pre = vec![0u8; buf.len()];
        self.inner.read_block(block, &mut pre)?;
        self.inner.write_block(block, buf)?;
        self.trace.events.push(IoEvent::Write { block, data: buf.to_vec(), pre });
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.inner.flush()?;
        // Collapse runs of flushes: a second barrier with no writes in
        // between adds no ordering information.
        if !matches!(self.trace.events.last(), Some(IoEvent::Flush) | None) {
            self.trace.events.push(IoEvent::Flush);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn block(byte: u8) -> Vec<u8> {
        vec![byte; 512]
    }

    fn record_workload() -> (MemDevice, IoTrace, MemDevice) {
        let pre = MemDevice::new(512, 8);
        let mut rec = RecordingDevice::new(pre.clone());
        rec.write_block(0, &block(0x11)).unwrap();
        rec.write_block(1, &block(0x22)).unwrap();
        rec.flush().unwrap();
        rec.write_block(0, &block(0x33)).unwrap();
        let (post, trace) = rec.into_parts();
        (pre, trace, post)
    }

    #[test]
    fn trace_counts_writes_and_flushes() {
        let (_, trace, _) = record_workload();
        assert_eq!(trace.write_count(), 3);
        assert_eq!(trace.flush_count(), 1);
        assert_eq!(trace.write_indices(), vec![0, 1, 3]);
        assert_eq!(trace.durable_boundary(), 3);
    }

    #[test]
    fn redundant_flushes_collapse() {
        let mut rec = RecordingDevice::new(MemDevice::new(512, 4));
        rec.flush().unwrap(); // leading flush: no writes to order
        rec.write_block(0, &block(1)).unwrap();
        rec.flush().unwrap();
        rec.flush().unwrap();
        let (_, trace) = rec.into_parts();
        assert_eq!(trace.flush_count(), 1);
    }

    #[test]
    fn apply_prefix_reaches_every_intermediate_state() {
        let (pre, trace, post) = record_workload();
        // prefix 0 = untouched pre-image
        let mut dev = pre.clone();
        trace.apply_prefix(&mut dev, 0).unwrap();
        assert_eq!(dev.read_block_vec(0).unwrap(), block(0));
        // prefix 2 = first two writes
        let mut dev = pre.clone();
        trace.apply_prefix(&mut dev, 2).unwrap();
        assert_eq!(dev.read_block_vec(0).unwrap(), block(0x11));
        assert_eq!(dev.read_block_vec(1).unwrap(), block(0x22));
        // full prefix = final image
        let mut dev = pre.clone();
        trace.apply_prefix(&mut dev, trace.write_count()).unwrap();
        assert_eq!(dev.read_block_vec(0).unwrap(), post.read_block_vec(0).unwrap());
        assert_eq!(dev.read_block_vec(1).unwrap(), post.read_block_vec(1).unwrap());
    }

    #[test]
    fn undo_suffix_inverts_apply_prefix() {
        let (pre, trace, post) = record_workload();
        for keep in 0..=trace.write_count() {
            let mut rolled = post.clone();
            trace.undo_suffix(&mut rolled, keep).unwrap();
            let mut replayed = pre.clone();
            trace.apply_prefix(&mut replayed, keep).unwrap();
            for b in 0..8u64 {
                assert_eq!(
                    rolled.read_block_vec(b).unwrap(),
                    replayed.read_block_vec(b).unwrap(),
                    "keep={keep} block={b}"
                );
            }
        }
    }

    #[test]
    fn overlapping_writes_roll_back_in_reverse_order() {
        let mut rec = RecordingDevice::new(MemDevice::new(512, 2));
        rec.write_block(0, &block(1)).unwrap();
        rec.write_block(0, &block(2)).unwrap();
        rec.write_block(0, &block(3)).unwrap();
        let (mut dev, trace) = rec.into_parts();
        trace.undo_suffix(&mut dev, 1).unwrap();
        assert_eq!(dev.read_block_vec(0).unwrap(), block(1));
    }

    #[test]
    fn trace_serializes_and_round_trips() {
        let (_, trace, _) = record_workload();
        let json = serde_json::to_string(&trace).unwrap();
        let back: IoTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
