use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::{BlockDevice, DeviceError};

/// A block device backed by a regular file, so that file-system images can
/// be persisted across process runs (like a loopback device).
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    block_size: u32,
    num_blocks: u64,
}

impl FileDevice {
    /// Creates (or truncates) an image file of `num_blocks * block_size`
    /// bytes at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Os`] if the file cannot be created or sized.
    pub fn create<P: AsRef<Path>>(path: P, block_size: u32, num_blocks: u64) -> Result<Self, DeviceError> {
        assert!(block_size > 0, "block size must be non-zero");
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.set_len(num_blocks * u64::from(block_size))?;
        Ok(FileDevice { file, block_size, num_blocks })
    }

    /// Opens an existing image file; its length must be a multiple of
    /// `block_size`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Os`] on open failure and [`DeviceError::Io`]
    /// if the file length is not block-aligned.
    pub fn open<P: AsRef<Path>>(path: P, block_size: u32) -> Result<Self, DeviceError> {
        assert!(block_size > 0, "block size must be non-zero");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % u64::from(block_size) != 0 {
            return Err(DeviceError::Io(format!(
                "image length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(FileDevice { file, block_size, num_blocks: len / u64::from(block_size) })
    }

    /// Grows or shrinks the backing file to `num_blocks`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Os`] if the file cannot be resized.
    pub fn resize(&mut self, num_blocks: u64) -> Result<(), DeviceError> {
        self.file.set_len(num_blocks * u64::from(self.block_size))?;
        self.num_blocks = num_blocks;
        Ok(())
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        let mut f = &self.file;
        f.seek(SeekFrom::Start(block * u64::from(self.block_size)))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        self.file.seek(SeekFrom::Start(block * u64::from(self.block_size)))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("blockdev-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_read() {
        let path = tmp_path("rw.img");
        {
            let mut dev = FileDevice::create(&path, 512, 8).unwrap();
            dev.write_block(5, &[0xAB; 512]).unwrap();
            dev.flush().unwrap();
        }
        let dev = FileDevice::open(&path, 512).unwrap();
        assert_eq!(dev.num_blocks(), 8);
        let mut buf = [0u8; 512];
        dev.read_block(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xAB));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_unaligned() {
        let path = tmp_path("unaligned.img");
        std::fs::write(&path, vec![0u8; 1000]).unwrap();
        assert!(matches!(FileDevice::open(&path, 512), Err(DeviceError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resize_extends_file() {
        let path = tmp_path("resize.img");
        let mut dev = FileDevice::create(&path, 512, 2).unwrap();
        dev.resize(10).unwrap();
        assert_eq!(dev.num_blocks(), 10);
        dev.write_block(9, &[1u8; 512]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let path = tmp_path("range.img");
        let dev = FileDevice::create(&path, 512, 2).unwrap();
        let mut buf = [0u8; 512];
        assert!(dev.read_block(2, &mut buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
