use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by block-device operations.
#[derive(Debug)]
pub enum DeviceError {
    /// A block index was at or past the end of the device.
    OutOfRange {
        /// The offending block index.
        block: u64,
        /// Total number of blocks on the device.
        num_blocks: u64,
    },
    /// A buffer did not match the device block size.
    BadBufferSize {
        /// The buffer length supplied by the caller.
        got: usize,
        /// The device block size.
        expected: u32,
    },
    /// An injected or real I/O error.
    Io(String),
    /// The device (or wrapper) rejected the operation because it is
    /// read-only.
    ReadOnly,
    /// Underlying OS-level I/O failure (file-backed devices).
    Os(io::Error),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfRange { block, num_blocks } => {
                write!(f, "block {block} out of range (device has {num_blocks} blocks)")
            }
            DeviceError::BadBufferSize { got, expected } => {
                write!(f, "buffer length {got} does not match block size {expected}")
            }
            DeviceError::Io(msg) => write!(f, "i/o error: {msg}"),
            DeviceError::ReadOnly => write!(f, "device is read-only"),
            DeviceError::Os(e) => write!(f, "os error: {e}"),
        }
    }
}

impl Error for DeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeviceError::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DeviceError {
    fn from(e: io::Error) -> Self {
        DeviceError::Os(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_range() {
        let e = DeviceError::OutOfRange { block: 9, num_blocks: 8 };
        assert_eq!(e.to_string(), "block 9 out of range (device has 8 blocks)");
    }

    #[test]
    fn display_bad_buffer() {
        let e = DeviceError::BadBufferSize { got: 512, expected: 4096 };
        assert!(e.to_string().contains("512"));
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn from_io_error_keeps_source() {
        let e: DeviceError = io::Error::other("boom").into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
