use std::cell::Cell;

use crate::{BlockDevice, DeviceError};

/// Cumulative I/O counters collected by [`StatsDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of block reads issued.
    pub reads: u64,
    /// Number of block writes issued.
    pub writes: u64,
    /// Number of flushes issued.
    pub flushes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Number of bulk [`BlockDevice::read_blocks`] calls (their blocks
    /// are also counted into `reads`).
    pub bulk_reads: u64,
    /// Number of bulk [`BlockDevice::write_blocks`] calls (their blocks
    /// are also counted into `writes`).
    pub bulk_writes: u64,
    /// Number of per-read buffer allocations via
    /// [`BlockDevice::read_block_vec`].
    pub vec_allocs: u64,
}

impl IoStats {
    /// Total I/O operations (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Wraps a [`BlockDevice`] and counts every operation.
///
/// The benchmark harness uses this to report I/O amplification of the
/// utilities (e.g., blocks touched by `resize2fs` as a function of the size
/// delta).
#[derive(Debug)]
pub struct StatsDevice<D> {
    inner: D,
    reads: Cell<u64>,
    bytes_read: Cell<u64>,
    bulk_reads: Cell<u64>,
    vec_allocs: Cell<u64>,
    writes: u64,
    bytes_written: u64,
    bulk_writes: u64,
    flushes: u64,
}

impl<D: BlockDevice> StatsDevice<D> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: D) -> Self {
        StatsDevice {
            inner,
            reads: Cell::new(0),
            bytes_read: Cell::new(0),
            bulk_reads: Cell::new(0),
            vec_allocs: Cell::new(0),
            writes: 0,
            bytes_written: 0,
            bulk_writes: 0,
            flushes: 0,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.get(),
            writes: self.writes,
            flushes: self.flushes,
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written,
            bulk_reads: self.bulk_reads.get(),
            bulk_writes: self.bulk_writes,
            vec_allocs: self.vec_allocs.get(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.reads.set(0);
        self.bytes_read.set(0);
        self.bulk_reads.set(0);
        self.vec_allocs.set(0);
        self.writes = 0;
        self.bytes_written = 0;
        self.bulk_writes = 0;
        self.flushes = 0;
    }

    /// Unwraps the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Shared access to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for StatsDevice<D> {
    fn block_size(&self) -> u32 {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.inner.read_block(block, buf)?;
        self.reads.set(self.reads.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + buf.len() as u64);
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.inner.write_block(block, buf)?;
        self.writes += 1;
        self.bytes_written += buf.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.inner.flush()?;
        self.flushes += 1;
        Ok(())
    }

    fn read_block_vec(&self, block: u64) -> Result<Vec<u8>, DeviceError> {
        let buf = self.inner.read_block_vec(block)?;
        self.reads.set(self.reads.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + buf.len() as u64);
        self.vec_allocs.set(self.vec_allocs.get() + 1);
        Ok(buf)
    }

    fn read_blocks(&self, start: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.inner.read_blocks(start, buf)?;
        let blocks = buf.len() as u64 / u64::from(self.inner.block_size());
        self.reads.set(self.reads.get() + blocks);
        self.bytes_read.set(self.bytes_read.get() + buf.len() as u64);
        self.bulk_reads.set(self.bulk_reads.get() + 1);
        Ok(())
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.inner.write_blocks(start, buf)?;
        self.writes += buf.len() as u64 / u64::from(self.inner.block_size());
        self.bytes_written += buf.len() as u64;
        self.bulk_writes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn counters_track_operations() {
        let mut dev = StatsDevice::new(MemDevice::new(512, 8));
        dev.write_block(0, &[0u8; 512]).unwrap();
        dev.write_block(1, &[0u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        dev.flush().unwrap();
        let s = dev.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_read, 512);
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn failed_ops_not_counted() {
        let mut dev = StatsDevice::new(MemDevice::new(512, 8));
        let mut buf = [0u8; 512];
        assert!(dev.read_block(99, &mut buf).is_err());
        assert!(dev.write_block(99, &[0u8; 512]).is_err());
        assert_eq!(dev.stats().total_ops(), 0);
    }

    #[test]
    fn bulk_and_vec_counters() {
        let mut dev = StatsDevice::new(MemDevice::new(512, 8));
        dev.write_blocks(0, &[1u8; 512 * 3]).unwrap();
        let mut buf = vec![0u8; 512 * 2];
        dev.read_blocks(1, &mut buf).unwrap();
        let _ = dev.read_block_vec(0).unwrap();
        let s = dev.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.bulk_writes, 1);
        assert_eq!(s.reads, 3); // 2 bulk + 1 vec
        assert_eq!(s.bulk_reads, 1);
        assert_eq!(s.vec_allocs, 1);
        assert_eq!(s.bytes_written, 512 * 3);
        assert_eq!(s.bytes_read, 512 * 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut dev = StatsDevice::new(MemDevice::new(512, 8));
        dev.write_block(0, &[0u8; 512]).unwrap();
        dev.reset();
        assert_eq!(dev.stats(), IoStats::default());
    }
}
