//! Stable content digests of whole device images.
//!
//! The crash explorer materialises thousands of post-crash images per
//! workload, and many of them — torn-write and volatile-cache variants
//! especially — collapse to byte-identical contents. [`ImageDigest`]
//! gives every image a cheap identity so classification verdicts can be
//! memoised: it is the (wrapping) sum over all blocks of a per-block
//! FNV-1a contribution that mixes in the block number. Summing makes
//! the digest *incrementally maintainable*: overwriting one block only
//! needs the old and new contribution of that block, not a rescan
//! ([`ImageDigest::replace`]). Two independently seeded 64-bit streams
//! are combined so accidental collisions need both sums to agree.
//!
//! The hasher is fixed and deterministic — no per-process seeds, no
//! randomised state — so digests are comparable across runs, threads
//! and device implementations.

use crate::{BlockDevice, DeviceError};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Standard FNV-1a offset basis: the first digest stream.
const SEED_A: u64 = 0xcbf2_9ce4_8422_2325;
/// An independent second basis (the 64-bit golden ratio), so a
/// collision must defeat two unrelated streams at once.
const SEED_B: u64 = 0x9e37_79b9_7f4a_7c15;

/// Content identity of one device image (two summed FNV-1a streams).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ImageDigest {
    /// Stream seeded with the FNV-1a offset basis.
    pub a: u64,
    /// Stream seeded with the alternate basis.
    pub b: u64,
}

/// The digest contribution of a single block's content.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockContribution {
    a: u64,
    b: u64,
}

fn fnv1a(seed: u64, block: u64, data: &[u8]) -> u64 {
    let mut h = seed;
    for byte in block.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for &byte in data {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// `FNV_PRIME.pow(n)` with wrapping arithmetic (square-and-multiply).
fn fnv_prime_pow(mut n: usize) -> u64 {
    let mut base = FNV_PRIME;
    let mut acc = 1u64;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        n >>= 1;
    }
    acc
}

/// The contribution of block `block` holding `data`.
pub fn block_contribution(block: u64, data: &[u8]) -> BlockContribution {
    BlockContribution { a: fnv1a(SEED_A, block, data), b: fnv1a(SEED_B, block, data) }
}

/// The contribution of an all-zero block of `block_size` bytes.
///
/// FNV-1a over a zero byte reduces to one multiply by the prime, so a
/// zero block's contribution is the index prefix hash times
/// `prime^block_size` — O(1) instead of hashing `block_size` zeroes.
/// This keeps digesting sparse images cheap.
pub fn zero_block_contribution(block: u64, block_size: u32) -> BlockContribution {
    let tail = fnv_prime_pow(block_size as usize);
    BlockContribution {
        a: fnv1a(SEED_A, block, &[]).wrapping_mul(tail),
        b: fnv1a(SEED_B, block, &[]).wrapping_mul(tail),
    }
}

impl ImageDigest {
    /// Digests an arbitrary byte string through both streams.
    ///
    /// Not an image digest at all — this turns any canonical identity
    /// (a configuration state key, a workload signature) into the same
    /// two-stream 128-bit shape, so consumers like the ConBugCk fuzz
    /// campaign can key a [`crate::VerdictStore`] by non-image content
    /// without inventing a second key type.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut a = SEED_A;
        let mut b = SEED_B;
        for &byte in bytes {
            a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            b = (b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        ImageDigest { a, b }
    }

    /// Adds one block's contribution.
    pub fn add(&mut self, c: BlockContribution) {
        self.a = self.a.wrapping_add(c.a);
        self.b = self.b.wrapping_add(c.b);
    }

    /// Removes one block's contribution.
    pub fn remove(&mut self, c: BlockContribution) {
        self.a = self.a.wrapping_sub(c.a);
        self.b = self.b.wrapping_sub(c.b);
    }

    /// Swaps a block's old contribution for its new one (the
    /// incremental update applied on every overwrite).
    pub fn replace(&mut self, old: BlockContribution, new: BlockContribution) {
        self.remove(old);
        self.add(new);
    }
}

/// Digests the full logical content of `dev` (unwritten blocks count as
/// zero-filled, exactly as they read back).
///
/// # Errors
///
/// Propagates read errors from `dev`; an in-range scan of a healthy
/// device cannot fail.
pub fn digest_device<D: BlockDevice>(dev: &D) -> Result<ImageDigest, DeviceError> {
    let mut digest = ImageDigest::default();
    let mut buf = vec![0u8; dev.block_size() as usize];
    for block in 0..dev.num_blocks() {
        dev.read_block(block, &mut buf)?;
        if buf.iter().all(|&b| b == 0) {
            digest.add(zero_block_contribution(block, dev.block_size()));
        } else {
            digest.add(block_contribution(block, &buf));
        }
    }
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn zero_contribution_matches_hashed_zeroes() {
        let zeroes = vec![0u8; 512];
        for block in [0u64, 1, 17, 8192] {
            assert_eq!(zero_block_contribution(block, 512), block_contribution(block, &zeroes));
        }
    }

    #[test]
    fn digest_depends_on_block_position() {
        let data = [7u8; 512];
        assert_ne!(block_contribution(0, &data), block_contribution(1, &data));
    }

    #[test]
    fn incremental_replace_matches_rescan() {
        let mut dev = MemDevice::new(512, 16);
        dev.write_block(3, &[1u8; 512]).unwrap();
        let mut digest = digest_device(&dev).unwrap();
        // overwrite block 3 and patch the digest incrementally
        let old = block_contribution(3, &[1u8; 512]);
        let new = block_contribution(3, &[2u8; 512]);
        dev.write_block(3, &[2u8; 512]).unwrap();
        digest.replace(old, new);
        assert_eq!(digest, digest_device(&dev).unwrap());
    }

    #[test]
    fn identical_content_identical_digest() {
        let mut a = MemDevice::new(512, 8);
        let mut b = MemDevice::new(512, 8);
        // b reaches the same content through a different write history
        a.write_block(2, &[9u8; 512]).unwrap();
        b.write_block(2, &[1u8; 512]).unwrap();
        b.write_block(5, &[3u8; 512]).unwrap();
        b.write_block(2, &[9u8; 512]).unwrap();
        b.write_block(5, &[0u8; 512]).unwrap();
        assert_eq!(digest_device(&a).unwrap(), digest_device(&b).unwrap());
    }

    #[test]
    fn different_content_different_digest() {
        let mut a = MemDevice::new(512, 8);
        let b = MemDevice::new(512, 8);
        assert_eq!(digest_device(&a).unwrap(), digest_device(&b).unwrap());
        a.write_block(0, &[1u8; 512]).unwrap();
        assert_ne!(digest_device(&a).unwrap(), digest_device(&b).unwrap());
    }
}
