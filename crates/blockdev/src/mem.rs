use crate::{BlockDevice, DeviceError};

/// An in-memory block device.
///
/// Storage is allocated lazily per block, so creating a large sparse device
/// is cheap — only blocks that have been written consume memory. This is the
/// default substrate for tests, examples, and benchmarks.
#[derive(Debug, Clone)]
pub struct MemDevice {
    block_size: u32,
    blocks: Vec<Option<Box<[u8]>>>,
}

impl MemDevice {
    /// Creates a zero-filled device with `num_blocks` blocks of
    /// `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u32, num_blocks: u64) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        MemDevice { block_size, blocks: vec![None; num_blocks as usize] }
    }

    /// Grows (or shrinks) the device to `num_blocks`, zero-filling any new
    /// space. Used by resize experiments to model growing a partition.
    pub fn resize(&mut self, num_blocks: u64) {
        self.blocks.resize(num_blocks as usize, None);
    }

    /// Number of blocks that have actually been written (and so consume
    /// memory).
    pub fn populated_blocks(&self) -> u64 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u64
    }

    /// Directly corrupts a byte of a block, bypassing the write path.
    /// Used by fault-injection tests to model silent media corruption.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] for a bad block index.
    pub fn corrupt_byte(&mut self, block: u64, offset: usize, value: u8) -> Result<(), DeviceError> {
        let n = self.num_blocks();
        let slot = self
            .blocks
            .get_mut(block as usize)
            .ok_or(DeviceError::OutOfRange { block, num_blocks: n })?;
        let data = slot.get_or_insert_with(|| vec![0u8; self.block_size as usize].into_boxed_slice());
        data[offset % self.block_size as usize] = value;
        Ok(())
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        match &self.blocks[block as usize] {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.check_access(block, buf.len())?;
        match &mut self.blocks[block as usize] {
            // reuse the existing allocation instead of boxing every write
            Some(data) => data.copy_from_slice(buf),
            slot => *slot = Some(buf.into()),
        }
        Ok(())
    }

    fn read_blocks(&self, start: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        let bs = self.block_size as usize;
        let count = bulk_span(self, start, buf.len())?;
        for (i, chunk) in buf.chunks_exact_mut(bs).enumerate() {
            match &self.blocks[(start + i as u64) as usize] {
                Some(data) => chunk.copy_from_slice(data),
                None => chunk.fill(0),
            }
        }
        debug_assert_eq!(count, buf.len() as u64 / bs as u64);
        Ok(())
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let bs = self.block_size as usize;
        bulk_span(self, start, buf.len())?;
        for (i, chunk) in buf.chunks_exact(bs).enumerate() {
            match &mut self.blocks[(start + i as u64) as usize] {
                Some(data) => data.copy_from_slice(chunk),
                slot => *slot = Some(chunk.into()),
            }
        }
        Ok(())
    }
}

/// Validates a bulk span up front (whole-block buffer, fits the device)
/// and returns the block count.
pub(crate) fn bulk_span<D: BlockDevice + ?Sized>(
    dev: &D,
    start: u64,
    buf_len: usize,
) -> Result<u64, DeviceError> {
    let bs = dev.block_size() as usize;
    if !buf_len.is_multiple_of(bs) {
        return Err(DeviceError::BadBufferSize { got: buf_len, expected: dev.block_size() });
    }
    let count = (buf_len / bs) as u64;
    let last = start.saturating_add(count.saturating_sub(1));
    if count > 0 && last >= dev.num_blocks() {
        return Err(DeviceError::OutOfRange { block: last, num_blocks: dev.num_blocks() });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_reads_zero() {
        let dev = MemDevice::new(512, 8);
        let mut buf = [1u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read() {
        let mut dev = MemDevice::new(512, 8);
        dev.write_block(3, &[9u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9));
    }

    #[test]
    fn out_of_range_read() {
        let dev = MemDevice::new(512, 8);
        let mut buf = [0u8; 512];
        assert!(matches!(dev.read_block(8, &mut buf), Err(DeviceError::OutOfRange { .. })));
    }

    #[test]
    fn wrong_buffer_size() {
        let mut dev = MemDevice::new(512, 8);
        assert!(matches!(dev.write_block(0, &[0u8; 100]), Err(DeviceError::BadBufferSize { .. })));
    }

    #[test]
    fn resize_grows_with_zeroes() {
        let mut dev = MemDevice::new(512, 2);
        dev.write_block(1, &[5u8; 512]).unwrap();
        dev.resize(4);
        assert_eq!(dev.num_blocks(), 4);
        let mut buf = [1u8; 512];
        dev.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        dev.read_block(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 5));
    }

    #[test]
    fn resize_shrink_discards() {
        let mut dev = MemDevice::new(512, 4);
        dev.write_block(3, &[5u8; 512]).unwrap();
        dev.resize(2);
        assert_eq!(dev.num_blocks(), 2);
        let mut buf = [0u8; 512];
        assert!(dev.read_block(3, &mut buf).is_err());
    }

    #[test]
    fn lazy_allocation() {
        let mut dev = MemDevice::new(4096, 1_000_000);
        assert_eq!(dev.populated_blocks(), 0);
        dev.write_block(999_999, &[1u8; 4096]).unwrap();
        assert_eq!(dev.populated_blocks(), 1);
    }

    #[test]
    fn bulk_ops_use_slice_copies() {
        let mut dev = MemDevice::new(512, 8);
        let mut data = vec![0u8; 512 * 4];
        for (i, chunk) in data.chunks_exact_mut(512).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        dev.write_blocks(1, &data).unwrap();
        assert_eq!(dev.populated_blocks(), 4);
        let mut back = vec![0u8; 512 * 4];
        dev.read_blocks(1, &mut back).unwrap();
        assert_eq!(back, data);
        // reading across unwritten blocks yields zeroes there
        let mut wide = vec![1u8; 512 * 2];
        dev.read_blocks(6, &mut wide).unwrap();
        assert!(wide.iter().all(|&b| b == 0));
        // bad geometry rejected before any block is touched
        assert!(matches!(dev.write_blocks(6, &data), Err(DeviceError::OutOfRange { .. })));
        assert_eq!(dev.populated_blocks(), 4);
    }

    #[test]
    fn overwrite_reuses_allocation() {
        let mut dev = MemDevice::new(512, 2);
        dev.write_block(0, &[1u8; 512]).unwrap();
        let before = dev.blocks[0].as_ref().unwrap().as_ptr();
        dev.write_block(0, &[2u8; 512]).unwrap();
        assert_eq!(dev.blocks[0].as_ref().unwrap().as_ptr(), before);
        assert_eq!(dev.read_block_vec(0).unwrap(), vec![2u8; 512]);
    }

    #[test]
    fn corrupt_byte_flips_data() {
        let mut dev = MemDevice::new(512, 2);
        dev.write_block(0, &[0u8; 512]).unwrap();
        dev.corrupt_byte(0, 10, 0xFF).unwrap();
        let mut buf = [0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[10], 0xFF);
    }

    #[test]
    #[should_panic(expected = "block size must be non-zero")]
    fn zero_block_size_panics() {
        let _ = MemDevice::new(0, 8);
    }
}
