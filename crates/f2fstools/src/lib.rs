//! A simulated `f2fs-tools` ecosystem: the second file-system substrate
//! behind the [`e2fstools::Component`] trait.
//!
//! The crate mirrors the shape of `e2fstools` — one module per utility
//! (`mkfs.f2fs`, `fsck.f2fs`, `resize.f2fs`, `dump.f2fs`) plus the f2fs
//! mount surface — each with a [`e2fstools::ParamSpec`] table, a
//! structured manual page, strict CLI parsing into the shared
//! [`e2fstools::typed::TypedConfig`] value model, and execution against a
//! [`blockdev::MemDevice`]. Component names use underscores
//! (`mkfs_f2fs`, `f2fs`, ...) because they double as identifiers in the
//! CIR dependency models; the CLI layer also accepts the dotted
//! real-world spellings.
//!
//! Everything reuses `e2fstools`' shared vocabulary ([`ToolError`],
//! `CliError`, `TypedConfig`, `ParamSpec`, `ManualPage`) so the checker
//! layers upstream need zero new types to host a second ecosystem.

pub mod component;
pub mod dump;
pub mod fsck;
pub mod mkfs;
pub mod mount;
pub mod resize;
pub mod sim;
pub mod typed;

pub use component::{component, ecosystem, registry};
pub use dump::DumpF2fs;
pub use e2fstools::ToolError;
pub use fsck::FsckF2fs;
pub use mkfs::MkfsF2fs;
pub use mount::F2fsMount;
pub use resize::ResizeF2fs;
pub use sim::{F2fsError, F2fsSuperblock};

/// The component names of the f2fs ecosystem, in stage order
/// (create → mount → offline).
pub const COMPONENTS: [&str; 5] = ["mkfs_f2fs", "f2fs", "fsck_f2fs", "resize_f2fs", "dump_f2fs"];
