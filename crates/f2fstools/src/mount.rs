//! The f2fs mount surface (`mount -t f2fs -o ...`).
//!
//! Mirrors `e2fstools::mount_cmd`: a comma-separated option string is
//! parsed and validated against the documented option domains
//! (utility-level checks), then [`F2fsMount::run`] re-validates against
//! the on-device superblock (the kernel-level checks of
//! `f2fs_fill_super`) — the two-level structure that makes the
//! format↔mount cross-component dependencies observable.

use blockdev::MemDevice;
use e2fstools::cli::CliError;
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, ParamType, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::ToolError;

use crate::sim::{self, F2fsFs};

/// Boolean mount options (bare tokens).
pub const BOOL_TOKENS: [&str; 16] = [
    "ro",
    "discard",
    "acl",
    "user_xattr",
    "barrier",
    "lazytime",
    "flush_merge",
    "gc_merge",
    "atgc",
    "norecovery",
    "inline_xattr",
    "inline_data",
    "inline_dentry",
    "data_flush",
    "fastboot",
    "compress_chksum",
];

/// Enumerated `name=value` mount options and their members.
pub const ENUM_TOKENS: [(&str, &[&str]); 7] = [
    ("background_gc", &["on", "off", "sync"]),
    ("compress_algorithm", &["lzo", "lz4", "zstd"]),
    ("compress_mode", &["fs", "user"]),
    ("mode", &["adaptive", "lfs"]),
    ("errors", &["remount-ro", "continue", "panic"]),
    ("fsync_mode", &["posix", "strict", "nobarrier"]),
    ("alloc_mode", &["default", "reuse"]),
];

/// Integer `name=value` mount options.
pub const INT_TOKENS: [&str; 4] = ["active_logs", "io_bits", "reserve_root", "compress_log_size"];

/// Whether `tok` is a bare boolean f2fs mount token.
pub fn is_bool_token(tok: &str) -> bool {
    BOOL_TOKENS.contains(&tok)
}

/// A parsed-and-validated f2fs mount invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct F2fsMount {
    /// Bare boolean options present (negated ones store `false`).
    pub bools: std::collections::BTreeMap<String, bool>,
    /// Enumerated options.
    pub enums: std::collections::BTreeMap<String, String>,
    /// Integer options.
    pub ints: std::collections::BTreeMap<String, i64>,
}

fn bad(option: &str, value: &str, expected: &str) -> ToolError {
    CliError::BadValue {
        option: option.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    }
    .into()
}

fn conflict(a: &str, b: &str) -> ToolError {
    CliError::Conflict { a: a.to_string(), b: b.to_string() }.into()
}

impl F2fsMount {
    /// Whether a boolean option is on.
    pub fn is_on(&self, name: &str) -> bool {
        self.bools.get(name).copied().unwrap_or(false)
    }

    /// The value of an enumerated option, if set.
    pub fn enum_value(&self, name: &str) -> Option<&str> {
        self.enums.get(name).map(String::as_str)
    }

    /// Parses a `mount -o` option string.
    ///
    /// # Errors
    ///
    /// [`ToolError::Cli`] for unknown options, out-of-domain values, and
    /// the option-level conflicts the parser enforces.
    pub fn from_option_string(opts: &str) -> Result<Self, ToolError> {
        let mut m = F2fsMount::default();
        for tok in opts.split(',').filter(|t| !t.is_empty()) {
            match tok.split_once('=') {
                Some((k, v)) => {
                    if let Some((_, members)) = ENUM_TOKENS.iter().find(|(name, _)| *name == k) {
                        if !members.contains(&v) {
                            return Err(bad(k, v, &members.join("|")));
                        }
                        m.enums.insert(k.to_string(), v.to_string());
                    } else if INT_TOKENS.contains(&k) {
                        let i: i64 =
                            v.parse().map_err(|_| bad(k, v, "an integer"))?;
                        match k {
                            // man: "supports 2, 4 and 6 logs"
                            "active_logs" if !(i == 2 || i == 4 || i == 6) => {
                                return Err(bad(k, v, "2, 4 or 6"));
                            }
                            "io_bits" if !(0..=16).contains(&i) => {
                                return Err(bad(k, v, "between 0 and 16"));
                            }
                            "reserve_root" if !(0..=1_000_000).contains(&i) => {
                                return Err(bad(k, v, "between 0 and 1000000"));
                            }
                            "compress_log_size" if !(2..=8).contains(&i) => {
                                return Err(bad(k, v, "between 2 and 8"));
                            }
                            _ => {}
                        }
                        m.ints.insert(k.to_string(), i);
                    } else {
                        return Err(CliError::UnknownOption(tok.to_string()).into());
                    }
                }
                None => {
                    if is_bool_token(tok) {
                        m.bools.insert(tok.to_string(), true);
                    } else if let Some(base) =
                        tok.strip_prefix("no").filter(|b| is_bool_token(b))
                    {
                        m.bools.insert(base.to_string(), false);
                    } else {
                        return Err(CliError::UnknownOption(tok.to_string()).into());
                    }
                }
            }
        }
        // option-level cross-parameter checks (mirrored in f2fs.cir)
        if m.ints.contains_key("io_bits") && m.enum_value("mode") != Some("lfs") {
            return Err(conflict("io_bits", "mode=adaptive"));
        }
        if m.ints.contains_key("compress_log_size") && !m.enums.contains_key("compress_algorithm")
        {
            return Err(conflict("compress_log_size", "no compress_algorithm"));
        }
        if m.is_on("norecovery") && !m.is_on("ro") {
            return Err(conflict("norecovery", "rw"));
        }
        if m.is_on("gc_merge") && m.enum_value("background_gc") == Some("off") {
            return Err(conflict("gc_merge", "background_gc=off"));
        }
        Ok(m)
    }

    /// [`F2fsMount::from_option_string`] plus the canonical
    /// [`TypedConfig`] lowering.
    ///
    /// # Errors
    ///
    /// Exactly those of [`F2fsMount::from_option_string`].
    pub fn parse_typed(opts: &str) -> Result<(Self, TypedConfig), ToolError> {
        let m = Self::from_option_string(opts)?;
        let mut cfg = TypedConfig::new("f2fs");
        for (name, on) in &m.bools {
            cfg.set_bool(name, *on);
        }
        for (name, v) in &m.enums {
            cfg.set_str(name, v);
        }
        for (name, i) in &m.ints {
            cfg.set_int(name, *i);
        }
        Ok((m, cfg))
    }

    /// Mounts `dev`, re-validating the options against the superblock.
    ///
    /// # Errors
    ///
    /// [`ToolError::Refused`] for an unformatted device or a
    /// format↔mount dependency violation.
    pub fn run(&self, dev: MemDevice) -> Result<F2fsFs, ToolError> {
        let sb = sim::read_superblock(&dev).map_err(|e| ToolError::Refused(e.to_string()))?;
        // kernel-level checks against the format-time configuration
        // (mirrored in f2fs.cir's check_format)
        if self.enums.contains_key("compress_algorithm") && !sb.has_feature("compression") {
            return Err(ToolError::Refused(
                "compress_algorithm on an image without the compression feature".to_string(),
            ));
        }
        if self.is_on("discard") && sb.discard_policy == 0 {
            return Err(ToolError::Refused(
                "discard requested but the image was formatted with -t 0".to_string(),
            ));
        }
        if sb.has_feature("ro") && !self.is_on("ro") {
            return Err(ToolError::Refused(
                "image carries the ro feature; a writable mount is not possible".to_string(),
            ));
        }
        if self.enum_value("background_gc").is_some_and(|v| v != "off") && sb.has_feature("ro") {
            return Err(ToolError::Refused(
                "background_gc on a read-only image".to_string(),
            ));
        }
        if let Some(rr) = self.ints.get("reserve_root") {
            let cap = sb.sectors * sb.sector_size / 4096 / 8;
            if *rr as u64 > cap {
                return Err(ToolError::Refused(format!(
                    "reserve_root={rr} exceeds an eighth of the image ({cap} blocks)"
                )));
            }
        }
        if !sb.clean && self.is_on("norecovery") {
            // allowed — but only because norecovery already forced ro
            debug_assert!(self.is_on("ro"));
        }
        F2fsFs::mount(dev, self.is_on("ro")).map_err(|e| ToolError::Refused(e.to_string()))
    }
}

/// The `f2fs` (mount-surface) parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "f2fs";
    let int = |min, max| ParamType::Int { min, max };
    let en = |members: &[&str]| ParamType::Enum(members.iter().map(|m| m.to_string()).collect());
    let mut v = vec![
        ParamSpec::new(c, "ro", ParamType::Bool, Stage::Mount, "mount read-only"),
        ParamSpec::new(c, "discard", ParamType::Bool, Stage::Mount, "issue discard on freed segments"),
        ParamSpec::new(c, "acl", ParamType::Bool, Stage::Mount, "POSIX ACL support"),
        ParamSpec::new(c, "user_xattr", ParamType::Bool, Stage::Mount, "extended user attributes"),
        ParamSpec::new(c, "barrier", ParamType::Bool, Stage::Mount, "issue write barriers"),
        ParamSpec::new(c, "lazytime", ParamType::Bool, Stage::Mount, "lazy timestamp updates"),
        ParamSpec::new(c, "flush_merge", ParamType::Bool, Stage::Mount, "merge concurrent flush commands"),
        ParamSpec::new(c, "gc_merge", ParamType::Bool, Stage::Mount, "let the GC thread serve foreground GC"),
        ParamSpec::new(c, "atgc", ParamType::Bool, Stage::Mount, "age-threshold garbage collection"),
        ParamSpec::new(c, "norecovery", ParamType::Bool, Stage::Mount, "skip roll-forward recovery (implies ro)"),
        ParamSpec::new(c, "inline_xattr", ParamType::Bool, Stage::Mount, "inline xattrs in the inode"),
        ParamSpec::new(c, "inline_data", ParamType::Bool, Stage::Mount, "inline small files in the inode"),
        ParamSpec::new(c, "inline_dentry", ParamType::Bool, Stage::Mount, "inline dentries in the inode"),
        ParamSpec::new(c, "data_flush", ParamType::Bool, Stage::Mount, "flush data before checkpoint"),
        ParamSpec::new(c, "fastboot", ParamType::Bool, Stage::Mount, "prefer the latest checkpoint"),
        ParamSpec::new(c, "compress_chksum", ParamType::Bool, Stage::Mount, "verify compressed cluster checksums"),
        ParamSpec::new(c, "active_logs", int(2, 6), Stage::Mount, "number of active logs: 2, 4 or 6"),
        ParamSpec::new(c, "io_bits", int(0, 16), Stage::Mount, "bits of the IO size alignment (lfs only)"),
        ParamSpec::new(c, "reserve_root", int(0, 1_000_000), Stage::Mount, "blocks reserved for root"),
        ParamSpec::new(c, "compress_log_size", int(2, 8), Stage::Mount, "log2 of the compress cluster size"),
    ];
    for (name, members) in ENUM_TOKENS {
        let desc = match name {
            "background_gc" => "background garbage collection: on, off or sync",
            "compress_algorithm" => "compression algorithm: lzo, lz4 or zstd",
            "compress_mode" => "compression mode: fs or user",
            "mode" => "allocation mode: adaptive or lfs",
            "errors" => "behaviour on errors: remount-ro, continue or panic",
            "fsync_mode" => "fsync policy: posix, strict or nobarrier",
            _ => "allocation reuse policy: default or reuse",
        };
        v.push(ParamSpec::new(c, name, en(members), Stage::Mount, desc));
    }
    v
}

/// The structured mount-option manual (the `mount.f2fs`-side view) —
/// again with deliberate gaps: the `compress_algorithm`→`compression`
/// feature requirement and the `io_bits`→`mode=lfs` coupling are
/// enforced but undocumented.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "f2fs".to_string(),
        synopsis: "mount -t f2fs [-o options] device dir".to_string(),
        description: "Mount options of the f2fs file system.".to_string(),
        options: vec![
            ManualOption::valued("active_logs=", "n", "Number of active logs: 2, 4 or 6. The default is 6.")
                .with(DocConstraint::DataType { param: "active_logs".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "active_logs".into(), min: 2, max: 6 }),
            ManualOption::valued("background_gc=", "mode", "Turn the background garbage collector on, off, or run it synchronously.")
                .with(DocConstraint::DataType { param: "background_gc".into(), ty: "enum".into() }),
            ManualOption::valued("compress_algorithm=", "alg", "Select the compression algorithm: lzo, lz4 or zstd.")
                .with(DocConstraint::DataType { param: "compress_algorithm".into(), ty: "enum".into() }),
            // GAP(f2fs): the page does not state that compress_algorithm
            // requires an image formatted with -O compression.
            ManualOption::valued("compress_log_size=", "n", "Cluster size for compression, as a power of two between 2 and 8.")
                .with(DocConstraint::DataType { param: "compress_log_size".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "compress_log_size".into(), min: 2, max: 8 })
                .with(DocConstraint::Requires { param: "compress_log_size".into(), other: "compress_algorithm".into() }),
            ManualOption::valued("io_bits=", "n", "Bits of the IO size alignment.")
                .with(DocConstraint::DataType { param: "io_bits".into(), ty: "integer".into() }),
            // GAP(f2fs): io_bits only works in mode=lfs — undocumented.
            ManualOption::valued("mode=", "m", "Allocation mode: adaptive or lfs.")
                .with(DocConstraint::DataType { param: "mode".into(), ty: "enum".into() }),
            ManualOption::valued("errors=", "behaviour", "What to do on a critical error: remount-ro, continue, or panic.")
                .with(DocConstraint::DataType { param: "errors".into(), ty: "enum".into() }),
            ManualOption::flag("discard", "Issue discard commands when segments are freed."),
            // GAP(f2fs): discard fails on a -t 0 image — undocumented
            // (cross-component, format-time parameter).
            ManualOption::flag("norecovery", "Skip roll-forward recovery. Requires a read-only mount.")
                .with(DocConstraint::Requires { param: "norecovery".into(), other: "ro".into() }),
            ManualOption::flag("gc_merge", "Let the background GC thread handle foreground GC requests.")
                .with(DocConstraint::Conflicts { param: "gc_merge".into(), other: "background_gc".into() }),
            ManualOption::valued("reserve_root=", "blocks", "Reserve blocks for the root user.")
                .with(DocConstraint::DataType { param: "reserve_root".into(), ty: "integer".into() }),
            ManualOption::flag("ro", "Mount read-only."),
            ManualOption::flag("lazytime", "Update timestamps lazily."),
            ManualOption::flag("barrier", "Issue write barriers (default)."),
        ],
    }
}

/// The f2fs kernel documentation page (`Documentation/filesystems/f2fs`)
/// — the cross-check corpus ConDocCk consults beyond the tool manuals,
/// the f2fs analog of the ext4 kernel doc.
pub fn kernel_doc() -> ManualPage {
    ManualPage {
        component: "f2fs_kernel".to_string(),
        synopsis: "f2fs kernel documentation".to_string(),
        description: "The mount options and on-disk feature interactions described by the kernel's f2fs documentation.".to_string(),
        options: vec![
            ManualOption::valued("mode=", "m", "In lfs mode all writes are sequential; io_bits requires it.")
                .with(DocConstraint::Requires { param: "io_bits".into(), other: "mode".into() }),
            ManualOption::valued("active_logs=", "n", "Supports 2, 4, and 6 logs.")
                .with(DocConstraint::ValueRange { param: "active_logs".into(), min: 2, max: 6 }),
            ManualOption::flag("norecovery", "Disables roll-forward recovery; mount becomes read-only.")
                .with(DocConstraint::Requires { param: "norecovery".into(), other: "ro".into() }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::MkfsF2fs;

    fn image(extra: &[&str]) -> MemDevice {
        let mut argv = vec![];
        argv.extend_from_slice(extra);
        argv.push("/dev/x");
        let m = MkfsF2fs::from_args(&argv).unwrap();
        m.run(MemDevice::new(4096, 8192)).unwrap().0
    }

    #[test]
    fn parses_and_validates_domains() {
        let m = F2fsMount::from_option_string("ro,active_logs=4,background_gc=sync").unwrap();
        assert!(m.is_on("ro"));
        assert_eq!(m.ints.get("active_logs"), Some(&4));
        assert_eq!(m.enum_value("background_gc"), Some("sync"));
        assert!(F2fsMount::from_option_string("active_logs=3").is_err());
        assert!(F2fsMount::from_option_string("background_gc=maybe").is_err());
        assert!(F2fsMount::from_option_string("compress_log_size=9,compress_algorithm=lz4").is_err());
        assert!(F2fsMount::from_option_string("warp_drive").is_err());
    }

    #[test]
    fn negated_bool_tokens_lower_to_false() {
        let (_, cfg) = F2fsMount::parse_typed("nobarrier,discard").unwrap();
        assert_eq!(cfg.get("barrier"), Some(&e2fstools::typed::TypedValue::Bool(false)));
        assert!(cfg.is_engaged("discard"));
    }

    #[test]
    fn option_level_conflicts() {
        assert!(F2fsMount::from_option_string("io_bits=4").is_err());
        assert!(F2fsMount::from_option_string("io_bits=4,mode=lfs").is_ok());
        assert!(F2fsMount::from_option_string("norecovery").is_err());
        assert!(F2fsMount::from_option_string("norecovery,ro").is_ok());
        assert!(F2fsMount::from_option_string("gc_merge,background_gc=off").is_err());
        assert!(F2fsMount::from_option_string("compress_log_size=4").is_err());
    }

    #[test]
    fn mount_level_checks_against_superblock() {
        // compress_algorithm needs the compression feature
        let dev = image(&[]);
        let m = F2fsMount::from_option_string("compress_algorithm=lz4").unwrap();
        assert!(matches!(m.run(dev), Err(ToolError::Refused(_))));
        let dev = image(&["-O", "extra_attr,compression"]);
        let m = F2fsMount::from_option_string("compress_algorithm=lz4").unwrap();
        assert!(m.run(dev).is_ok());
        // discard on a -t 0 image
        let dev = image(&["-t", "0"]);
        let m = F2fsMount::from_option_string("discard").unwrap();
        assert!(matches!(m.run(dev), Err(ToolError::Refused(_))));
        // ro feature forces a read-only mount
        let dev = image(&["-O", "ro"]);
        assert!(F2fsMount::from_option_string("").unwrap().run(dev.clone()).is_err());
        assert!(F2fsMount::from_option_string("ro,background_gc=off").unwrap().run(dev).is_ok());
    }

    #[test]
    fn mount_unmount_round_trip() {
        let fs = F2fsMount::from_option_string("discard,active_logs=6")
            .unwrap()
            .run(image(&[]))
            .unwrap();
        let dev = fs.unmount().unwrap();
        assert!(sim::read_superblock(&dev).unwrap().clean);
    }

    #[test]
    fn tables_cover_the_universe() {
        let specs = param_table();
        assert!(specs.len() >= 25);
        assert!(specs.iter().any(|s| s.name == "background_gc"));
        assert!(manual().option("active_logs=").is_some());
        assert!(!kernel_doc().options.is_empty());
    }
}
