//! `mkfs.f2fs` — the create-stage utility of the f2fs ecosystem.
//!
//! Parses the real `mkfs.f2fs` option surface (`-a/-d/-l/-o/-s/-t/-w/-z`
//! plus `-O` feature tokens), applies the utility-level validation its
//! manual documents, and lays the simulated segment geometry onto the
//! device. Like `mke2fs`, validation is two-level: value-domain checks
//! happen at parse time (CLI errors), feature conflicts and geometry
//! checks at format time (runtime refusals) — the structure §2 of the
//! paper describes.

use blockdev::{BlockDevice, MemDevice};
use e2fstools::cli::{self, CliError};
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, ParamType, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::ToolError;

use crate::sim::{
    self, derived_overprovision, F2fsSuperblock, FEATURES, F2FS_MAGIC, MIN_SEGMENTS,
    SEGMENT_BYTES,
};

/// Boolean options of the `mkfs.f2fs` CLI surface.
const FLAG_OPTS: [&str; 2] = ["f", "q"];
/// Valued options of the `mkfs.f2fs` CLI surface.
const VALUE_OPTS: [&str; 9] = ["a", "d", "l", "o", "s", "t", "w", "z", "O"];

/// Sector sizes `-w` accepts.
const SECTOR_SIZES: [u64; 4] = [512, 1024, 2048, 4096];
/// Hard cap on segments per zone (`segs_per_sec * secs_per_zone`).
const ZONE_SEGMENT_CAP: u64 = 1024;

/// A parsed-and-validated `mkfs.f2fs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkfsF2fs {
    /// `-w`: sector size in bytes.
    pub sector_size: u64,
    /// Sectors operand (None: derive from the device size).
    pub sectors: Option<u64>,
    /// `-s`: segments per section.
    pub segs_per_sec: u64,
    /// `-z`: sections per zone.
    pub secs_per_zone: u64,
    /// `-o`: overprovision percent (0 = derive from geometry).
    pub overprovision: u64,
    /// `-a`: heap-style allocation (0/1).
    pub heap_alloc: u64,
    /// `-t`: discard policy (0 = nodiscard).
    pub discard_policy: u64,
    /// `-d`: debug level.
    pub debug_level: u64,
    /// `-l`: volume label.
    pub label: String,
    /// `-O` feature tokens, enabled only (f2fs has no `^` negation).
    pub features: Vec<String>,
    /// `-f`: format even if an image is present.
    pub force: bool,
    /// `-q`: quiet.
    pub quiet: bool,
}

/// Outcome of a successful format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkfsF2fsReport {
    /// Total sectors formatted.
    pub sectors: u64,
    /// Total 2 MiB segments.
    pub segment_count: u64,
    /// Resolved overprovision percent.
    pub overprovision: u64,
    /// Enabled features.
    pub features: Vec<String>,
}

fn bad(option: &str, value: &str, expected: &str) -> ToolError {
    CliError::BadValue {
        option: option.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    }
    .into()
}

impl MkfsF2fs {
    /// Parses a command line: `mkfs.f2fs [options] device [sectors]`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for unknown options, malformed values,
    /// and manual-level value-domain violations.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        if parsed.operands.is_empty() {
            return Err(CliError::BadOperands("a device is required".to_string()).into());
        }
        if parsed.operands.len() > 2 {
            return Err(CliError::BadOperands(format!(
                "expected device [sectors], got {} operands",
                parsed.operands.len()
            ))
            .into());
        }

        let mut tool = MkfsF2fs {
            sector_size: 512,
            sectors: None,
            segs_per_sec: 1,
            secs_per_zone: 1,
            overprovision: 0,
            heap_alloc: 1,
            discard_policy: 1,
            debug_level: 0,
            label: String::new(),
            features: Vec::new(),
            force: parsed.has_flag("f"),
            quiet: parsed.has_flag("q"),
        };

        if let Some(w) = parsed.int_value("w")? {
            // man: "sector size in bytes: 512, 1024, 2048 or 4096"
            if !SECTOR_SIZES.contains(&w) {
                return Err(bad("-w", &w.to_string(), "512, 1024, 2048 or 4096"));
            }
            tool.sector_size = w;
        }
        if let Some(s) = parsed.int_value("s")? {
            if !(1..=128).contains(&s) {
                return Err(bad("-s", &s.to_string(), "segments per section between 1 and 128"));
            }
            tool.segs_per_sec = s;
        }
        if let Some(z) = parsed.int_value("z")? {
            if !(1..=64).contains(&z) {
                return Err(bad("-z", &z.to_string(), "sections per zone between 1 and 64"));
            }
            tool.secs_per_zone = z;
        }
        if let Some(o) = parsed.int_value("o")? {
            if o > 50 {
                return Err(bad("-o", &o.to_string(), "an overprovision percentage between 0 and 50"));
            }
            tool.overprovision = o;
        }
        if let Some(a) = parsed.int_value("a")? {
            if a > 1 {
                return Err(bad("-a", &a.to_string(), "0 or 1"));
            }
            tool.heap_alloc = a;
        }
        if let Some(t) = parsed.int_value("t")? {
            if t > 1 {
                return Err(bad("-t", &t.to_string(), "0 (nodiscard) or 1"));
            }
            tool.discard_policy = t;
        }
        if let Some(d) = parsed.int_value("d")? {
            if d > 10 {
                return Err(bad("-d", &d.to_string(), "a debug level between 0 and 10"));
            }
            tool.debug_level = d;
        }
        if let Some(label) = parsed.value("l") {
            if label.len() > 16 {
                return Err(bad("-l", label, "at most 16 bytes"));
            }
            tool.label = label.to_string();
        }
        if let Some(feats) = parsed.value("O") {
            for token in feats.split(',').filter(|t| !t.is_empty()) {
                if !FEATURES.contains(&token) {
                    return Err(bad("-O", token, "a known f2fs feature name"));
                }
                if !tool.features.iter().any(|f| f == token) {
                    tool.features.push(token.to_string());
                }
            }
        }
        if let Some(size) = parsed.operands.get(1) {
            let sectors: u64 = size.parse().map_err(|_| {
                CliError::BadValue {
                    option: "sectors".to_string(),
                    value: size.to_string(),
                    expected: "an integer sector count".to_string(),
                }
            })?;
            tool.sectors = Some(sectors);
        }
        Ok(tool)
    }

    /// [`MkfsF2fs::from_args`] plus the canonical [`TypedConfig`]
    /// lowering — the ecosystem layer's entry point. Errors are exactly
    /// `from_args`'s.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MkfsF2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS).expect("validated by from_args");
        let mut cfg = TypedConfig::new("mkfs_f2fs");
        for (flag, name) in [("f", "force"), ("q", "quiet")] {
            if parsed.has_flag(flag) {
                cfg.set_bool(name, true);
            }
        }
        for (opt, name) in [
            ("w", "sector_size"),
            ("s", "segs_per_sec"),
            ("z", "secs_per_zone"),
            ("o", "overprovision"),
            ("a", "heap_alloc"),
            ("t", "discard_policy"),
            ("d", "debug_level"),
        ] {
            if let Some(v) = parsed.value(opt) {
                match v.parse::<i64>() {
                    Ok(i) => cfg.set_int(name, i),
                    Err(_) => cfg.set_str(name, v),
                };
            }
        }
        if let Some(label) = parsed.value("l") {
            cfg.set_str("label", label);
        }
        if let Some(feats) = parsed.value("O") {
            for token in feats.split(',').filter(|t| !t.is_empty()) {
                cfg.set_bool(token, true);
            }
        }
        if let Some(size) = parsed.operands.get(1) {
            if let Ok(sectors) = size.parse::<i64>() {
                cfg.set_int("sectors", sectors);
            }
        }
        if let Some(device) = parsed.operands.first() {
            cfg.operands.push(device.to_string());
        }
        Ok((tool, cfg))
    }

    /// Formats `dev` and returns it with a report.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Refused`] for feature conflicts, geometry
    /// violations, and devices too small for the layout.
    pub fn run(&self, mut dev: MemDevice) -> Result<(MemDevice, MkfsF2fsReport), ToolError> {
        let has = |name: &str| self.features.iter().any(|f| f == name);
        // feature dependencies (mirrored in the mkfs_f2fs.cir model)
        for dependent in ["compression", "project_quota", "inode_crtime", "flexible_inline_xattr"]
        {
            if has(dependent) && !has("extra_attr") {
                return Err(ToolError::Refused(format!(
                    "feature {dependent} requires extra_attr"
                )));
            }
        }
        if has("casefold") && has("encrypt") {
            return Err(ToolError::Refused(
                "casefold cannot be combined with encrypt".to_string(),
            ));
        }
        // zone geometry: segments per zone are capped
        if self.segs_per_sec * self.secs_per_zone > ZONE_SEGMENT_CAP {
            return Err(ToolError::Refused(format!(
                "zone of {} segments exceeds the {ZONE_SEGMENT_CAP}-segment cap",
                self.segs_per_sec * self.secs_per_zone
            )));
        }
        if !self.force {
            if let Ok(existing) = sim::read_superblock(&dev) {
                return Err(ToolError::Refused(format!(
                    "device already holds an f2fs image (label '{}'); use -f",
                    existing.label
                )));
            }
        }
        let device_sectors = dev.num_blocks() * u64::from(dev.block_size()) / self.sector_size;
        let sectors = self.sectors.unwrap_or(device_sectors);
        if sectors > device_sectors {
            return Err(ToolError::Refused(format!(
                "{sectors} sectors requested but the device holds {device_sectors}"
            )));
        }
        let segment_count = sectors * self.sector_size / SEGMENT_BYTES;
        if segment_count < MIN_SEGMENTS {
            return Err(ToolError::Refused(format!(
                "device too small: {segment_count} segments, {MIN_SEGMENTS} required"
            )));
        }
        // a zone must fit the main area
        let zone_segments = self.segs_per_sec * self.secs_per_zone;
        if zone_segments > segment_count - sim::META_SEGMENTS {
            return Err(ToolError::Refused(format!(
                "zone of {zone_segments} segments does not fit {segment_count} total segments"
            )));
        }
        let overprovision = if self.overprovision == 0 {
            derived_overprovision(segment_count)
        } else {
            self.overprovision
        };
        let reserved = segment_count * overprovision / 100 + sim::META_SEGMENTS;
        if reserved >= segment_count {
            return Err(ToolError::Refused(format!(
                "overprovision {overprovision}% reserves {reserved} of {segment_count} segments; nothing left for data"
            )));
        }
        let sb = F2fsSuperblock {
            magic: F2FS_MAGIC.to_string(),
            sector_size: self.sector_size,
            sectors,
            segment_count,
            segs_per_sec: self.segs_per_sec,
            secs_per_zone: self.secs_per_zone,
            overprovision,
            features: self.features.clone(),
            label: self.label.clone(),
            discard_policy: self.discard_policy,
            clean: true,
            mount_count: 0,
            files: std::collections::BTreeMap::new(),
        };
        sim::write_superblock(&mut dev, &sb)
            .map_err(|e| ToolError::Refused(e.to_string()))?;
        Ok((
            dev,
            MkfsF2fsReport {
                sectors,
                segment_count,
                overprovision,
                features: self.features.clone(),
            },
        ))
    }
}

/// The `mkfs_f2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "mkfs_f2fs";
    let int = |min, max| ParamType::Int { min, max };
    let feat = || ParamType::Feature;
    vec![
        ParamSpec::new(c, "sector_size", int(512, 4096), Stage::Create, "-w: sector size in bytes (512/1024/2048/4096)"),
        ParamSpec::new(c, "segs_per_sec", int(1, 128), Stage::Create, "-s: segments per section"),
        ParamSpec::new(c, "secs_per_zone", int(1, 64), Stage::Create, "-z: sections per zone"),
        ParamSpec::new(c, "overprovision", int(0, 50), Stage::Create, "-o: overprovision percent (0 = derive)"),
        ParamSpec::new(c, "heap_alloc", int(0, 1), Stage::Create, "-a: heap-style allocation"),
        ParamSpec::new(c, "discard_policy", int(0, 1), Stage::Create, "-t: 0 disables discard"),
        ParamSpec::new(c, "debug_level", int(0, 10), Stage::Create, "-d: debug verbosity"),
        ParamSpec::new(c, "label", ParamType::Str, Stage::Create, "-l: volume label (16 bytes)"),
        ParamSpec::new(c, "force", ParamType::Bool, Stage::Create, "-f: overwrite an existing image"),
        ParamSpec::new(c, "quiet", ParamType::Bool, Stage::Create, "-q: quiet output"),
        ParamSpec::new(c, "sectors", ParamType::Size, Stage::Create, "sectors operand (the resize_f2fs CCD)"),
        ParamSpec::new(c, "extra_attr", feat(), Stage::Create, "-O extra_attr"),
        ParamSpec::new(c, "project_quota", feat(), Stage::Create, "-O project_quota"),
        ParamSpec::new(c, "inode_checksum", feat(), Stage::Create, "-O inode_checksum"),
        ParamSpec::new(c, "inode_crtime", feat(), Stage::Create, "-O inode_crtime"),
        ParamSpec::new(c, "flexible_inline_xattr", feat(), Stage::Create, "-O flexible_inline_xattr"),
        ParamSpec::new(c, "compression", feat(), Stage::Create, "-O compression"),
        ParamSpec::new(c, "encrypt", feat(), Stage::Create, "-O encrypt"),
        ParamSpec::new(c, "casefold", feat(), Stage::Create, "-O casefold"),
        ParamSpec::new(c, "lost_found", feat(), Stage::Create, "-O lost_found"),
        ParamSpec::new(c, "verity", feat(), Stage::Create, "-O verity"),
        ParamSpec::new(c, "sb_checksum", feat(), Stage::Create, "-O sb_checksum"),
        ParamSpec::new(c, "ro", feat(), Stage::Create, "-O ro: read-only image"),
    ]
}

/// The structured `mkfs.f2fs(8)` manual page — with deliberate gaps for
/// ConDocCk to find, mirroring the style of the real page: the zone
/// geometry cap, the `extra_attr` feature prerequisites, and the
/// `casefold`/`encrypt` conflict are all enforced in code but absent
/// from the prose.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "mkfs_f2fs".to_string(),
        synopsis: "mkfs.f2fs [-a 0|1] [-o overprovision] [-s segs] [-z secs] [-O feature[,...]] device [sectors]".to_string(),
        description: "mkfs.f2fs creates an f2fs file system on a device, laying out 2 MiB segments grouped into sections and zones.".to_string(),
        options: vec![
            ManualOption::valued("-w", "sector-size", "Specify the sector size in bytes. Valid values are 512, 1024, 2048 and 4096.")
                .with(DocConstraint::DataType { param: "sector_size".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "sector_size".into(), min: 512, max: 4096 }),
            ManualOption::valued("-s", "segs-per-sec", "Specify the number of segments per section, between 1 and 128.")
                .with(DocConstraint::DataType { param: "segs_per_sec".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "segs_per_sec".into(), min: 1, max: 128 }),
            // GAP(f2fs): the 1024-segment zone cap coupling -s and -z is
            // enforced but not documented.
            ManualOption::valued("-z", "secs-per-zone", "Specify the number of sections per zone.")
                .with(DocConstraint::DataType { param: "secs_per_zone".into(), ty: "integer".into() }),
            // GAP(f2fs): the 1..=64 range of -z is enforced but
            // undocumented.
            ManualOption::valued("-o", "overprovision", "Specify the overprovision ratio in percent. 0 selects a ratio derived from the segment count.")
                .with(DocConstraint::DataType { param: "overprovision".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "overprovision".into(), min: 0, max: 50 }),
            ManualOption::valued("-a", "0|1", "Enable or disable heap-style segment allocation.")
                .with(DocConstraint::DataType { param: "heap_alloc".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "heap_alloc".into(), min: 0, max: 1 }),
            ManualOption::valued("-t", "0|1", "0 disables the discard policy for the image.")
                .with(DocConstraint::DataType { param: "discard_policy".into(), ty: "integer".into() }),
            // GAP(f2fs): mounting with `discard` on a `-t 0` image fails —
            // a cross-component dependency the page never states.
            ManualOption::valued("-d", "debug-level", "Set the debugging verbosity.")
                .with(DocConstraint::DataType { param: "debug_level".into(), ty: "integer".into() }),
            ManualOption::valued("-l", "label", "Set the volume label, at most 16 bytes.")
                .with(DocConstraint::DataType { param: "label".into(), ty: "string".into() })
                .with(DocConstraint::ValueRange { param: "label".into(), min: 0, max: 16 }),
            ManualOption::valued("-O", "feature[,...]", "Enable file-system features: extra_attr, project_quota, inode_checksum, inode_crtime, flexible_inline_xattr, compression, encrypt, casefold, lost_found, verity, sb_checksum, ro.")
                .with(DocConstraint::DataType { param: "features".into(), ty: "feature-list".into() })
                .with(DocConstraint::Requires { param: "project_quota".into(), other: "extra_attr".into() }),
            // GAP(f2fs): compression, inode_crtime and
            // flexible_inline_xattr also require extra_attr — only
            // project_quota's requirement is documented.
            // GAP(f2fs): casefold conflicts with encrypt — undocumented.
            ManualOption::flag("-f", "Force formatting even if an existing image is present."),
            ManualOption::flag("-q", "Quiet mode."),
            ManualOption::valued("sectors", "count", "The number of sectors of the file system; defaults to the device size.")
                .with(DocConstraint::DataType { param: "sectors".into(), ty: "size".into() }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev32m() -> MemDevice {
        MemDevice::new(4096, 8192) // 32 MiB
    }

    #[test]
    fn parse_basic_invocation() {
        let m = MkfsF2fs::from_args(&["-s", "2", "-z", "2", "-o", "10", "-l", "vol", "/dev/x"])
            .unwrap();
        assert_eq!(m.segs_per_sec, 2);
        assert_eq!(m.secs_per_zone, 2);
        assert_eq!(m.overprovision, 10);
        assert_eq!(m.label, "vol");
    }

    #[test]
    fn value_domains_validated_at_parse_time() {
        assert!(MkfsF2fs::from_args(&["-w", "777", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-s", "0", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-s", "129", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-z", "65", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-o", "51", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-a", "2", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-d", "11", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-O", "warp_drive", "/dev/x"]).is_err());
        assert!(MkfsF2fs::from_args(&["-l", "12345678901234567", "/dev/x"]).is_err());
    }

    #[test]
    fn feature_conflicts_surface_at_format_time() {
        // parses fine — the manual is silent about the prerequisite
        let m = MkfsF2fs::from_args(&["-O", "compression", "/dev/x"]).unwrap();
        let err = m.run(dev32m()).unwrap_err();
        assert!(matches!(err, ToolError::Refused(ref msg) if msg.contains("extra_attr")));
        let m = MkfsF2fs::from_args(&["-O", "casefold,encrypt", "/dev/x"]).unwrap();
        assert!(matches!(m.run(dev32m()), Err(ToolError::Refused(_))));
    }

    #[test]
    fn zone_geometry_cap_enforced() {
        let m = MkfsF2fs::from_args(&["-s", "128", "-z", "16", "/dev/x"]).unwrap();
        let err = m.run(dev32m()).unwrap_err();
        assert!(matches!(err, ToolError::Refused(ref msg) if msg.contains("cap")));
    }

    #[test]
    fn run_formats_and_derives_overprovision() {
        let m = MkfsF2fs::from_args(&["-O", "extra_attr,compression", "/dev/x"]).unwrap();
        let (dev, report) = m.run(dev32m()).unwrap();
        assert_eq!(report.segment_count, 16);
        assert!(report.overprovision > 0);
        let sb = sim::read_superblock(&dev).unwrap();
        assert!(sb.has_feature("compression"));
        assert_eq!(sb.overprovision, report.overprovision);
    }

    #[test]
    fn refuses_existing_image_without_force() {
        let m = MkfsF2fs::from_args(&["/dev/x"]).unwrap();
        let (dev, _) = m.run(dev32m()).unwrap();
        assert!(matches!(m.run(dev.clone()), Err(ToolError::Refused(_))));
        let forced = MkfsF2fs::from_args(&["-f", "/dev/x"]).unwrap();
        assert!(forced.run(dev).is_ok());
    }

    #[test]
    fn device_too_small_refused() {
        let m = MkfsF2fs::from_args(&["/dev/x"]).unwrap();
        let err = m.run(MemDevice::new(4096, 64)).unwrap_err();
        assert!(matches!(err, ToolError::Refused(ref msg) if msg.contains("too small")));
    }

    #[test]
    fn typed_view_lowering() {
        let (_, cfg) = MkfsF2fs::parse_typed(&[
            "-s", "2", "-o", "10", "-O", "extra_attr,compression", "/dev/x", "65536",
        ])
        .unwrap();
        assert_eq!(cfg.component, "mkfs_f2fs");
        assert_eq!(cfg.get_int("segs_per_sec"), Some(2));
        assert_eq!(cfg.get_int("overprovision"), Some(10));
        assert!(cfg.is_engaged("compression"));
        assert_eq!(cfg.get_int("sectors"), Some(65536));
        assert_eq!(cfg.operands, vec!["/dev/x"]);
    }

    #[test]
    fn param_table_and_manual_line_up() {
        let specs = param_table();
        assert!(specs.len() >= 20);
        let page = manual();
        // documented: -s range; undocumented: the -s x -z zone cap
        assert!(page
            .constraints_for("segs_per_sec")
            .iter()
            .any(|c| matches!(c, DocConstraint::ValueRange { .. })));
        assert!(page
            .all_constraints()
            .iter()
            .all(|c| !matches!(c, DocConstraint::Conflicts { param, other }
                if param == "segs_per_sec" && other == "secs_per_zone")));
    }
}
