//! Lenient typed views of f2fs command lines — the f2fs counterparts of
//! `TypedConfig::from_mkfs_args_lenient` / `from_mount_opts_lenient`.
//!
//! The fuzzers and the validation front-end need *every* generated
//! command line to lower to a [`TypedConfig`], including deliberately
//! invalid ones the strict parsers refuse; these views never fail.

use e2fstools::typed::TypedConfig;

use crate::mount;

/// A lenient typed view of a `mkfs.f2fs` command line. Valued options
/// lower to their registry parameter names, `-O` feature tokens to
/// booleans, and anything unparsable falls back to a string value.
pub fn from_mkfs_f2fs_args_lenient(args: &[String]) -> TypedConfig {
    let mut cfg = TypedConfig::new("mkfs_f2fs");
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        // valued options lowered to their registry parameter names
        // (the same map as `MkfsF2fs::parse_typed`, minus validation)
        let valued = match arg.as_str() {
            "-w" => Some("sector_size"),
            "-s" => Some("segs_per_sec"),
            "-z" => Some("secs_per_zone"),
            "-o" => Some("overprovision"),
            "-a" => Some("heap_alloc"),
            "-t" => Some("discard_policy"),
            "-d" => Some("debug_level"),
            "-l" => Some("label"),
            _ => None,
        };
        if let Some(name) = valued {
            match it.next() {
                Some(v) => match v.parse::<i64>() {
                    Ok(i) => {
                        cfg.set_int(name, i);
                    }
                    Err(_) => {
                        cfg.set_str(name, v);
                    }
                },
                None => {
                    cfg.set_bool(name, true);
                }
            }
            continue;
        }
        match arg.as_str() {
            "-f" => {
                cfg.set_bool("force", true);
            }
            "-q" => {
                cfg.set_bool("quiet", true);
            }
            "-O" => {
                if let Some(feats) = it.next() {
                    for token in feats.split(',').filter(|t| !t.is_empty()) {
                        match token.strip_prefix('^') {
                            Some(name) => cfg.set_bool(name, false),
                            None => cfg.set_bool(token, true),
                        };
                    }
                }
            }
            other if other.starts_with('-') => {
                // unknown option: keep it (with its value, if any) so
                // distinct invalid configs stay distinct
                let name = other.trim_start_matches('-').to_string();
                match it.peek() {
                    Some(v) if !v.starts_with('-') => {
                        let v = it.next().expect("peeked");
                        cfg.set_str(&name, v);
                    }
                    _ => {
                        cfg.set_bool(&name, true);
                    }
                }
            }
            operand => match operand.parse::<i64>() {
                // a numeric second operand is the sector count
                Ok(i) if !cfg.operands.is_empty() => {
                    cfg.set_int("sectors", i);
                }
                _ => cfg.operands.push(operand.to_string()),
            },
        }
    }
    cfg
}

/// A lenient typed view of an f2fs `mount -o` option string: bare
/// tokens lower to booleans, `key=value` tokens to integers where
/// possible and strings otherwise. `no<param>` for a registered f2fs
/// boolean lowers to `param = false` (mirroring
/// [`mount::F2fsMount::parse_typed`]); `norecovery` itself is
/// registered and stays as-is.
pub fn from_f2fs_mount_opts_lenient(opts: &str) -> TypedConfig {
    let mut cfg = TypedConfig::new("f2fs");
    for tok in opts.split(',').filter(|t| !t.is_empty()) {
        match tok.split_once('=') {
            Some((k, v)) => match v.parse::<i64>() {
                Ok(i) => {
                    cfg.set_int(k, i);
                }
                Err(_) => {
                    cfg.set_str(k, v);
                }
            },
            None => {
                if mount::is_bool_token(tok) {
                    cfg.set_bool(tok, true);
                } else if let Some(base) =
                    tok.strip_prefix("no").filter(|b| mount::is_bool_token(b))
                {
                    cfg.set_bool(base, false);
                } else {
                    cfg.set_bool(tok, true);
                }
            }
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::MkfsF2fs;
    use crate::mount::F2fsMount;
    use e2fstools::typed::TypedValue;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mkfs_valid_lines_agree_with_strict_parser() {
        let argv = ["-w", "4096", "-s", "2", "-O", "extra_attr,compression", "/dev/x"];
        let (_, strict) = MkfsF2fs::parse_typed(&argv).unwrap();
        let lenient = from_mkfs_f2fs_args_lenient(&strings(&argv));
        assert_eq!(strict.values, lenient.values);
        assert_eq!(strict.operands, lenient.operands);
    }

    #[test]
    fn mkfs_invalid_lines_still_lower() {
        let cfg = from_mkfs_f2fs_args_lenient(&strings(&["-w", "banana", "-Q", "/dev/x"]));
        assert_eq!(cfg.get("sector_size"), Some(&TypedValue::Str("banana".to_string())));
        assert!(cfg.is_engaged("Q"));
    }

    #[test]
    fn mount_valid_lines_agree_with_strict_parser() {
        let opts = "ro,discard,active_logs=4,background_gc=sync,nobarrier";
        let (_, strict) = F2fsMount::parse_typed(opts).unwrap();
        let lenient = from_f2fs_mount_opts_lenient(opts);
        assert_eq!(strict.values, lenient.values);
    }

    #[test]
    fn mount_invalid_lines_still_lower() {
        let cfg = from_f2fs_mount_opts_lenient("active_logs=3,warp_drive,mode=hyper");
        assert_eq!(cfg.get_int("active_logs"), Some(3));
        assert!(cfg.is_engaged("warp_drive"));
        assert_eq!(cfg.get("mode"), Some(&TypedValue::Str("hyper".to_string())));
    }
}
