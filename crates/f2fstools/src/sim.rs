//! The on-device f2fs simulation substrate.
//!
//! Real f2fs divides the device into 2 MiB segments, groups segments
//! into sections and sections into zones, and reserves an
//! overprovisioning slice for garbage collection. The simulation keeps
//! exactly the state the configuration study needs — geometry, feature
//! flags, the clean/dirty bit, and a file table — serialized as JSON
//! into a reserved superblock area at the front of the device, so every
//! utility round-trips through the same on-device bytes instead of
//! sharing in-process state.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use blockdev::{BlockDevice, DeviceError, MemDevice};
use serde::{Deserialize, Serialize};

/// Magic string identifying a formatted image.
pub const F2FS_MAGIC: &str = "F2FS-sim";
/// Bytes per segment (f2fs: 512 blocks of 4 KiB).
pub const SEGMENT_BYTES: u64 = 2 * 1024 * 1024;
/// Blocks reserved at the front of the device for the superblock area.
pub const SB_BLOCKS: u64 = 8;
/// Metadata segments every layout consumes (SB, checkpoint, SIT, NAT,
/// SSA — collapsed into one count for the simulation).
pub const META_SEGMENTS: u64 = 6;
/// Minimum segments a formattable device must provide.
pub const MIN_SEGMENTS: u64 = 9;

/// Feature names accepted by `mkfs.f2fs -O`.
pub const FEATURES: [&str; 12] = [
    "extra_attr",
    "project_quota",
    "inode_checksum",
    "inode_crtime",
    "flexible_inline_xattr",
    "compression",
    "encrypt",
    "casefold",
    "lost_found",
    "verity",
    "sb_checksum",
    "ro",
];

/// Errors of the simulation layer.
#[derive(Debug)]
pub enum F2fsError {
    /// The superblock area does not carry a formatted image.
    NotF2fs,
    /// The device cannot host the requested geometry.
    DeviceTooSmall {
        /// Segments the geometry needs.
        needed: u64,
        /// Segments the device provides.
        available: u64,
    },
    /// The image is marked dirty and the operation needs a clean one.
    Unclean,
    /// The mount is read-only and the operation writes.
    ReadOnly,
    /// On-device state failed to decode.
    Corrupt(String),
    /// The path does not exist.
    NotFound(String),
    /// An underlying device error.
    Device(DeviceError),
}

impl fmt::Display for F2fsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            F2fsError::NotF2fs => write!(f, "not an f2fs image"),
            F2fsError::DeviceTooSmall { needed, available } => {
                write!(f, "device too small: {needed} segments needed, {available} available")
            }
            F2fsError::Unclean => write!(f, "image is dirty; run fsck_f2fs first"),
            F2fsError::ReadOnly => write!(f, "read-only file system"),
            F2fsError::Corrupt(m) => write!(f, "corrupt image: {m}"),
            F2fsError::NotFound(p) => write!(f, "no such file: {p}"),
            F2fsError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for F2fsError {}

impl From<DeviceError> for F2fsError {
    fn from(e: DeviceError) -> Self {
        F2fsError::Device(e)
    }
}

/// The simulated f2fs superblock (plus the collapsed checkpoint state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F2fsSuperblock {
    /// Magic (must be [`F2FS_MAGIC`]).
    pub magic: String,
    /// Sector size in bytes the image was formatted with.
    pub sector_size: u64,
    /// Total sectors of the image.
    pub sectors: u64,
    /// Total 2 MiB segments.
    pub segment_count: u64,
    /// Segments per section.
    pub segs_per_sec: u64,
    /// Sections per zone.
    pub secs_per_zone: u64,
    /// Overprovisioning ratio in percent (resolved, never 0).
    pub overprovision: u64,
    /// Enabled `-O` features.
    pub features: Vec<String>,
    /// Volume label.
    pub label: String,
    /// 1 when the image honours discard, 0 when formatted `-t 0`.
    pub discard_policy: u64,
    /// Checkpoint clean bit.
    pub clean: bool,
    /// Successful mount count.
    pub mount_count: u64,
    /// File table: path → length (persisted at unmount).
    pub files: BTreeMap<String, u64>,
}

impl F2fsSuperblock {
    /// Whether feature `name` was enabled at format time.
    pub fn has_feature(&self, name: &str) -> bool {
        self.features.iter().any(|f| f == name)
    }

    /// Segments reserved for overprovisioning plus metadata.
    pub fn reserved_segments(&self) -> u64 {
        self.segment_count * self.overprovision / 100 + META_SEGMENTS
    }
}

/// The overprovisioning ratio `mkfs.f2fs` derives when `-o` is absent:
/// shrinks with the square root of the segment count, clamped to
/// `1..=50` percent.
pub fn derived_overprovision(segment_count: u64) -> u64 {
    let mut root = 1u64;
    while (root + 1) * (root + 1) <= segment_count {
        root += 1;
    }
    (200 / root).clamp(1, 50)
}

/// Bytes the superblock area occupies on `dev`.
fn sb_area_bytes(dev: &MemDevice) -> usize {
    (SB_BLOCKS.min(dev.num_blocks()) * u64::from(dev.block_size())) as usize
}

/// Serializes `sb` into the reserved superblock area.
///
/// # Errors
///
/// Returns [`F2fsError::Corrupt`] when the encoded superblock does not
/// fit the area, or a device error.
pub fn write_superblock(dev: &mut MemDevice, sb: &F2fsSuperblock) -> Result<(), F2fsError> {
    let area = sb_area_bytes(dev);
    let json = serde_json::to_string(sb)
        .map_err(|e| F2fsError::Corrupt(format!("superblock encode: {e}")))?;
    let bytes = json.as_bytes();
    if bytes.len() > area {
        return Err(F2fsError::Corrupt(format!(
            "superblock needs {} bytes, area holds {area}",
            bytes.len()
        )));
    }
    let bs = dev.block_size() as usize;
    let mut padded = vec![0u8; area];
    padded[..bytes.len()].copy_from_slice(bytes);
    for (i, chunk) in padded.chunks(bs).enumerate() {
        dev.write_block(i as u64, chunk)?;
    }
    Ok(())
}

/// Reads the superblock back from the reserved area.
///
/// # Errors
///
/// [`F2fsError::NotF2fs`] when the area is blank or carries a different
/// magic; [`F2fsError::Corrupt`] when decoding fails.
pub fn read_superblock(dev: &MemDevice) -> Result<F2fsSuperblock, F2fsError> {
    let bs = dev.block_size() as usize;
    let area = sb_area_bytes(dev);
    let mut raw = vec![0u8; area];
    for (i, chunk) in raw.chunks_mut(bs).enumerate() {
        dev.read_block(i as u64, chunk)?;
    }
    let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
    if end == 0 {
        return Err(F2fsError::NotF2fs);
    }
    let json = std::str::from_utf8(&raw[..end]).map_err(|_| F2fsError::NotF2fs)?;
    let sb: F2fsSuperblock =
        serde_json::from_str(json).map_err(|_| F2fsError::NotF2fs)?;
    if sb.magic != F2FS_MAGIC {
        return Err(F2fsError::NotF2fs);
    }
    Ok(sb)
}

/// A mounted f2fs instance: the superblock pinned in memory, file data
/// held for the session, lengths persisted at unmount.
#[derive(Debug)]
pub struct F2fsFs {
    device: MemDevice,
    sb: F2fsSuperblock,
    readonly: bool,
    dirs: BTreeSet<String>,
    data: BTreeMap<String, Vec<u8>>,
}

impl F2fsFs {
    /// Mounts a formatted device. `readonly` skips the dirty-bit write.
    ///
    /// # Errors
    ///
    /// [`F2fsError::NotF2fs`] for an unformatted device; device errors.
    pub fn mount(mut device: MemDevice, readonly: bool) -> Result<Self, F2fsError> {
        let mut sb = read_superblock(&device)?;
        let data =
            sb.files.iter().map(|(p, len)| (p.clone(), vec![0u8; *len as usize])).collect();
        if !readonly {
            sb.clean = false;
            write_superblock(&mut device, &sb)?;
        }
        Ok(F2fsFs { device, sb, readonly, dirs: BTreeSet::new(), data })
    }

    /// The pinned superblock.
    pub fn superblock(&self) -> &F2fsSuperblock {
        &self.sb
    }

    /// Whether the mount is read-only.
    pub fn readonly(&self) -> bool {
        self.readonly
    }

    /// Creates a directory (flat namespace; parents are not required).
    ///
    /// # Errors
    ///
    /// [`F2fsError::ReadOnly`] on a read-only mount.
    pub fn mkdir(&mut self, path: &str) -> Result<(), F2fsError> {
        if self.readonly {
            return Err(F2fsError::ReadOnly);
        }
        self.dirs.insert(path.to_string());
        Ok(())
    }

    /// Creates (or truncates) a file.
    ///
    /// # Errors
    ///
    /// [`F2fsError::ReadOnly`] on a read-only mount.
    pub fn create(&mut self, path: &str) -> Result<(), F2fsError> {
        if self.readonly {
            return Err(F2fsError::ReadOnly);
        }
        self.data.insert(path.to_string(), Vec::new());
        Ok(())
    }

    /// Overwrites a file's contents.
    ///
    /// # Errors
    ///
    /// [`F2fsError::ReadOnly`] on a read-only mount;
    /// [`F2fsError::NotFound`] when the file was never created.
    pub fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), F2fsError> {
        if self.readonly {
            return Err(F2fsError::ReadOnly);
        }
        match self.data.get_mut(path) {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(bytes);
                Ok(())
            }
            None => Err(F2fsError::NotFound(path.to_string())),
        }
    }

    /// Reads a file's contents.
    ///
    /// # Errors
    ///
    /// [`F2fsError::NotFound`] for a missing path.
    pub fn read(&self, path: &str) -> Result<&[u8], F2fsError> {
        self.data
            .get(path)
            .map(Vec::as_slice)
            .ok_or_else(|| F2fsError::NotFound(path.to_string()))
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`F2fsError::ReadOnly`] / [`F2fsError::NotFound`].
    pub fn unlink(&mut self, path: &str) -> Result<(), F2fsError> {
        if self.readonly {
            return Err(F2fsError::ReadOnly);
        }
        self.data
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| F2fsError::NotFound(path.to_string()))
    }

    /// Unmounts: persists the file table, sets the clean bit, bumps the
    /// mount count, and hands the device back.
    ///
    /// # Errors
    ///
    /// Device errors from the superblock write.
    pub fn unmount(mut self) -> Result<MemDevice, F2fsError> {
        if !self.readonly {
            self.sb.files =
                self.data.iter().map(|(p, d)| (p.clone(), d.len() as u64)).collect();
            self.sb.clean = true;
            self.sb.mount_count += 1;
            write_superblock(&mut self.device, &self.sb)?;
        }
        Ok(self.device)
    }
}

#[cfg(test)]
impl F2fsFs {
    /// Test-only peek at the underlying device while mounted.
    fn superblock_device(&self) -> &MemDevice {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formatted() -> MemDevice {
        let mut dev = MemDevice::new(4096, 8192); // 32 MiB
        let sb = F2fsSuperblock {
            magic: F2FS_MAGIC.to_string(),
            sector_size: 512,
            sectors: 65536,
            segment_count: 16,
            segs_per_sec: 1,
            secs_per_zone: 1,
            overprovision: derived_overprovision(16),
            features: vec!["extra_attr".to_string()],
            label: String::new(),
            discard_policy: 1,
            clean: true,
            mount_count: 0,
            files: BTreeMap::new(),
        };
        write_superblock(&mut dev, &sb).unwrap();
        dev
    }

    #[test]
    fn superblock_round_trips() {
        let dev = formatted();
        let sb = read_superblock(&dev).unwrap();
        assert_eq!(sb.segment_count, 16);
        assert!(sb.has_feature("extra_attr"));
        assert!(!sb.has_feature("compression"));
    }

    #[test]
    fn blank_device_is_not_f2fs() {
        let dev = MemDevice::new(4096, 64);
        assert!(matches!(read_superblock(&dev), Err(F2fsError::NotF2fs)));
    }

    #[test]
    fn mount_workload_unmount() {
        let fs0 = F2fsFs::mount(formatted(), false).unwrap();
        // dirty while mounted read-write
        assert!(!read_superblock(fs0.superblock_device()).unwrap().clean);
        let mut fs = fs0;
        fs.mkdir("work").unwrap();
        fs.create("work/data.bin").unwrap();
        fs.write("work/data.bin", &[0xC3; 4096]).unwrap();
        assert_eq!(fs.read("work/data.bin").unwrap().len(), 4096);
        fs.create("tiny").unwrap();
        fs.write("tiny", b"x").unwrap();
        fs.unlink("tiny").unwrap();
        let dev = fs.unmount().unwrap();
        let sb = read_superblock(&dev).unwrap();
        assert!(sb.clean);
        assert_eq!(sb.mount_count, 1);
        assert_eq!(sb.files.get("work/data.bin"), Some(&4096));
        assert!(!sb.files.contains_key("tiny"));
    }

    #[test]
    fn readonly_mount_refuses_writes() {
        let mut fs = F2fsFs::mount(formatted(), true).unwrap();
        assert!(fs.readonly());
        assert!(matches!(fs.mkdir("d"), Err(F2fsError::ReadOnly)));
        assert!(matches!(fs.create("f"), Err(F2fsError::ReadOnly)));
        let dev = fs.unmount().unwrap();
        // read-only mount leaves the clean bit and count untouched
        let sb = read_superblock(&dev).unwrap();
        assert!(sb.clean);
        assert_eq!(sb.mount_count, 0);
    }

    #[test]
    fn derived_overprovision_shrinks_with_size() {
        assert_eq!(derived_overprovision(9), 50);
        assert!(derived_overprovision(1024) < derived_overprovision(64));
        assert!(derived_overprovision(1 << 20) >= 1);
    }
}
