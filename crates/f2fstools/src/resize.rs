//! A simulated `resize.f2fs`: online-capacity adjustment of an image.
//!
//! The shrink refusal is the f2fs analog of the paper's Figure 1: the
//! requested target interacts with the *format-time* geometry recorded
//! in the superblock, a cross-component dependency the `resize_f2fs.cir`
//! model makes explicit.

use blockdev::{BlockDevice, MemDevice};
use e2fstools::cli::{self, CliError};
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, ParamType, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::ToolError;

use crate::sim::{self, SEGMENT_BYTES};

const FLAG_OPTS: [&str; 2] = ["s", "f"];
const VALUE_OPTS: [&str; 2] = ["t", "d"];

/// A parsed-and-validated `resize.f2fs` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResizeF2fs {
    /// `-t`: target size in sectors (default: the whole device).
    pub target_sectors: Option<u64>,
    /// `-s`: safe resize (keep the old checkpoint reachable).
    pub safe: bool,
    /// `-f`: proceed even if the image is dirty.
    pub force: bool,
    /// `-d`: debug verbosity, 0..=10.
    pub debug_level: u64,
    /// The device operand.
    pub device: String,
}

/// What a resize run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeReport {
    /// Sector count before.
    pub old_sectors: u64,
    /// Sector count after.
    pub new_sectors: u64,
    /// Segment count after.
    pub segment_count: u64,
}

impl ResizeF2fs {
    /// Parses a `resize.f2fs` command line.
    ///
    /// # Errors
    ///
    /// [`ToolError::Cli`] for unknown options, bad values, and operand
    /// problems.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let p = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        let mut r = ResizeF2fs {
            safe: p.has_flag("s"),
            force: p.has_flag("f"),
            target_sectors: p.int_value("t")?,
            ..ResizeF2fs::default()
        };
        if let Some(d) = p.int_value("d")? {
            if d > 10 {
                return Err(CliError::BadValue {
                    option: "-d".to_string(),
                    value: d.to_string(),
                    expected: "between 0 and 10".to_string(),
                }
                .into());
            }
            r.debug_level = d;
        }
        match p.operands.len() {
            1 => r.device = p.operands[0].clone(),
            0 => return Err(CliError::BadOperands("device required".to_string()).into()),
            _ => return Err(CliError::BadOperands("too many operands".to_string()).into()),
        }
        Ok(r)
    }

    /// [`ResizeF2fs::from_args`] plus the canonical [`TypedConfig`]
    /// lowering.
    ///
    /// # Errors
    ///
    /// Exactly those of [`ResizeF2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let r = Self::from_args(argv)?;
        let mut cfg = TypedConfig::new("resize_f2fs");
        if let Some(t) = r.target_sectors {
            cfg.set_int("target_sectors", t as i64);
        }
        if r.safe {
            cfg.set_bool("safe", true);
        }
        if r.force {
            cfg.set_bool("force", true);
        }
        if r.debug_level != 0 {
            cfg.set_int("debug_level", r.debug_level as i64);
        }
        cfg.operands.push(r.device.clone());
        Ok((r, cfg))
    }

    /// Resizes the image on `dev` to the target sector count.
    ///
    /// # Errors
    ///
    /// [`ToolError::Refused`] for a missing image, a dirty image without
    /// `-f`, a shrink request, or a target the geometry cannot hold.
    pub fn run(&self, mut dev: MemDevice) -> Result<(MemDevice, ResizeReport), ToolError> {
        let mut sb = sim::read_superblock(&dev).map_err(|e| ToolError::Refused(e.to_string()))?;
        if !sb.clean && !self.force {
            return Err(ToolError::Refused(
                "image is dirty; run fsck.f2fs first or use -f".to_string(),
            ));
        }
        let device_sectors = dev.size_bytes() / sb.sector_size;
        let target = self.target_sectors.unwrap_or(device_sectors);
        // Figure-1 analog: the target interacts with format-time state
        if target < sb.sectors {
            return Err(ToolError::Refused(format!(
                "shrinking from {} to {target} sectors is not supported",
                sb.sectors
            )));
        }
        let segment_count = target * sb.sector_size / SEGMENT_BYTES;
        let zone_segments = sb.segs_per_sec * sb.secs_per_zone;
        if zone_segments > segment_count - sim::META_SEGMENTS {
            return Err(ToolError::Refused(format!(
                "zone of {zone_segments} segments does not fit {segment_count} total segments"
            )));
        }
        if target > device_sectors {
            // grow the backing device to hold the new size
            let bytes = target * sb.sector_size;
            let blocks = bytes.div_ceil(u64::from(dev.block_size()));
            dev.resize(blocks);
        }
        let old_sectors = sb.sectors;
        sb.sectors = target;
        sb.segment_count = segment_count;
        sim::write_superblock(&mut dev, &sb).map_err(|e| ToolError::Refused(e.to_string()))?;
        Ok((dev, ResizeReport { old_sectors, new_sectors: target, segment_count }))
    }
}

/// The `resize.f2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "resize_f2fs";
    vec![
        ParamSpec::new(
            c,
            "target_sectors",
            ParamType::Int { min: 0, max: i64::MAX },
            Stage::Offline,
            "target size in sectors (-t)",
        ),
        ParamSpec::new(c, "safe", ParamType::Bool, Stage::Offline, "safe resize (-s)"),
        ParamSpec::new(c, "force", ParamType::Bool, Stage::Offline, "resize a dirty image (-f)"),
        ParamSpec::new(c, "debug_level", ParamType::Int { min: 0, max: 10 }, Stage::Offline, "debug verbosity (-d)"),
    ]
}

/// The structured `resize.f2fs` manual page.
///
/// The shrink refusal — the cross-component dependency on the recorded
/// sector count — is a deliberate documentation gap, exactly the class
/// of issue the paper's Figure 1 illustrates for resize2fs.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "resize_f2fs".to_string(),
        synopsis: "resize.f2fs [-s] [-f] [-t target-sectors] device".to_string(),
        description: "Resize an f2fs image to the target sector count.".to_string(),
        options: vec![
            ManualOption::valued("-t", "sectors", "Target size in sectors; defaults to the whole device.")
                .with(DocConstraint::DataType { param: "target_sectors".into(), ty: "integer".into() }),
            // GAP(f2fs): a target below the recorded sector count is
            // refused (no shrink support) — undocumented.
            ManualOption::flag("-s", "Safe resize: keep the previous checkpoint reachable."),
            ManualOption::flag("-f", "Proceed even if the image is marked dirty."),
            ManualOption::valued("-d", "level", "Debug verbosity, between 0 and 10.")
                .with(DocConstraint::DataType { param: "debug_level".into(), ty: "integer".into() }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::MkfsF2fs;

    fn image() -> MemDevice {
        let m = MkfsF2fs::from_args(&["/dev/x"]).unwrap();
        m.run(MemDevice::new(4096, 8192)).unwrap().0
    }

    #[test]
    fn grows_to_target() {
        // 32 MiB image (65536 × 512-byte sectors) grown to 64 MiB
        let r = ResizeF2fs::from_args(&["-t", "131072", "/dev/x"]).unwrap();
        let (dev, report) = r.run(image()).unwrap();
        assert_eq!(report.old_sectors, 65536);
        assert_eq!(report.new_sectors, 131072);
        assert_eq!(sim::read_superblock(&dev).unwrap().sectors, 131072);
    }

    #[test]
    fn shrink_is_refused() {
        let r = ResizeF2fs::from_args(&["-t", "32768", "/dev/x"]).unwrap();
        let err = r.run(image()).unwrap_err();
        assert!(matches!(err, ToolError::Refused(ref m) if m.contains("shrink")));
    }

    #[test]
    fn dirty_image_needs_force() {
        let mut dev = image();
        let mut sb = sim::read_superblock(&dev).unwrap();
        sb.clean = false;
        sim::write_superblock(&mut dev, &sb).unwrap();
        let r = ResizeF2fs::from_args(&["-t", "131072", "/dev/x"]).unwrap();
        assert!(r.run(dev.clone()).is_err());
        let r = ResizeF2fs::from_args(&["-f", "-t", "131072", "/dev/x"]).unwrap();
        assert!(r.run(dev).is_ok());
    }

    #[test]
    fn typed_view_lowering() {
        let (_, cfg) = ResizeF2fs::parse_typed(&["-s", "-t", "131072", "/dev/x"]).unwrap();
        assert_eq!(cfg.component, "resize_f2fs");
        assert_eq!(cfg.get_int("target_sectors"), Some(131072));
        assert!(cfg.is_engaged("safe"));
    }
}
