//! A simulated `fsck.f2fs`: the offline checker of the f2fs ecosystem.

use blockdev::MemDevice;
use e2fstools::cli::{self, CliError};
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, ParamType, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::ToolError;

use crate::sim;

const FLAG_OPTS: [&str; 5] = ["a", "f", "y", "p", "n"];
const VALUE_OPTS: [&str; 1] = ["d"];

/// A parsed-and-validated `fsck.f2fs` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckF2fs {
    /// `-a`: fix automatically, without prompting.
    pub auto_fix: bool,
    /// `-f`: check even a clean image.
    pub force: bool,
    /// `-y`: answer yes to every repair.
    pub fix: bool,
    /// `-p`: preen mode (safe fixes only).
    pub preen: bool,
    /// `-n`: dry run, change nothing.
    pub dry_run: bool,
    /// `-d`: debug verbosity, 0..=10.
    pub debug_level: u64,
    /// The device operand.
    pub device: String,
}

/// What a check run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Whether the image was clean before the run.
    pub clean_before: bool,
    /// Whether the run wrote a repaired superblock.
    pub repaired: bool,
    /// Number of files in the image.
    pub files: u64,
}

impl FsckF2fs {
    /// Parses a `fsck.f2fs` command line.
    ///
    /// # Errors
    ///
    /// [`ToolError::Cli`] for unknown options, bad values, the `-y`/`-n`
    /// conflict, and missing/extra operands.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let p = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        let mut f = FsckF2fs {
            auto_fix: p.has_flag("a"),
            force: p.has_flag("f"),
            fix: p.has_flag("y"),
            preen: p.has_flag("p"),
            dry_run: p.has_flag("n"),
            ..FsckF2fs::default()
        };
        if f.fix && f.dry_run {
            return Err(CliError::Conflict { a: "-y".to_string(), b: "-n".to_string() }.into());
        }
        if f.preen && f.fix {
            return Err(CliError::Conflict { a: "-p".to_string(), b: "-y".to_string() }.into());
        }
        if let Some(d) = p.int_value("d")? {
            if d > 10 {
                return Err(CliError::BadValue {
                    option: "-d".to_string(),
                    value: d.to_string(),
                    expected: "between 0 and 10".to_string(),
                }
                .into());
            }
            f.debug_level = d;
        }
        match p.operands.len() {
            1 => f.device = p.operands[0].clone(),
            0 => return Err(CliError::BadOperands("device required".to_string()).into()),
            _ => return Err(CliError::BadOperands("too many operands".to_string()).into()),
        }
        Ok(f)
    }

    /// [`FsckF2fs::from_args`] plus the canonical [`TypedConfig`]
    /// lowering.
    ///
    /// # Errors
    ///
    /// Exactly those of [`FsckF2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let f = Self::from_args(argv)?;
        let mut cfg = TypedConfig::new("fsck_f2fs");
        if f.auto_fix {
            cfg.set_bool("auto_fix", true);
        }
        if f.force {
            cfg.set_bool("force", true);
        }
        if f.fix {
            cfg.set_bool("fix", true);
        }
        if f.preen {
            cfg.set_bool("preen", true);
        }
        if f.dry_run {
            cfg.set_bool("dry_run", true);
        }
        if f.debug_level != 0 {
            cfg.set_int("debug_level", f.debug_level as i64);
        }
        cfg.operands.push(f.device.clone());
        Ok((f, cfg))
    }

    /// Checks (and possibly repairs) the image on `dev`.
    ///
    /// # Errors
    ///
    /// [`ToolError::Refused`] for a device without an f2fs image.
    pub fn run(&self, mut dev: MemDevice) -> Result<(MemDevice, FsckReport), ToolError> {
        let mut sb = sim::read_superblock(&dev).map_err(|e| ToolError::Refused(e.to_string()))?;
        let clean_before = sb.clean;
        let mut repaired = false;
        if !clean_before {
            if self.dry_run {
                // report only
            } else if self.fix || self.auto_fix || self.preen {
                sb.clean = true;
                sim::write_superblock(&mut dev, &sb)
                    .map_err(|e| ToolError::Refused(e.to_string()))?;
                repaired = true;
            } else {
                return Err(ToolError::Refused(
                    "image is dirty; rerun with -a, -p or -y to repair".to_string(),
                ));
            }
        }
        let files = sb.files.len() as u64;
        Ok((dev, FsckReport { clean_before, repaired, files }))
    }
}

/// The `fsck.f2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "fsck_f2fs";
    vec![
        ParamSpec::new(c, "auto_fix", ParamType::Bool, Stage::Offline, "fix without prompting (-a)"),
        ParamSpec::new(c, "force", ParamType::Bool, Stage::Offline, "check even a clean image (-f)"),
        ParamSpec::new(c, "fix", ParamType::Bool, Stage::Offline, "answer yes to every repair (-y)"),
        ParamSpec::new(c, "preen", ParamType::Bool, Stage::Offline, "preen mode, safe fixes only (-p)"),
        ParamSpec::new(c, "dry_run", ParamType::Bool, Stage::Offline, "change nothing (-n)"),
        ParamSpec::new(c, "debug_level", ParamType::Int { min: 0, max: 10 }, Stage::Offline, "debug verbosity (-d)"),
    ]
}

/// The structured `fsck.f2fs` manual page. The `-p`/`-y` conflict is
/// documented; the `-y`/`-n` conflict is a deliberate gap.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "fsck_f2fs".to_string(),
        synopsis: "fsck.f2fs [-a | -p | -y] [-n] [-f] [-d debug-level] device".to_string(),
        description: "Check and repair an f2fs image.".to_string(),
        options: vec![
            ManualOption::flag("-a", "Fix detected problems automatically without prompting."),
            ManualOption::flag("-f", "Force a full check even when the image is clean."),
            ManualOption::flag("-y", "Assume an answer of yes to all questions.")
                .with(DocConstraint::Conflicts { param: "fix".into(), other: "preen".into() }),
            ManualOption::flag("-p", "Preen mode: perform only safe repairs."),
            // GAP(f2fs): -y and -n conflict, but the page does not say so.
            ManualOption::flag("-n", "Dry run: report problems but change nothing."),
            ManualOption::valued("-d", "level", "Debug verbosity, between 0 and 10.")
                .with(DocConstraint::DataType { param: "debug_level".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "debug_level".into(), min: 0, max: 10 }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::MkfsF2fs;

    fn dirty_image() -> MemDevice {
        let m = MkfsF2fs::from_args(&["/dev/x"]).unwrap();
        let (mut dev, _) = m.run(MemDevice::new(4096, 8192)).unwrap();
        let mut sb = sim::read_superblock(&dev).unwrap();
        sb.clean = false;
        sim::write_superblock(&mut dev, &sb).unwrap();
        dev
    }

    #[test]
    fn parses_and_conflicts() {
        let f = FsckF2fs::from_args(&["-a", "-f", "/dev/x"]).unwrap();
        assert!(f.auto_fix && f.force);
        assert!(FsckF2fs::from_args(&["-y", "-n", "/dev/x"]).is_err());
        assert!(FsckF2fs::from_args(&["-p", "-y", "/dev/x"]).is_err());
        assert!(FsckF2fs::from_args(&["-d", "11", "/dev/x"]).is_err());
        assert!(FsckF2fs::from_args(&[]).is_err());
    }

    #[test]
    fn repairs_dirty_image() {
        let dev = dirty_image();
        assert!(!sim::read_superblock(&dev).unwrap().clean);
        let f = FsckF2fs::from_args(&["-y", "/dev/x"]).unwrap();
        let (dev, report) = f.run(dev).unwrap();
        assert!(!report.clean_before);
        assert!(report.repaired);
        assert!(sim::read_superblock(&dev).unwrap().clean);
    }

    #[test]
    fn dry_run_leaves_image_dirty() {
        let dev = dirty_image();
        let f = FsckF2fs::from_args(&["-n", "/dev/x"]).unwrap();
        let (dev, report) = f.run(dev).unwrap();
        assert!(!report.repaired);
        assert!(!sim::read_superblock(&dev).unwrap().clean);
    }

    #[test]
    fn refuses_dirty_image_without_repair_flag() {
        let f = FsckF2fs::from_args(&["/dev/x"]).unwrap();
        assert!(matches!(f.run(dirty_image()), Err(ToolError::Refused(_))));
    }

    #[test]
    fn typed_view_lowering() {
        let (_, cfg) = FsckF2fs::parse_typed(&["-a", "-d", "3", "/dev/x"]).unwrap();
        assert!(cfg.is_engaged("auto_fix"));
        assert_eq!(cfg.get_int("debug_level"), Some(3));
        assert_eq!(cfg.component, "fsck_f2fs");
    }
}
