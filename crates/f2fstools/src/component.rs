//! The f2fs ecosystem behind the [`Component`] trait.
//!
//! The five utilities of the simulated `f2fs-tools` suite (plus the
//! mount surface) plug into the *same* object-safe trait as the ext4
//! ecosystem, so every checker upstream of the trait hosts both file
//! systems without code changes. Component names use the underscore
//! spellings (`mkfs_f2fs`, ...); [`component`] also resolves the dotted
//! real-world forms (`mkfs.f2fs`).

use blockdev::MemDevice;
use e2fstools::component::{Component, RunOutcome};
use e2fstools::manual::ManualPage;
use e2fstools::params::ParamSpec;
use e2fstools::typed::{TypedConfig, TypedValue};
use e2fstools::ToolError;

use crate::{dump, fsck, mkfs, mount, resize, sim};
use crate::{DumpF2fs, F2fsMount, FsckF2fs, MkfsF2fs, ResizeF2fs};

/// Renders one typed value as a raw CLI string.
fn raw(v: &TypedValue) -> String {
    match v {
        TypedValue::Bool(b) => b.to_string(),
        TypedValue::Int(i) => i.to_string(),
        TypedValue::Str(s) => s.clone(),
    }
}

struct MkfsF2fsComponent;

impl Component for MkfsF2fsComponent {
    fn name(&self) -> &'static str {
        "mkfs_f2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        mkfs::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        mkfs::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        MkfsF2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        let mut features = Vec::new();
        let mut sectors = None;
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("force", TypedValue::Bool(true)) => args.push("-f".to_string()),
                ("quiet", TypedValue::Bool(true)) => args.push("-q".to_string()),
                ("sector_size", v) => args.extend(["-w".to_string(), raw(v)]),
                ("segs_per_sec", v) => args.extend(["-s".to_string(), raw(v)]),
                ("secs_per_zone", v) => args.extend(["-z".to_string(), raw(v)]),
                ("overprovision", v) => args.extend(["-o".to_string(), raw(v)]),
                ("heap_alloc", v) => args.extend(["-a".to_string(), raw(v)]),
                ("discard_policy", v) => args.extend(["-t".to_string(), raw(v)]),
                ("debug_level", v) => args.extend(["-d".to_string(), raw(v)]),
                ("label", v) => args.extend(["-l".to_string(), raw(v)]),
                ("sectors", TypedValue::Int(n)) => sectors = Some(n.to_string()),
                (feat, TypedValue::Bool(true)) if sim::FEATURES.contains(&feat) => {
                    features.push(feat.to_string());
                }
                // `-O` has no `^feature` form: a disabled feature is
                // validate-only
                _ => return None,
            }
        }
        if !features.is_empty() {
            args.extend(["-O".to_string(), features.join(",")]);
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        args.extend(sectors);
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = MkfsF2fs::parse_typed(argv)?;
        let (device, report) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "mkfs.f2fs: {} sectors, {} segments, overprovision {}%",
                report.sectors, report.segment_count, report.overprovision
            ),
        })
    }
}

struct F2fsMountComponent;

impl Component for F2fsMountComponent {
    fn name(&self) -> &'static str {
        "f2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        mount::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        mount::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        F2fsMount::parse_typed(&argv.join(",")).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut tokens = Vec::new();
        for (name, value) in &cfg.values {
            match value {
                TypedValue::Bool(true) => tokens.push(name.clone()),
                // every f2fs boolean except norecovery has a real
                // `no<name>` spelling ("nonorecovery" does not exist)
                TypedValue::Bool(false)
                    if name != "norecovery" && mount::is_bool_token(name) =>
                {
                    tokens.push(format!("no{name}"));
                }
                TypedValue::Int(i) if mount::INT_TOKENS.contains(&name.as_str()) => {
                    tokens.push(format!("{name}={i}"));
                }
                TypedValue::Str(s)
                    if mount::ENUM_TOKENS.iter().any(|(n, _)| n == name) =>
                {
                    tokens.push(format!("{name}={s}"));
                }
                _ => return None,
            }
        }
        Some(tokens)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (cmd, _) = F2fsMount::parse_typed(&argv.join(","))?;
        let fs = cmd.run(dev)?;
        let readonly = fs.readonly();
        let device = fs.unmount().map_err(|e| ToolError::Refused(e.to_string()))?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "f2fs: mounted {}, unmounted clean",
                if readonly { "read-only" } else { "read-write" }
            ),
        })
    }
}

struct FsckF2fsComponent;

impl Component for FsckF2fsComponent {
    fn name(&self) -> &'static str {
        "fsck_f2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        fsck::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        fsck::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        FsckF2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("auto_fix", TypedValue::Bool(true)) => args.push("-a".to_string()),
                ("force", TypedValue::Bool(true)) => args.push("-f".to_string()),
                ("fix", TypedValue::Bool(true)) => args.push("-y".to_string()),
                ("preen", TypedValue::Bool(true)) => args.push("-p".to_string()),
                ("dry_run", TypedValue::Bool(true)) => args.push("-n".to_string()),
                ("debug_level", v) => args.extend(["-d".to_string(), raw(v)]),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = FsckF2fs::parse_typed(argv)?;
        let (device, report) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "fsck.f2fs: {} files, {}",
                report.files,
                if report.repaired {
                    "repaired"
                } else if report.clean_before {
                    "clean"
                } else {
                    "dirty (unchanged)"
                }
            ),
        })
    }
}

struct ResizeF2fsComponent;

impl Component for ResizeF2fsComponent {
    fn name(&self) -> &'static str {
        "resize_f2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        resize::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        resize::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        ResizeF2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("safe", TypedValue::Bool(true)) => args.push("-s".to_string()),
                ("force", TypedValue::Bool(true)) => args.push("-f".to_string()),
                ("target_sectors", v) => args.extend(["-t".to_string(), raw(v)]),
                ("debug_level", v) => args.extend(["-d".to_string(), raw(v)]),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = ResizeF2fs::parse_typed(argv)?;
        let (device, report) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "resize.f2fs: {} -> {} sectors ({} segments)",
                report.old_sectors, report.new_sectors, report.segment_count
            ),
        })
    }
}

struct DumpF2fsComponent;

impl Component for DumpF2fsComponent {
    fn name(&self) -> &'static str {
        "dump_f2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        dump::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        dump::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        DumpF2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("inspect_file", v) => args.extend(["-i".to_string(), raw(v)]),
                ("segment", v) => args.extend(["-s".to_string(), raw(v)]),
                ("block", v) => args.extend(["-b".to_string(), raw(v)]),
                ("debug_level", v) => args.extend(["-d".to_string(), raw(v)]),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = DumpF2fs::parse_typed(argv)?;
        let summary = tool.run(&dev)?;
        Ok(RunOutcome { device: dev, summary })
    }
}

/// All f2fs ecosystem components, in stage order (create → mount →
/// offline).
pub fn ecosystem() -> Vec<Box<dyn Component>> {
    vec![
        Box::new(MkfsF2fsComponent),
        Box::new(F2fsMountComponent),
        Box::new(FsckF2fsComponent),
        Box::new(ResizeF2fsComponent),
        Box::new(DumpF2fsComponent),
    ]
}

/// Looks up an f2fs component by name, accepting both the underscore
/// identifier (`mkfs_f2fs`) and the dotted real-world spelling
/// (`mkfs.f2fs`).
pub fn component(name: &str) -> Option<Box<dyn Component>> {
    let canonical = name.replace('.', "_");
    ecosystem().into_iter().find(|c| c.name() == canonical)
}

/// The full f2fs `ParamSpec` registry.
///
/// # Panics
///
/// Panics if two specs share a `(component, name)` pair — the same
/// duplicate-registration guard as `e2fstools::registry`.
pub fn registry() -> Vec<ParamSpec> {
    let mut specs = Vec::new();
    for c in ecosystem() {
        specs.extend(c.param_specs());
    }
    let mut seen = std::collections::BTreeSet::new();
    for spec in &specs {
        assert!(
            seen.insert((spec.component.clone(), spec.name.clone())),
            "duplicate ParamSpec registration: {}:{}",
            spec.component,
            spec.name
        );
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> MemDevice {
        MemDevice::new(4096, 8192)
    }

    #[test]
    fn registry_has_no_duplicates_and_covers_components() {
        let specs = registry();
        assert!(specs.len() >= 40);
        for name in crate::COMPONENTS {
            assert!(specs.iter().any(|s| s.component == name), "no specs for {name}");
        }
    }

    #[test]
    fn dotted_spellings_resolve() {
        assert_eq!(component("mkfs.f2fs").unwrap().name(), "mkfs_f2fs");
        assert_eq!(component("fsck_f2fs").unwrap().name(), "fsck_f2fs");
        assert_eq!(component("f2fs").unwrap().name(), "f2fs");
        assert!(component("mke2fs").is_none());
    }

    #[test]
    fn full_lifecycle_through_the_trait() {
        let mkfs = component("mkfs_f2fs").unwrap();
        let out = mkfs.run(&["-O", "extra_attr", "/dev/x"], fresh()).unwrap();
        let mount = component("f2fs").unwrap();
        let out = mount.run(&["discard", "active_logs=4"], out.device).unwrap();
        let fsck = component("fsck_f2fs").unwrap();
        let out = fsck.run(&["-f", "/dev/x"], out.device).unwrap();
        let resize = component("resize_f2fs").unwrap();
        let out = resize.run(&["-t", "131072", "/dev/x"], out.device).unwrap();
        let dump = component("dump_f2fs").unwrap();
        let out = dump.run(&["/dev/x"], out.device).unwrap();
        assert!(out.summary.contains("131072 sectors"));
    }

    #[test]
    fn parse_render_round_trips() {
        for (name, argv) in [
            ("mkfs_f2fs", vec!["-w", "4096", "-s", "2", "-O", "extra_attr", "/dev/x"]),
            ("f2fs", vec!["ro", "active_logs=4", "background_gc=sync", "nobarrier"]),
            ("fsck_f2fs", vec!["-a", "-d", "3", "/dev/x"]),
            ("resize_f2fs", vec!["-s", "-t", "131072", "/dev/x"]),
            ("dump_f2fs", vec!["-s", "3", "/dev/x"]),
        ] {
            let c = component(name).unwrap();
            let cfg = c.parse_config(&argv).unwrap();
            let rendered = c.render_args(&cfg).unwrap_or_else(|| panic!("{name} render"));
            let rendered: Vec<&str> = rendered.iter().map(String::as_str).collect();
            let reparsed = c.parse_config(&rendered).unwrap();
            assert_eq!(cfg, reparsed, "round trip for {name}");
        }
    }
}
