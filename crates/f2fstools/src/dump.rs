//! A simulated `dump.f2fs`: a read-only inspector for f2fs images.

use blockdev::MemDevice;
use e2fstools::cli::{self, CliError};
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, ParamType, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::ToolError;

use crate::sim::{self, SEGMENT_BYTES};

const FLAG_OPTS: [&str; 0] = [];
const VALUE_OPTS: [&str; 4] = ["i", "s", "b", "d"];

/// A parsed-and-validated `dump.f2fs` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DumpF2fs {
    /// `-i`: dump the named file's metadata.
    pub inspect_file: Option<String>,
    /// `-s`: dump one segment's summary.
    pub segment: Option<u64>,
    /// `-b`: dump one block.
    pub block: Option<u64>,
    /// `-d`: debug verbosity, 0..=10.
    pub debug_level: u64,
    /// The device operand.
    pub device: String,
}

impl DumpF2fs {
    /// Parses a `dump.f2fs` command line.
    ///
    /// # Errors
    ///
    /// [`ToolError::Cli`] for unknown options, bad values, and operand
    /// problems.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let p = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        let mut d = DumpF2fs {
            inspect_file: p.value("i").map(str::to_string),
            segment: p.int_value("s")?,
            block: p.int_value("b")?,
            ..DumpF2fs::default()
        };
        if let Some(l) = p.int_value("d")? {
            if l > 10 {
                return Err(CliError::BadValue {
                    option: "-d".to_string(),
                    value: l.to_string(),
                    expected: "between 0 and 10".to_string(),
                }
                .into());
            }
            d.debug_level = l;
        }
        match p.operands.len() {
            1 => d.device = p.operands[0].clone(),
            0 => return Err(CliError::BadOperands("device required".to_string()).into()),
            _ => return Err(CliError::BadOperands("too many operands".to_string()).into()),
        }
        Ok(d)
    }

    /// [`DumpF2fs::from_args`] plus the canonical [`TypedConfig`]
    /// lowering.
    ///
    /// # Errors
    ///
    /// Exactly those of [`DumpF2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let d = Self::from_args(argv)?;
        let mut cfg = TypedConfig::new("dump_f2fs");
        if let Some(f) = &d.inspect_file {
            cfg.set_str("inspect_file", f);
        }
        if let Some(s) = d.segment {
            cfg.set_int("segment", s as i64);
        }
        if let Some(b) = d.block {
            cfg.set_int("block", b as i64);
        }
        if d.debug_level != 0 {
            cfg.set_int("debug_level", d.debug_level as i64);
        }
        cfg.operands.push(d.device.clone());
        Ok((d, cfg))
    }

    /// Inspects the image on `dev`, never writing.
    ///
    /// # Errors
    ///
    /// [`ToolError::Refused`] for a missing image, a segment or block
    /// outside the recorded geometry, or an unknown file.
    pub fn run(&self, dev: &MemDevice) -> Result<String, ToolError> {
        let sb = sim::read_superblock(dev).map_err(|e| ToolError::Refused(e.to_string()))?;
        let mut out = format!(
            "f2fs image '{}': {} sectors of {} bytes, {} segments, overprovision {}%, features [{}]",
            sb.label,
            sb.sectors,
            sb.sector_size,
            sb.segment_count,
            sb.overprovision,
            sb.features.join(","),
        );
        // geometry checks against the format-time configuration
        if let Some(seg) = self.segment {
            if seg >= sb.segment_count {
                return Err(ToolError::Refused(format!(
                    "segment {seg} is outside the image ({} segments)",
                    sb.segment_count
                )));
            }
            out.push_str(&format!("\nsegment {seg}: {SEGMENT_BYTES} bytes"));
        }
        if let Some(blk) = self.block {
            let blocks = sb.segment_count * SEGMENT_BYTES / 4096;
            if blk >= blocks {
                return Err(ToolError::Refused(format!(
                    "block {blk} is outside the image ({blocks} blocks)"
                )));
            }
            out.push_str(&format!("\nblock {blk}: in segment {}", blk * 4096 / SEGMENT_BYTES));
        }
        if let Some(path) = &self.inspect_file {
            match sb.files.get(path) {
                Some(len) => out.push_str(&format!("\nfile {path}: {len} bytes")),
                None => {
                    return Err(ToolError::Refused(format!("no such file in image: {path}")));
                }
            }
        }
        Ok(out)
    }
}

/// The `dump.f2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "dump_f2fs";
    vec![
        ParamSpec::new(c, "inspect_file", ParamType::Str, Stage::Offline, "dump one file's metadata (-i)"),
        ParamSpec::new(
            c,
            "segment",
            ParamType::Int { min: 0, max: i64::MAX },
            Stage::Offline,
            "dump one segment summary (-s)",
        ),
        ParamSpec::new(
            c,
            "block",
            ParamType::Int { min: 0, max: i64::MAX },
            Stage::Offline,
            "dump one block (-b)",
        ),
        ParamSpec::new(c, "debug_level", ParamType::Int { min: 0, max: 10 }, Stage::Offline, "debug verbosity (-d)"),
    ]
}

/// The structured `dump.f2fs` manual page. That `-s`/`-b` must fall
/// inside the *recorded* geometry (a cross-component fact) is a
/// deliberate gap.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "dump_f2fs".to_string(),
        synopsis: "dump.f2fs [-i file] [-s segment] [-b block] [-d level] device".to_string(),
        description: "Inspect an f2fs image without modifying it.".to_string(),
        options: vec![
            ManualOption::valued("-i", "file", "Dump the named file's metadata."),
            ManualOption::valued("-s", "segment", "Dump one segment's summary information.")
                .with(DocConstraint::DataType { param: "segment".into(), ty: "integer".into() }),
            // GAP(f2fs): -s/-b must be inside the geometry written by
            // mkfs.f2fs — undocumented cross-component constraint.
            ManualOption::valued("-b", "block", "Dump one block.")
                .with(DocConstraint::DataType { param: "block".into(), ty: "integer".into() }),
            ManualOption::valued("-d", "level", "Debug verbosity, between 0 and 10.")
                .with(DocConstraint::DataType { param: "debug_level".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "debug_level".into(), min: 0, max: 10 }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::MkfsF2fs;
    use crate::mount::F2fsMount;

    fn image() -> MemDevice {
        let m = MkfsF2fs::from_args(&["-l", "demo", "/dev/x"]).unwrap();
        m.run(MemDevice::new(4096, 8192)).unwrap().0
    }

    #[test]
    fn dumps_superblock_summary() {
        let d = DumpF2fs::from_args(&["/dev/x"]).unwrap();
        let out = d.run(&image()).unwrap();
        assert!(out.contains("demo"));
        assert!(out.contains("16 segments"));
    }

    #[test]
    fn geometry_bounds_enforced() {
        let dev = image();
        assert!(DumpF2fs::from_args(&["-s", "15", "/dev/x"]).unwrap().run(&dev).is_ok());
        assert!(DumpF2fs::from_args(&["-s", "16", "/dev/x"]).unwrap().run(&dev).is_err());
        assert!(DumpF2fs::from_args(&["-b", "999999", "/dev/x"]).unwrap().run(&dev).is_err());
    }

    #[test]
    fn inspects_files_written_through_mount() {
        let mut fs = F2fsMount::from_option_string("").unwrap().run(image()).unwrap();
        fs.create("/log").unwrap();
        fs.write("/log", b"hello").unwrap();
        let dev = fs.unmount().unwrap();
        let out = DumpF2fs::from_args(&["-i", "/log", "/dev/x"]).unwrap().run(&dev).unwrap();
        assert!(out.contains("5 bytes"));
        assert!(DumpF2fs::from_args(&["-i", "/nope", "/dev/x"]).unwrap().run(&dev).is_err());
    }

    #[test]
    fn typed_view_lowering() {
        let (_, cfg) = DumpF2fs::parse_typed(&["-s", "3", "-d", "2", "/dev/x"]).unwrap();
        assert_eq!(cfg.component, "dump_f2fs");
        assert_eq!(cfg.get_int("segment"), Some(3));
        assert_eq!(cfg.get_int("debug_level"), Some(2));
    }
}
