//! The abstract syntax tree produced by the parser.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum UnOp {
    /// `!`
    Not,
    /// unary `-`
    Neg,
}

/// Literals.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Boolean (`true`/`false` identifiers).
    Bool(bool),
    /// String.
    Str(String),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal value.
    Lit(Literal),
    /// A variable or parameter reference.
    Var(String),
    /// `structname.field` — metadata access.
    Field {
        /// Metadata struct name.
        strct: String,
        /// Field name.
        field: String,
    },
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A call `name(args...)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = e;` or `x = e;` (CIR treats them alike; first assignment
    /// declares).
    Assign {
        /// Destination variable.
        name: String,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `strct.field = e;` — a metadata write.
    FieldAssign {
        /// Metadata struct name.
        strct: String,
        /// Field.
        field: String,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) { ... } else { ... }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `fail("msg");` — an error/abort path.
    Fail {
        /// Message.
        msg: String,
        /// Source line.
        line: u32,
    },
    /// `return;`
    Return {
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `component name;`
    Component(String),
    /// `metadata name { field, field, ... }`
    Metadata {
        /// Struct name.
        name: String,
        /// Field names.
        fields: Vec<String>,
    },
    /// `param <ty> name = source("key");`
    Param {
        /// Parameter name.
        name: String,
        /// Declared type (`int`, `bool`, `str`, `size`, `enum`).
        ty: String,
        /// Source kind (`option`, `feature`, `operand`).
        source: String,
        /// Source key (the CLI spelling).
        key: String,
    },
    /// `fn name() { ... }`
    Function {
        /// Function name.
        name: String,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A parsed program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_predicate() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }
}
