//! AST → IR lowering: expression flattening to three-address form and
//! structured control flow to a CFG.

use std::collections::BTreeMap;

use crate::ast::{Expr, Item, Literal, Program as Ast, Stmt};
use crate::ir::{
    BasicBlock, BlockId, Function, Instr, MetadataStruct, Operand, ParamDecl, ParamSource,
    ParamTy, Program, Rvalue, Terminator, VarId,
};
use crate::CirError;

struct Ctx {
    vars: Vec<String>,
    by_name: BTreeMap<String, VarId>,
    temp_counter: u32,
    metadata: Vec<MetadataStruct>,
}

impl Ctx {
    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    fn temp(&mut self) -> VarId {
        let name = format!("%t{}", self.temp_counter);
        self.temp_counter += 1;
        self.var(&name)
    }

    fn check_field(&self, strct: &str, field: &str) -> Result<(), CirError> {
        let s = self
            .metadata
            .iter()
            .find(|m| m.name == strct)
            .ok_or_else(|| CirError::Lower(format!("unknown metadata struct '{strct}'")))?;
        if !s.fields.iter().any(|f| f == field) {
            return Err(CirError::Lower(format!("metadata struct '{strct}' has no field '{field}'")));
        }
        Ok(())
    }
}

struct FnBuilder {
    blocks: Vec<BasicBlock>,
    cur: BlockId,
}

impl FnBuilder {
    fn new() -> Self {
        FnBuilder {
            blocks: vec![BasicBlock { id: BlockId(0), instrs: Vec::new(), term: Terminator::Return }],
            cur: BlockId(0),
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { id, instrs: Vec::new(), term: Terminator::Return });
        id
    }

    fn push(&mut self, instr: Instr) {
        self.blocks[self.cur.0 as usize].instrs.push(instr);
    }

    fn set_term(&mut self, term: Terminator) {
        self.blocks[self.cur.0 as usize].term = term;
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }
}

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns [`CirError::Lower`] for missing/duplicate components, unknown
/// types or sources, and references to undeclared metadata fields.
pub fn lower(ast: &Ast) -> Result<Program, CirError> {
    let mut component: Option<String> = None;
    let mut ctx = Ctx {
        vars: Vec::new(),
        by_name: BTreeMap::new(),
        temp_counter: 0,
        metadata: Vec::new(),
    };
    let mut params: Vec<ParamDecl> = Vec::new();

    // first pass: declarations
    for item in &ast.items {
        match item {
            Item::Component(name) => {
                if component.is_some() {
                    return Err(CirError::Lower("duplicate 'component' declaration".to_string()));
                }
                component = Some(name.clone());
            }
            Item::Metadata { name, fields } => {
                if ctx.metadata.iter().any(|m| &m.name == name) {
                    return Err(CirError::Lower(format!("duplicate metadata struct '{name}'")));
                }
                ctx.metadata.push(MetadataStruct { name: name.clone(), fields: fields.clone() });
            }
            Item::Param { name, ty, source, key } => {
                if params.iter().any(|p| &p.name == name) {
                    return Err(CirError::Lower(format!("duplicate parameter '{name}'")));
                }
                let ty = ParamTy::parse(ty)
                    .ok_or_else(|| CirError::Lower(format!("unknown parameter type '{ty}'")))?;
                let source = ParamSource::parse(source)
                    .ok_or_else(|| CirError::Lower(format!("unknown parameter source '{source}'")))?;
                let var = ctx.var(name);
                params.push(ParamDecl { name: name.clone(), ty, source, key: key.clone(), var });
            }
            Item::Function { .. } => {}
        }
    }

    let component =
        component.ok_or_else(|| CirError::Lower("missing 'component' declaration".to_string()))?;

    // second pass: function bodies
    let mut functions = Vec::new();
    for item in &ast.items {
        if let Item::Function { name, body } = item {
            if functions.iter().any(|f: &Function| &f.name == name) {
                return Err(CirError::Lower(format!("duplicate function '{name}'")));
            }
            let mut fb = FnBuilder::new();
            lower_stmts(body, &mut ctx, &mut fb)?;
            functions.push(Function { name: name.clone(), blocks: fb.blocks, entry: BlockId(0) });
        }
    }

    Ok(Program { component, metadata: ctx.metadata, params, functions, vars: ctx.vars })
}

fn lower_stmts(stmts: &[Stmt], ctx: &mut Ctx, fb: &mut FnBuilder) -> Result<(), CirError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { name, value, line } => {
                let rv = lower_expr_rv(value, ctx, fb, *line)?;
                let dst = ctx.var(name);
                fb.push(Instr::Assign { dst, value: rv, line: *line });
            }
            Stmt::FieldAssign { strct, field, value, line } => {
                ctx.check_field(strct, field)?;
                let op = lower_expr_op(value, ctx, fb, *line)?;
                fb.push(Instr::MetaWrite {
                    strct: strct.clone(),
                    field: field.clone(),
                    src: op,
                    line: *line,
                });
            }
            Stmt::Fail { msg, line } => {
                fb.push(Instr::Fail { msg: msg.clone(), line: *line });
                fb.set_term(Terminator::Abort);
                // anything after a fail in the same block is unreachable;
                // start a fresh block so lowering can continue
                let next = fb.new_block();
                fb.switch_to(next);
            }
            Stmt::Return { .. } => {
                fb.set_term(Terminator::Return);
                let next = fb.new_block();
                fb.switch_to(next);
            }
            Stmt::ExprStmt { expr, line } => match expr {
                Expr::Call { name, args } => {
                    let args = args
                        .iter()
                        .map(|a| lower_expr_op(a, ctx, fb, *line))
                        .collect::<Result<Vec<_>, _>>()?;
                    fb.push(Instr::CallStmt { name: name.clone(), args, line: *line });
                }
                other => {
                    // evaluate for effect (no-op), still lower operands
                    let _ = lower_expr_op(other, ctx, fb, *line)?;
                }
            },
            Stmt::If { cond, then_body, else_body, line } => {
                let cond_op = lower_expr_op(cond, ctx, fb, *line)?;
                let then_bb = fb.new_block();
                let else_bb = fb.new_block();
                let join_bb = fb.new_block();
                fb.set_term(Terminator::Branch { cond: cond_op, then_bb, else_bb, line: *line });
                fb.switch_to(then_bb);
                lower_stmts(then_body, ctx, fb)?;
                fb.set_term_if_default(Terminator::Goto(join_bb));
                fb.switch_to(else_bb);
                lower_stmts(else_body, ctx, fb)?;
                fb.set_term_if_default(Terminator::Goto(join_bb));
                fb.switch_to(join_bb);
            }
        }
    }
    Ok(())
}

impl FnBuilder {
    /// Sets the terminator only when the block still carries the default
    /// `Return` (i.e., no `fail`/`return` already ended it).
    fn set_term_if_default(&mut self, term: Terminator) {
        let cur = &mut self.blocks[self.cur.0 as usize];
        if cur.term == Terminator::Return {
            cur.term = term;
        }
    }
}

fn lower_expr_rv(e: &Expr, ctx: &mut Ctx, fb: &mut FnBuilder, line: u32) -> Result<Rvalue, CirError> {
    Ok(match e {
        Expr::Lit(l) => Rvalue::Use(lit_op(l)),
        Expr::Var(name) => Rvalue::Use(Operand::Var(ctx.var(name))),
        Expr::Field { strct, field } => {
            ctx.check_field(strct, field)?;
            Rvalue::MetaRead { strct: strct.clone(), field: field.clone() }
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = lower_expr_op(lhs, ctx, fb, line)?;
            let r = lower_expr_op(rhs, ctx, fb, line)?;
            Rvalue::Bin { op: *op, lhs: l, rhs: r }
        }
        Expr::Un { op, expr } => {
            let o = lower_expr_op(expr, ctx, fb, line)?;
            Rvalue::Un { op: *op, operand: o }
        }
        Expr::Call { name, args } => {
            let args = args
                .iter()
                .map(|a| lower_expr_op(a, ctx, fb, line))
                .collect::<Result<Vec<_>, _>>()?;
            Rvalue::Call { name: name.clone(), args }
        }
    })
}

fn lower_expr_op(e: &Expr, ctx: &mut Ctx, fb: &mut FnBuilder, line: u32) -> Result<Operand, CirError> {
    Ok(match e {
        Expr::Lit(l) => lit_op(l),
        Expr::Var(name) => Operand::Var(ctx.var(name)),
        other => {
            let rv = lower_expr_rv(other, ctx, fb, line)?;
            let t = ctx.temp();
            fb.push(Instr::Assign { dst: t, value: rv, line });
            Operand::Var(t)
        }
    })
}

fn lit_op(l: &Literal) -> Operand {
    match l {
        Literal::Int(v) => Operand::ConstInt(*v),
        Literal::Bool(b) => Operand::ConstBool(*b),
        Literal::Str(s) => Operand::ConstStr(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn lowers_params_and_metadata() {
        let p = compile(
            r#"
            component mke2fs;
            metadata sb { s_blocks_count, s_log_block_size }
            param int blocksize = option("-b");
            param bool sparse_super2 = feature("sparse_super2");
            fn main() { sb.s_blocks_count = 100; }
            "#,
        )
        .unwrap();
        assert_eq!(p.component, "mke2fs");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].ty, ParamTy::Int);
        assert_eq!(p.params[1].source, ParamSource::Feature);
        assert_eq!(p.metadata[0].fields.len(), 2);
        assert!(p.param("blocksize").is_some());
        assert!(p.param("nope").is_none());
    }

    #[test]
    fn if_produces_branch_cfg() {
        let p = compile(
            r#"
            component c;
            param int x = option("-x");
            fn f() {
                if (x < 10) { fail("small"); }
                x = x + 1;
            }
            "#,
        )
        .unwrap();
        let f = p.function("f").unwrap();
        // entry block ends in a Branch
        let entry = f.block(f.entry);
        assert!(matches!(entry.term, Terminator::Branch { .. }));
        // then-branch aborts
        if let Terminator::Branch { then_bb, else_bb, .. } = entry.term {
            assert!(f.always_fails(then_bb));
            assert!(!f.always_fails(else_bb));
            assert!(f.reaches_fail(f.entry));
        }
    }

    #[test]
    fn three_address_flattening() {
        let p = compile(
            r#"
            component c;
            param int a = option("-a");
            fn f() { x = a + 2 * 3; }
            "#,
        )
        .unwrap();
        let f = p.function("f").unwrap();
        // 2*3 must be hoisted into a temp
        let instrs = &f.block(f.entry).instrs;
        assert_eq!(instrs.len(), 2);
        assert!(matches!(
            &instrs[0],
            Instr::Assign { value: Rvalue::Bin { op: crate::BinOp::Mul, .. }, .. }
        ));
    }

    #[test]
    fn unknown_metadata_field_rejected() {
        let err = compile(
            r#"
            component c;
            metadata sb { a }
            fn f() { sb.b = 1; }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no field"));
        let err = compile(
            r#"
            component c;
            fn f() { gd.b = 1; }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown metadata struct"));
    }

    #[test]
    fn missing_component_rejected() {
        assert!(compile("fn f() { x = 1; }").is_err());
    }

    #[test]
    fn duplicates_rejected() {
        assert!(compile("component a; component b;").is_err());
        assert!(compile(r#"component a; param int x = option("x"); param int x = option("y");"#).is_err());
        assert!(compile("component a; fn f() { } fn f() { }").is_err());
        assert!(compile("component a; metadata m { x } metadata m { y }").is_err());
    }

    #[test]
    fn bad_param_type_or_source_rejected() {
        assert!(compile(r#"component a; param float x = option("x");"#).is_err());
        assert!(compile(r#"component a; param int x = env("x");"#).is_err());
    }

    #[test]
    fn return_statement_terminates_block() {
        let p = compile(
            r#"
            component c;
            fn f() {
                if (x == 1) { return; }
                y = 2;
            }
            "#,
        )
        .unwrap();
        let f = p.function("f").unwrap();
        if let Terminator::Branch { then_bb, .. } = f.block(f.entry).term {
            assert_eq!(f.block(then_bb).term, Terminator::Return);
        } else {
            panic!("expected branch");
        }
    }

    #[test]
    fn call_statement_lowered() {
        let p = compile(
            r#"
            component c;
            param int x = option("x");
            fn f() { warn("msg", x); }
            "#,
        )
        .unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(&f.block(f.entry).instrs[0], Instr::CallStmt { name, .. } if name == "warn"));
    }

    #[test]
    fn display_renders() {
        let p = compile(r#"component c; param int x = option("x"); fn f() { }"#).unwrap();
        let s = p.to_string();
        assert!(s.contains("component c;"));
        assert!(s.contains("param int x"));
    }

    #[test]
    fn fail_in_both_arms_always_fails() {
        let p = compile(
            r#"
            component c;
            param int x = option("x");
            fn f() {
                if (x < 1) { fail("a"); } else { fail("b"); }
            }
            "#,
        )
        .unwrap();
        let f = p.function("f").unwrap();
        assert!(f.always_fails(f.entry));
    }
}
