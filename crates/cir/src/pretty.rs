//! Human-readable rendering of the IR — the equivalent of
//! `llvm-dis` output, used for debugging models and in analyzer
//! diagnostics.

use std::fmt::Write as _;

use crate::ast::{BinOp, UnOp};
use crate::ir::{Function, Instr, Operand, Program, Rvalue, Terminator};

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn operand(program: &Program, o: &Operand) -> String {
    match o {
        Operand::Var(v) => program.var_name(*v).to_string(),
        Operand::ConstInt(k) => k.to_string(),
        Operand::ConstBool(b) => b.to_string(),
        Operand::ConstStr(s) => format!("{s:?}"),
    }
}

fn rvalue(program: &Program, rv: &Rvalue) -> String {
    match rv {
        Rvalue::Use(o) => operand(program, o),
        Rvalue::Bin { op, lhs, rhs } => {
            format!("{} {} {}", operand(program, lhs), op_str(*op), operand(program, rhs))
        }
        Rvalue::Un { op, operand: o } => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            };
            format!("{sym}{}", operand(program, o))
        }
        Rvalue::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| operand(program, a)).collect();
            format!("{name}({})", args.join(", "))
        }
        Rvalue::MetaRead { strct, field } => format!("{strct}.{field}"),
    }
}

/// Renders one function's CFG as text.
pub fn function_to_string(program: &Program, f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {}() {{", f.name);
    for block in &f.blocks {
        let _ = writeln!(out, "  bb{}:", block.id.0);
        for instr in &block.instrs {
            match instr {
                Instr::Assign { dst, value, line } => {
                    let _ = writeln!(
                        out,
                        "    {} = {}    ; line {line}",
                        program.var_name(*dst),
                        rvalue(program, value)
                    );
                }
                Instr::MetaWrite { strct, field, src, line } => {
                    let _ = writeln!(
                        out,
                        "    {strct}.{field} <- {}    ; line {line}",
                        operand(program, src)
                    );
                }
                Instr::CallStmt { name, args, line } => {
                    let args: Vec<String> = args.iter().map(|a| operand(program, a)).collect();
                    let _ = writeln!(out, "    {name}({})    ; line {line}", args.join(", "));
                }
                Instr::Fail { msg, line } => {
                    let _ = writeln!(out, "    fail {msg:?}    ; line {line}");
                }
            }
        }
        match &block.term {
            Terminator::Goto(b) => {
                let _ = writeln!(out, "    goto bb{}", b.0);
            }
            Terminator::Branch { cond, then_bb, else_bb, .. } => {
                let _ = writeln!(
                    out,
                    "    br {} ? bb{} : bb{}",
                    operand(program, cond),
                    then_bb.0,
                    else_bb.0
                );
            }
            Terminator::Return => {
                let _ = writeln!(out, "    return");
            }
            Terminator::Abort => {
                let _ = writeln!(out, "    abort");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole program (params, metadata, every function).
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "component {};", program.component);
    for m in &program.metadata {
        let _ = writeln!(out, "metadata {} {{ {} }}", m.name, m.fields.join(", "));
    }
    for p in &program.params {
        let _ = writeln!(
            out,
            "param {} {} = {:?}({:?});",
            p.ty.as_str(),
            p.name,
            p.source,
            p.key
        );
    }
    for f in &program.functions {
        out.push_str(&function_to_string(program, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn renders_a_model() {
        let p = compile(
            r#"
            component demo;
            metadata sb { s_blocks_count }
            param int size = option("size");
            fn main() {
                if (size < 64) { fail("too small"); }
                sb.s_blocks_count = size;
                log("done", size);
            }
            "#,
        )
        .unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("component demo;"));
        assert!(s.contains("metadata sb { s_blocks_count }"));
        assert!(s.contains("param int size"));
        assert!(s.contains("size < 64"));
        assert!(s.contains("fail \"too small\""));
        assert!(s.contains("sb.s_blocks_count <- size"));
        assert!(s.contains("log(\"done\", size)"));
        assert!(s.contains("br "));
        assert!(s.contains("abort"));
    }

    #[test]
    fn renders_every_operator() {
        let p = compile(
            r#"
            component ops;
            fn f() {
                a = 1 + 2; b = a - 1; c = b * 2; d = c / 2; e = d % 3;
                x = a == b; y = a != b; z = a < b; w = a <= b;
                u = a > b; v = a >= b;
                n = !x; m = -a;
            }
            "#,
        )
        .unwrap();
        let s = program_to_string(&p);
        for needle in ["+", "- 1", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "!x", "-a"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn round_trips_through_the_real_models_without_panic() {
        // rendering must work for arbitrary well-formed programs
        let src = r#"
            component c;
            param bool f1 = feature("f1");
            param bool f2 = feature("f2");
            fn g() {
                if (f1 && !f2) { fail("x"); } else { ok(f1); }
                return;
            }
        "#;
        let p = compile(src).unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("goto") || s.contains("return"));
    }
}
