//! Def-use indices over a compiled [`Program`] — the substrate of the
//! worklist-driven taint engine.
//!
//! The naive analysis sweeps every instruction of every function until
//! a global fixpoint; a worklist engine instead re-visits only the
//! instructions whose inputs changed, which requires knowing, for each
//! variable, *where it is defined and used*. This module builds those
//! maps once per program:
//!
//! * [`FunctionIndex`] — per function: the assignment sites in program
//!   order, plus `VarId → defining sites` and `VarId → using sites`;
//! * [`ProgramIndex`] — the per-function indices under a single
//!   function-major global site numbering, plus the **cross-function
//!   edge map** (`VarId → using sites in every function`) that the
//!   inter-procedural mode propagates along: CIR variables are
//!   program-global, so a variable assigned in one function and read in
//!   another is exactly a flow through a shared global.

use crate::ir::{Function, Instr, Program, Rvalue, VarId};

/// Location of one `Assign` instruction inside its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRef {
    /// Index into [`Function::blocks`].
    pub block: usize,
    /// Index into the block's `instrs`.
    pub instr: usize,
}

/// Def-use index of a single function.
#[derive(Debug, Clone, Default)]
pub struct FunctionIndex {
    /// Every `Assign` instruction, in block-major program order — the
    /// order a sequential sweep visits them.
    pub sites: Vec<SiteRef>,
    /// `VarId → indices into `sites`` of the assignments *defining* the
    /// variable, in program order.
    def_sites: Vec<Vec<u32>>,
    /// `VarId → indices into `sites`` of the assignments whose rvalue
    /// *reads* the variable, in program order.
    use_sites: Vec<Vec<u32>>,
}

impl FunctionIndex {
    fn build(f: &Function, var_count: usize) -> FunctionIndex {
        let mut idx = FunctionIndex {
            sites: Vec::new(),
            def_sites: vec![Vec::new(); var_count],
            use_sites: vec![Vec::new(); var_count],
        };
        for (bi, block) in f.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                let Instr::Assign { dst, value, .. } = instr else { continue };
                let site = idx.sites.len() as u32;
                idx.sites.push(SiteRef { block: bi, instr: ii });
                idx.def_sites[dst.0 as usize].push(site);
                for op in value.operands() {
                    if let Some(v) = op.as_var() {
                        let uses = &mut idx.use_sites[v.0 as usize];
                        // an rvalue reading the same var twice is one site
                        if uses.last() != Some(&site) {
                            uses.push(site);
                        }
                    }
                }
            }
        }
        idx
    }

    /// The sites (indices into [`FunctionIndex::sites`]) defining `v`,
    /// in program order.
    pub fn defs_of(&self, v: VarId) -> &[u32] {
        self.def_sites.get(v.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// The sites (indices into [`FunctionIndex::sites`]) whose rvalue
    /// reads `v`, in program order.
    pub fn uses_of(&self, v: VarId) -> &[u32] {
        self.use_sites.get(v.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Resolves a site index to the instruction's destination, rvalue
    /// and line.
    ///
    /// # Panics
    ///
    /// Panics when `site` is out of range or the indexed instruction is
    /// not an `Assign` (both impossible for indices produced by this
    /// index over the same function).
    pub fn resolve<'f>(&self, f: &'f Function, site: u32) -> (VarId, &'f Rvalue, u32) {
        let s = self.sites[site as usize];
        match &f.blocks[s.block].instrs[s.instr] {
            Instr::Assign { dst, value, line } => (*dst, value, *line),
            other => panic!("site {site} is not an Assign: {other:?}"),
        }
    }
}

/// Def-use index of a whole program, with a global site numbering.
///
/// Global site `g` belongs to function `fi` when
/// `offsets[fi] <= g < offsets[fi] + functions[fi].sites.len()`;
/// function-major numbering makes global order coincide with the
/// order a full Gauss–Seidel sweep visits the instructions, which the
/// worklist engine relies on to reproduce the sweep byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct ProgramIndex {
    /// Per-function indices, parallel to [`Program::functions`].
    pub functions: Vec<FunctionIndex>,
    /// Global site number of each function's first site.
    pub offsets: Vec<u32>,
    /// The cross-function edge map: `VarId → global site numbers` of
    /// every assignment (in any function) reading the variable. This is
    /// what carries taints across function boundaries in the
    /// inter-procedural mode.
    cross_uses: Vec<Vec<u32>>,
}

impl ProgramIndex {
    /// Builds the index for `program`.
    pub fn build(program: &Program) -> ProgramIndex {
        let var_count = program.vars.len();
        let mut functions = Vec::with_capacity(program.functions.len());
        let mut offsets = Vec::with_capacity(program.functions.len());
        let mut cross_uses: Vec<Vec<u32>> = vec![Vec::new(); var_count];
        let mut base = 0u32;
        for f in &program.functions {
            let idx = FunctionIndex::build(f, var_count);
            offsets.push(base);
            for (v, uses) in idx.use_sites.iter().enumerate() {
                cross_uses[v].extend(uses.iter().map(|s| base + s));
            }
            base += idx.sites.len() as u32;
            functions.push(idx);
        }
        ProgramIndex { functions, offsets, cross_uses }
    }

    /// Total number of assignment sites across all functions.
    pub fn site_count(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }

    /// The global site numbers of every assignment reading `v`, across
    /// all functions, in global order.
    pub fn cross_uses_of(&self, v: VarId) -> &[u32] {
        self.cross_uses.get(v.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// The function owning a global site number.
    pub fn function_of(&self, global_site: u32) -> usize {
        match self.offsets.binary_search(&global_site) {
            Ok(fi) => {
                // several empty functions can share an offset; take the
                // last function starting here (the one with sites)
                let mut fi = fi;
                while fi + 1 < self.offsets.len() && self.offsets[fi + 1] == global_site {
                    fi += 1;
                }
                fi
            }
            Err(ins) => ins - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SRC: &str = r#"
        component c;
        metadata sb { f }
        param int p = option("-p");
        fn a() {
            x = p + 1;
            y = x * x;
        }
        fn b() {
            z = y;
            sb.f = z;
            if (z > 3) { fail("big"); }
        }
    "#;

    #[test]
    fn function_index_tracks_defs_and_uses() {
        let prog = compile(SRC).unwrap();
        let idx = ProgramIndex::build(&prog);
        assert_eq!(idx.functions.len(), 2);
        let fa = &idx.functions[0];
        let x = prog.vars.iter().position(|n| n == "x").map(|i| VarId(i as u32)).unwrap();
        let y = prog.vars.iter().position(|n| n == "y").map(|i| VarId(i as u32)).unwrap();
        assert_eq!(fa.defs_of(x).len(), 1);
        // y = x * x reads x at one site (deduplicated)
        assert_eq!(fa.uses_of(x).len(), 1);
        let (dst, rv, _) = fa.resolve(&prog.functions[0], fa.defs_of(y)[0]);
        assert_eq!(dst, y);
        assert!(matches!(rv, Rvalue::Bin { .. }));
    }

    #[test]
    fn cross_function_edges_span_functions() {
        let prog = compile(SRC).unwrap();
        let idx = ProgramIndex::build(&prog);
        let y = prog.vars.iter().position(|n| n == "y").map(|i| VarId(i as u32)).unwrap();
        // y is defined in a() and read in b(): the cross-function map
        // must list the site in b() under a global number in b's range
        let uses = idx.cross_uses_of(y);
        assert_eq!(uses.len(), 1);
        assert_eq!(idx.function_of(uses[0]), 1);
    }

    #[test]
    fn global_numbering_is_function_major() {
        let prog = compile(SRC).unwrap();
        let idx = ProgramIndex::build(&prog);
        assert_eq!(idx.offsets[0], 0);
        assert_eq!(idx.offsets[1] as usize, idx.functions[0].sites.len());
        assert_eq!(idx.site_count(), idx.functions.iter().map(|f| f.sites.len()).sum());
        for g in 0..idx.offsets[1] {
            assert_eq!(idx.function_of(g), 0);
        }
    }

    #[test]
    fn unassigned_vars_have_no_defs() {
        let prog = compile("component c; fn f() { x = q; }").unwrap();
        let idx = ProgramIndex::build(&prog);
        let q = prog.vars.iter().position(|n| n == "q").map(|i| VarId(i as u32)).unwrap();
        assert!(idx.functions[0].defs_of(q).is_empty());
        assert_eq!(idx.functions[0].uses_of(q).len(), 1);
    }
}
