//! The three-address IR with explicit control flow, mirroring the level
//! at which the paper's LLVM-based analysis operates.

use std::fmt;

use crate::ast::{BinOp, UnOp};

/// A variable (or compiler temporary) identified by index into
/// [`Program::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct VarId(pub u32);

/// A basic-block id within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub u32);

/// Declared parameter types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ParamTy {
    /// Integer.
    Int,
    /// Boolean / feature flag.
    Bool,
    /// Free string.
    Str,
    /// A size (integer with unit semantics).
    Size,
    /// Enumerated string.
    Enum,
}

impl ParamTy {
    /// Parses the surface spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "int" => Some(ParamTy::Int),
            "bool" => Some(ParamTy::Bool),
            "str" => Some(ParamTy::Str),
            "size" => Some(ParamTy::Size),
            "enum" => Some(ParamTy::Enum),
            _ => None,
        }
    }

    /// The spelling used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ParamTy::Int => "int",
            ParamTy::Bool => "bool",
            ParamTy::Str => "str",
            ParamTy::Size => "size",
            ParamTy::Enum => "enum",
        }
    }
}

/// Where a parameter's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ParamSource {
    /// A command-line option (`-b`, `-o data=`).
    Option,
    /// A feature toggle (`-O name`).
    Feature,
    /// A positional operand (the `size` of `resize2fs`).
    Operand,
}

impl ParamSource {
    /// Parses the surface spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "option" => Some(ParamSource::Option),
            "feature" => Some(ParamSource::Feature),
            "operand" => Some(ParamSource::Operand),
            _ => None,
        }
    }
}

/// A configuration parameter declaration.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParamDecl {
    /// Name (also the IR variable name).
    pub name: String,
    /// Declared type.
    pub ty: ParamTy,
    /// Source kind.
    pub source: ParamSource,
    /// CLI spelling / key.
    pub key: String,
    /// The variable carrying the parameter's value.
    pub var: VarId,
}

/// A shared metadata structure (the cross-component bridge).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetadataStruct {
    /// Struct name (`sb`, `gd`, ...).
    pub name: String,
    /// Field names.
    pub fields: Vec<String>,
}

/// An operand: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Operand {
    /// A variable.
    Var(VarId),
    /// Integer constant.
    ConstInt(i64),
    /// Boolean constant.
    ConstBool(bool),
    /// String constant.
    ConstStr(String),
}

impl Operand {
    /// The variable, if this operand is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer constant, if this operand is one.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Operand::ConstInt(v) => Some(*v),
            _ => None,
        }
    }
}

/// Right-hand sides of assignments.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Rvalue {
    /// A plain copy.
    Use(Operand),
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// A unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Operand,
    },
    /// A call (uninterpreted: taint flows args → result).
    Call {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// A read of a shared metadata field.
    MetaRead {
        /// Struct name.
        strct: String,
        /// Field name.
        field: String,
    },
}

impl Rvalue {
    /// All operands mentioned.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Rvalue::Use(o) | Rvalue::Un { operand: o, .. } => vec![o],
            Rvalue::Bin { lhs, rhs, .. } => vec![lhs, rhs],
            Rvalue::Call { args, .. } => args.iter().collect(),
            Rvalue::MetaRead { .. } => Vec::new(),
        }
    }
}

/// Instructions.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Instr {
    /// `dst = rvalue`.
    Assign {
        /// Destination variable.
        dst: VarId,
        /// Value.
        value: Rvalue,
        /// Source line.
        line: u32,
    },
    /// `strct.field = src` — a shared-metadata write.
    MetaWrite {
        /// Struct name.
        strct: String,
        /// Field name.
        field: String,
        /// Source operand.
        src: Operand,
        /// Source line.
        line: u32,
    },
    /// A call evaluated for effect.
    CallStmt {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
        /// Source line.
        line: u32,
    },
    /// `fail("msg")` — an error path.
    Fail {
        /// Message.
        msg: String,
        /// Source line.
        line: u32,
    },
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Conditional branch.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
        /// Source line.
        line: u32,
    },
    /// Function return.
    Return,
    /// Unreachable after `fail`.
    Abort,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return | Terminator::Abort => Vec::new(),
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BasicBlock {
    /// Block id.
    pub id: BlockId,
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Terminator.
    pub term: Terminator,
}

/// A function: a CFG of basic blocks.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
}

impl Function {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id (ill-formed IR).
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// True if `from` can reach a block whose first instruction sequence
    /// contains a `fail`.
    pub fn reaches_fail(&self, from: BlockId) -> bool {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if seen[b.0 as usize] {
                continue;
            }
            seen[b.0 as usize] = true;
            let blk = self.block(b);
            if blk.instrs.iter().any(|i| matches!(i, Instr::Fail { .. })) {
                return true;
            }
            stack.extend(blk.term.successors());
        }
        false
    }

    /// True if *every* path from `from` hits a `fail` before returning.
    pub fn always_fails(&self, from: BlockId) -> bool {
        fn go(f: &Function, b: BlockId, seen: &mut Vec<bool>) -> bool {
            if seen[b.0 as usize] {
                return true; // a loop: treat conservatively as failing
            }
            seen[b.0 as usize] = true;
            let blk = f.block(b);
            if blk.instrs.iter().any(|i| matches!(i, Instr::Fail { .. })) {
                seen[b.0 as usize] = false;
                return true;
            }
            let succ = blk.term.successors();
            let result = if succ.is_empty() {
                false // returned without failing
            } else {
                succ.into_iter().all(|s| go(f, s, seen))
            };
            seen[b.0 as usize] = false;
            result
        }
        let mut seen = vec![false; self.blocks.len()];
        go(self, from, &mut seen)
    }
}

/// A compiled CIR program: one component's configuration-handling model.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Program {
    /// Component name.
    pub component: String,
    /// Shared metadata structs.
    pub metadata: Vec<MetadataStruct>,
    /// Configuration parameters.
    pub params: Vec<ParamDecl>,
    /// Functions.
    pub functions: Vec<Function>,
    /// Variable name table ([`VarId`] indexes it).
    pub vars: Vec<String>,
}

impl Program {
    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize]
    }

    /// The parameter declared with this name, if any.
    pub fn param(&self, name: &str) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.name == name)
    }

    /// The parameter bound to this variable, if any.
    pub fn param_of_var(&self, v: VarId) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.var == v)
    }

    /// The function with this name, if any.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "component {};", self.component)?;
        for p in &self.params {
            writeln!(f, "param {} {} = {:?}({});", p.ty.as_str(), p.name, p.source, p.key)?;
        }
        for func in &self.functions {
            writeln!(f, "fn {}() {{ {} blocks }}", func.name, func.blocks.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ty_parse_round_trip() {
        for s in ["int", "bool", "str", "size", "enum"] {
            assert_eq!(ParamTy::parse(s).unwrap().as_str(), s);
        }
        assert!(ParamTy::parse("float").is_none());
    }

    #[test]
    fn param_source_parse() {
        assert_eq!(ParamSource::parse("option"), Some(ParamSource::Option));
        assert_eq!(ParamSource::parse("feature"), Some(ParamSource::Feature));
        assert_eq!(ParamSource::parse("operand"), Some(ParamSource::Operand));
        assert_eq!(ParamSource::parse("env"), None);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Goto(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Return.successors(), Vec::<BlockId>::new());
        let b = Terminator::Branch {
            cond: Operand::ConstBool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            line: 0,
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Var(VarId(4)).as_var(), Some(VarId(4)));
        assert_eq!(Operand::ConstInt(9).as_var(), None);
        assert_eq!(Operand::ConstInt(9).as_const_int(), Some(9));
    }

    #[test]
    fn rvalue_operands() {
        let v = Operand::Var(VarId(0));
        let c = Operand::ConstInt(1);
        assert_eq!(Rvalue::Use(v.clone()).operands().len(), 1);
        assert_eq!(
            Rvalue::Bin { op: crate::BinOp::Add, lhs: v.clone(), rhs: c.clone() }.operands().len(),
            2
        );
        assert_eq!(Rvalue::Call { name: "f".into(), args: vec![v, c] }.operands().len(), 2);
        assert!(Rvalue::MetaRead { strct: "sb".into(), field: "x".into() }.operands().is_empty());
    }
}
