//! CIR — a small C-like language and three-address IR for modelling the
//! configuration-handling code of the Ext4 ecosystem.
//!
//! The paper's analyzer runs on LLVM IR compiled from the real C sources
//! of Ext4 and e2fsprogs. Neither LLVM nor the C sources are available in
//! this reproduction, so this crate provides the equivalent substrate:
//!
//! * a **language** rich enough to transcribe each component's option
//!   handling — `param` declarations (configuration sources), `metadata`
//!   struct declarations (the shared FS metadata that bridges components),
//!   functions, branches, comparisons, and `fail(...)` error paths;
//! * a **compiler** (lexer → parser → AST → lowering) to a typed
//!   three-address IR with explicit control-flow graphs — the same shape
//!   (def/use chains, branches, field accesses) the paper's taint
//!   analysis consumes from LLVM bitcode.
//!
//! The `taint` crate implements the paper's analysis on top of this IR,
//! and `confdep` ships the source models of `mke2fs`, `mount`/`ext4`,
//! `e4defrag`, `resize2fs`, and `e2fsck` written in this language.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     component demo;
//!     metadata sb { s_blocks_count }
//!     param int size = option("size");
//!     fn main() {
//!         if (size < 64) { fail("too small"); }
//!         sb.s_blocks_count = size;
//!     }
//! "#;
//! let program = cir::compile(src)?;
//! assert_eq!(program.component, "demo");
//! assert_eq!(program.params.len(), 1);
//! # Ok::<(), cir::CirError>(())
//! ```

mod ast;
mod error;
pub mod index;
mod ir;
mod lexer;
mod lower;
mod parser;
pub mod pretty;

pub use ast::{BinOp, Expr, Item, Literal, Program as AstProgram, Stmt, UnOp};
pub use error::CirError;
pub use index::{FunctionIndex, ProgramIndex, SiteRef};
pub use ir::{
    BasicBlock, BlockId, Function, Instr, MetadataStruct, Operand, ParamDecl, ParamSource,
    ParamTy, Program, Rvalue, Terminator, VarId,
};
pub use lexer::{lex, Token, TokenKind};
pub use pretty::{function_to_string, program_to_string};

/// Compiles CIR source text to IR.
///
/// # Errors
///
/// Returns [`CirError`] for lexical, syntactic, or lowering problems,
/// with line information where available.
pub fn compile(src: &str) -> Result<Program, CirError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    lower::lower(&ast)
}
