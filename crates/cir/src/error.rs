use std::error::Error;
use std::fmt;

/// Errors from compiling CIR source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CirError {
    /// A character the lexer does not understand.
    Lex {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// A syntax error.
    Parse {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// A semantic error during lowering (unknown name, bad metadata
    /// field, duplicate declaration, ...).
    Lower(String),
}

impl fmt::Display for CirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CirError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            CirError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            CirError::Lower(msg) => write!(f, "lowering error: {msg}"),
        }
    }
}

impl Error for CirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CirError::Parse { line: 7, msg: "expected ';'".to_string() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CirError>();
    }
}
