//! Recursive-descent parser for CIR.

use crate::ast::{BinOp, Expr, Item, Literal, Program, Stmt, UnOp};
use crate::lexer::{Token, TokenKind};
use crate::CirError;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parses a token stream into an AST.
///
/// # Errors
///
/// Returns [`CirError::Parse`] with the offending line.
pub fn parse(toks: &[Token]) -> Result<Program, CirError> {
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> CirError {
        CirError::Parse { line: self.line(), msg: msg.into() }
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CirError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(self.err(format!("expected {what}, found {k:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CirError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, CirError> {
        match self.peek() {
            Some(TokenKind::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn item(&mut self) -> Result<Item, CirError> {
        let kw = self.ident("an item keyword")?;
        match kw.as_str() {
            "component" => {
                let name = self.ident("component name")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Item::Component(name))
            }
            "metadata" => {
                let name = self.ident("metadata struct name")?;
                self.expect(&TokenKind::LBrace, "'{'")?;
                let mut fields = Vec::new();
                loop {
                    match self.peek() {
                        Some(TokenKind::RBrace) => {
                            self.pos += 1;
                            break;
                        }
                        Some(TokenKind::Comma) => {
                            self.pos += 1;
                        }
                        Some(TokenKind::Ident(_)) => fields.push(self.ident("field")?),
                        other => return Err(self.err(format!("expected field or '}}', found {other:?}"))),
                    }
                }
                Ok(Item::Metadata { name, fields })
            }
            "param" => {
                let ty = self.ident("parameter type")?;
                let name = self.ident("parameter name")?;
                self.expect(&TokenKind::Assign, "'='")?;
                let source = self.ident("source kind (option/feature/operand)")?;
                self.expect(&TokenKind::LParen, "'('")?;
                let key = self.string("source key string")?;
                self.expect(&TokenKind::RParen, "')'")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Item::Param { name, ty, source, key })
            }
            "fn" => {
                let name = self.ident("function name")?;
                self.expect(&TokenKind::LParen, "'('")?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Item::Function { name, body })
            }
            other => Err(self.err(format!("unknown item '{other}'"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CirError> {
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.pos += 1; // consume '}'
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CirError> {
        let line = self.line();
        match self.peek() {
            Some(TokenKind::Ident(kw)) if kw == "if" => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), Some(TokenKind::Ident(k)) if k == "else") {
                    self.pos += 1;
                    if matches!(self.peek(), Some(TokenKind::Ident(k)) if k == "if") {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body, line })
            }
            Some(TokenKind::Ident(kw)) if kw == "fail" => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "'('")?;
                let msg = self.string("failure message")?;
                self.expect(&TokenKind::RParen, "')'")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Fail { msg, line })
            }
            Some(TokenKind::Ident(kw)) if kw == "return" => {
                self.pos += 1;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Return { line })
            }
            Some(TokenKind::Ident(kw)) if kw == "let" => {
                self.pos += 1;
                let name = self.ident("variable name")?;
                self.expect(&TokenKind::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Assign { name, value, line })
            }
            Some(TokenKind::Ident(_)) => {
                // x = e; | strct.field = e; | call(...);
                let name = self.ident("identifier")?;
                match self.peek() {
                    Some(TokenKind::Dot) => {
                        self.pos += 1;
                        let field = self.ident("field name")?;
                        if self.peek() == Some(&TokenKind::Assign) {
                            self.pos += 1;
                            let value = self.expr()?;
                            self.expect(&TokenKind::Semi, "';'")?;
                            Ok(Stmt::FieldAssign { strct: name, field, value, line })
                        } else {
                            Err(self.err("expected '=' after field access statement"))
                        }
                    }
                    Some(TokenKind::Assign) => {
                        self.pos += 1;
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semi, "';'")?;
                        Ok(Stmt::Assign { name, value, line })
                    }
                    Some(TokenKind::LParen) => {
                        let expr = self.call_tail(name)?;
                        self.expect(&TokenKind::Semi, "';'")?;
                        Ok(Stmt::ExprStmt { expr, line })
                    }
                    other => Err(self.err(format!("unexpected token after identifier: {other:?}"))),
                }
            }
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    fn call_tail(&mut self, name: String) -> Result<Expr, CirError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.peek() == Some(&TokenKind::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(Expr::Call { name, args })
    }

    // precedence climbing: || < && < comparisons < +- < */%
    fn expr(&mut self) -> Result<Expr, CirError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CirError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&TokenKind::OrOr) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Bin { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CirError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&TokenKind::AndAnd) {
            self.pos += 1;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CirError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Ne) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr()?;
                Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, CirError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CirError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CirError> {
        match self.peek() {
            Some(TokenKind::Bang) => {
                self.pos += 1;
                Ok(Expr::Un { op: UnOp::Not, expr: Box::new(self.unary_expr()?) })
            }
            Some(TokenKind::Minus) => {
                self.pos += 1;
                Ok(Expr::Un { op: UnOp::Neg, expr: Box::new(self.unary_expr()?) })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CirError> {
        let line = self.line();
        match self.bump().cloned() {
            Some(Token { kind: TokenKind::Int(v), .. }) => Ok(Expr::Lit(Literal::Int(v))),
            Some(Token { kind: TokenKind::Str(s), .. }) => Ok(Expr::Lit(Literal::Str(s))),
            Some(Token { kind: TokenKind::LParen, .. }) => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            Some(Token { kind: TokenKind::Ident(name), .. }) => match name.as_str() {
                "true" => Ok(Expr::Lit(Literal::Bool(true))),
                "false" => Ok(Expr::Lit(Literal::Bool(false))),
                _ => match self.peek() {
                    Some(TokenKind::LParen) => self.call_tail(name),
                    Some(TokenKind::Dot) => {
                        self.pos += 1;
                        let field = self.ident("field name")?;
                        Ok(Expr::Field { strct: name, field })
                    }
                    _ => Ok(Expr::Var(name)),
                },
            },
            other => {
                Err(CirError::Parse { line, msg: format!("expected an expression, found {other:?}") })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_component_and_param() {
        let p = parse_src(r#"component mke2fs; param int blocksize = option("-b");"#);
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.items[0], Item::Component("mke2fs".to_string()));
        match &p.items[1] {
            Item::Param { name, ty, source, key } => {
                assert_eq!(name, "blocksize");
                assert_eq!(ty, "int");
                assert_eq!(source, "option");
                assert_eq!(key, "-b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_metadata_struct() {
        let p = parse_src("metadata sb { s_blocks_count, s_log_block_size }");
        match &p.items[0] {
            Item::Metadata { name, fields } => {
                assert_eq!(name, "sb");
                assert_eq!(fields, &["s_blocks_count", "s_log_block_size"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_function_with_if_fail() {
        let p = parse_src(
            r#"fn check() {
                if (blocksize < 1024 || blocksize > 65536) { fail("bad -b"); }
                sb.s_log_block_size = log2(blocksize) - 10;
            }"#,
        );
        match &p.items[0] {
            Item::Function { name, body } => {
                assert_eq!(name, "check");
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Stmt::If { .. }));
                assert!(matches!(&body[1], Stmt::FieldAssign { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_else_if_chain() {
        let p = parse_src(
            r#"fn f() {
                if (a == 1) { x = 1; } else if (a == 2) { x = 2; } else { x = 3; }
            }"#,
        );
        match &p.items[0] {
            Item::Function { body, .. } => match &body[0] {
                Stmt::If { else_body, .. } => {
                    assert_eq!(else_body.len(), 1);
                    assert!(matches!(&else_body[0], Stmt::If { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        let p = parse_src("fn f() { x = 1 + 2 * 3; y = (1 + 2) * 3; b = x < y && y != 9; }");
        match &p.items[0] {
            Item::Function { body, .. } => {
                match &body[0] {
                    Stmt::Assign { value: Expr::Bin { op: BinOp::Add, rhs, .. }, .. } => {
                        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                }
                match &body[2] {
                    Stmt::Assign { value: Expr::Bin { op: BinOp::And, .. }, .. } => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_statement_and_expression() {
        let p = parse_src("fn f() { log(\"hi\", 3); x = max(a, b); }");
        match &p.items[0] {
            Item::Function { body, .. } => {
                assert!(matches!(&body[0], Stmt::ExprStmt { expr: Expr::Call { .. }, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_operators() {
        let p = parse_src("fn f() { a = !b; c = -5; }");
        match &p.items[0] {
            Item::Function { body, .. } => {
                assert!(matches!(&body[0], Stmt::Assign { value: Expr::Un { op: UnOp::Not, .. }, .. }));
                assert!(matches!(&body[1], Stmt::Assign { value: Expr::Un { op: UnOp::Neg, .. }, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line() {
        let toks = lex("fn f() {\n  x = ;\n}").unwrap();
        match parse(&toks) {
            Err(CirError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_rejected() {
        let toks = lex("fn f() { x = 1;").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn field_read_in_expression() {
        let p = parse_src("fn f() { x = sb.s_blocks_count + 1; }");
        match &p.items[0] {
            Item::Function { body, .. } => match &body[0] {
                Stmt::Assign { value: Expr::Bin { lhs, .. }, .. } => {
                    assert!(matches!(**lhs, Expr::Field { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
