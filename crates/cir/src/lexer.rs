//! The CIR lexer.

use crate::CirError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenises CIR source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`CirError::Lex`] for unknown characters and unterminated
/// strings.
pub fn lex(src: &str) -> Result<Vec<Token>, CirError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => { out.push(Token { kind: TokenKind::LParen, line }); i += 1; }
            ')' => { out.push(Token { kind: TokenKind::RParen, line }); i += 1; }
            '{' => { out.push(Token { kind: TokenKind::LBrace, line }); i += 1; }
            '}' => { out.push(Token { kind: TokenKind::RBrace, line }); i += 1; }
            ';' => { out.push(Token { kind: TokenKind::Semi, line }); i += 1; }
            ',' => { out.push(Token { kind: TokenKind::Comma, line }); i += 1; }
            '.' => { out.push(Token { kind: TokenKind::Dot, line }); i += 1; }
            '+' => { out.push(Token { kind: TokenKind::Plus, line }); i += 1; }
            '-' => { out.push(Token { kind: TokenKind::Minus, line }); i += 1; }
            '*' => { out.push(Token { kind: TokenKind::Star, line }); i += 1; }
            '/' => { out.push(Token { kind: TokenKind::Slash, line }); i += 1; }
            '%' => { out.push(Token { kind: TokenKind::Percent, line }); i += 1; }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: TokenKind::Eq, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Assign, line });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: TokenKind::Ne, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Bang, line });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: TokenKind::Le, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: TokenKind::Ge, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, line });
                    i += 1;
                }
            }
            '&' if bytes.get(i + 1) == Some(&'&') => {
                out.push(Token { kind: TokenKind::AndAnd, line });
                i += 2;
            }
            '|' if bytes.get(i + 1) == Some(&'|') => {
                out.push(Token { kind: TokenKind::OrOr, line });
                i += 2;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    if bytes[j] == '\n' {
                        return Err(CirError::Lex { line, msg: "unterminated string".to_string() });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(CirError::Lex { line, msg: "unterminated string".to_string() });
                }
                let s: String = bytes[start..j].iter().collect();
                out.push(Token { kind: TokenKind::Str(s), line });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: String = bytes[i..j].iter().collect();
                let v: i64 = n.parse().map_err(|_| CirError::Lex {
                    line,
                    msg: format!("integer literal '{n}' out of range"),
                })?;
                out.push(Token { kind: TokenKind::Int(v), line });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let s: String = bytes[i..j].iter().collect();
                out.push(Token { kind: TokenKind::Ident(s), line });
                i = j;
            }
            other => {
                return Err(CirError::Lex { line, msg: format!("unexpected character '{other}'") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= == != && || !"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            kinds("fail(\"too small\"); // a comment\nx"),
            vec![
                TokenKind::Ident("fail".into()),
                TokenKind::LParen,
                TokenKind::Str("too small".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(lex("\"abc"), Err(CirError::Lex { .. })));
        assert!(matches!(lex("\"abc\ndef\""), Err(CirError::Lex { .. })));
    }

    #[test]
    fn unknown_character_rejected() {
        assert!(matches!(lex("a @ b"), Err(CirError::Lex { line: 1, .. })));
    }

    #[test]
    fn field_access_tokens() {
        assert_eq!(
            kinds("sb.s_blocks_count"),
            vec![
                TokenKind::Ident("sb".into()),
                TokenKind::Dot,
                TokenKind::Ident("s_blocks_count".into())
            ]
        );
    }
}
