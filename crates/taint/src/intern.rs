//! Interned taints and hash-consed taint sets.
//!
//! The sweep engine carries a `BTreeSet<Taint>` per variable and
//! clones it per operand per pass — for a program with `V` variables
//! and `T` distinct taints that is `O(V·T·log T)` of allocation per
//! sweep. The worklist engine instead interns every [`Taint`] into a
//! dense [`TaintId`] and every *set* of taints into a [`SetId`]
//! referring to one canonical sorted id-vec. Set identity becomes an
//! integer comparison, and set union a memoized merge: any `(a, b)`
//! union computed once is a table lookup forever after (hash-consing
//! guarantees the memo is sound — equal contents imply equal ids).

use std::collections::HashMap;

use crate::facts::Taint;

/// Dense id of an interned [`Taint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaintId(pub u32);

/// Id of a hash-consed taint set. `SetId(0)` is always the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(pub u32);

/// The empty set's id.
pub const EMPTY_SET: SetId = SetId(0);

/// Counters the benchmark reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ArenaStats {
    /// Sorted-vec merges actually performed.
    pub unions_performed: u64,
    /// Unions answered from the memo table or by a trivial identity
    /// (`a ∪ ∅`, `a ∪ a`, `b ⊆ a` fast paths included only when they
    /// short-circuit the merge).
    pub unions_memoized: u64,
}

/// Interner for taints and taint sets, with a memoized union table.
#[derive(Debug, Default)]
pub struct TaintArena {
    taints: Vec<Taint>,
    taint_ids: HashMap<Taint, TaintId>,
    /// `sets[id]` is the canonical sorted id-vec; `sets[0]` is empty.
    sets: Vec<Vec<TaintId>>,
    set_ids: HashMap<Vec<TaintId>, SetId>,
    union_memo: HashMap<(SetId, SetId), SetId>,
    /// Cached singleton set per taint (the most common set).
    singletons: Vec<SetId>,
    /// Union/merge counters.
    pub stats: ArenaStats,
}

impl TaintArena {
    /// An arena holding only the empty set.
    pub fn new() -> TaintArena {
        let mut a = TaintArena::default();
        a.sets.push(Vec::new());
        a.set_ids.insert(Vec::new(), EMPTY_SET);
        a
    }

    /// Interns a taint (idempotent).
    pub fn intern(&mut self, t: &Taint) -> TaintId {
        if let Some(&id) = self.taint_ids.get(t) {
            return id;
        }
        let id = TaintId(self.taints.len() as u32);
        self.taints.push(t.clone());
        self.taint_ids.insert(t.clone(), id);
        id
    }

    /// The taint behind an id.
    pub fn taint(&self, id: TaintId) -> &Taint {
        &self.taints[id.0 as usize]
    }

    /// The canonical sorted members of a set.
    pub fn members(&self, s: SetId) -> &[TaintId] {
        &self.sets[s.0 as usize]
    }

    /// True when the set is empty.
    pub fn is_empty(&self, s: SetId) -> bool {
        s == EMPTY_SET
    }

    /// The singleton set `{t}`.
    pub fn singleton(&mut self, t: TaintId) -> SetId {
        // EMPTY_SET is the cache vector's fill value, meaning "not
        // cached yet" (a singleton can never be the empty set)
        if let Some(&s) = self.singletons.get(t.0 as usize) {
            if s != EMPTY_SET {
                return s;
            }
        }
        let s = self.intern_set(vec![t]);
        if self.singletons.len() <= t.0 as usize {
            self.singletons.resize(t.0 as usize + 1, EMPTY_SET);
        }
        self.singletons[t.0 as usize] = s;
        s
    }

    fn intern_set(&mut self, sorted: Vec<TaintId>) -> SetId {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "set vec must be strictly sorted");
        if sorted.is_empty() {
            return EMPTY_SET;
        }
        if let Some(&id) = self.set_ids.get(&sorted) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(sorted.clone());
        self.set_ids.insert(sorted, id);
        id
    }

    /// `a ∪ b`, memoized. Because sets are hash-consed, `a == b` (as
    /// ids) exactly when the contents are equal, so the memo key
    /// `(min, max)` is sound.
    pub fn union(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b || b == EMPTY_SET {
            return a;
        }
        if a == EMPTY_SET {
            return b;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&u) = self.union_memo.get(&key) {
            self.stats.unions_memoized += 1;
            return u;
        }
        let (xs, ys) = (&self.sets[a.0 as usize], &self.sets[b.0 as usize]);
        let mut merged = Vec::with_capacity(xs.len() + ys.len());
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(xs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(ys[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(xs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&xs[i..]);
        merged.extend_from_slice(&ys[j..]);
        self.stats.unions_performed += 1;
        let u = self.intern_set(merged);
        self.union_memo.insert(key, u);
        u
    }

    /// The members of `sup` missing from `sub` (used to attribute trace
    /// steps to newly arrived taints). `sub` must be a subset of `sup`,
    /// which holds for the monotone transfer function (`sup = sub ∪ x`).
    pub fn difference(&self, sup: SetId, sub: SetId) -> Vec<TaintId> {
        let xs = self.members(sup);
        let ys = self.members(sub);
        let mut out = Vec::with_capacity(xs.len() - ys.len());
        let mut j = 0;
        for &x in xs {
            if j < ys.len() && ys[j] == x {
                j += 1;
            } else {
                out.push(x);
            }
        }
        out
    }

    /// Materializes a set as the `BTreeSet<Taint>` the fact extractor
    /// consumes.
    pub fn to_btree(&self, s: SetId) -> std::collections::BTreeSet<Taint> {
        self.members(s).iter().map(|&t| self.taint(t).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Taint {
        Taint::Param(name.to_string())
    }

    #[test]
    fn interning_is_idempotent() {
        let mut a = TaintArena::new();
        let x = a.intern(&p("x"));
        let y = a.intern(&p("y"));
        assert_ne!(x, y);
        assert_eq!(a.intern(&p("x")), x);
        assert_eq!(a.taint(x), &p("x"));
    }

    #[test]
    fn union_is_hash_consed_and_memoized() {
        let mut a = TaintArena::new();
        let x = a.intern(&p("x"));
        let y = a.intern(&p("y"));
        let sx = a.singleton(x);
        let sy = a.singleton(y);
        let u1 = a.union(sx, sy);
        assert_eq!(a.stats.unions_performed, 1);
        let u2 = a.union(sy, sx); // symmetric key hits the memo
        assert_eq!(u1, u2);
        assert_eq!(a.stats.unions_memoized, 1);
        assert_eq!(a.stats.unions_performed, 1);
        // same contents from a different derivation → same id
        let u3 = a.union(u1, sx);
        assert_eq!(u3, u1); // b ⊆ a merge re-interns to the same id
        assert_eq!(a.members(u1).len(), 2);
    }

    #[test]
    fn trivial_unions_short_circuit() {
        let mut a = TaintArena::new();
        let x = a.intern(&p("x"));
        let sx = a.singleton(x);
        assert_eq!(a.union(sx, EMPTY_SET), sx);
        assert_eq!(a.union(EMPTY_SET, sx), sx);
        assert_eq!(a.union(sx, sx), sx);
        assert_eq!(a.stats.unions_performed, 0);
    }

    #[test]
    fn difference_yields_new_members() {
        let mut a = TaintArena::new();
        let x = a.intern(&p("x"));
        let y = a.intern(&p("y"));
        let sx = a.singleton(x);
        let sy = a.singleton(y);
        let u = a.union(sx, sy);
        assert_eq!(a.difference(u, sx), vec![y]);
        assert_eq!(a.difference(u, EMPTY_SET).len(), 2);
        assert!(a.difference(sx, sx).is_empty());
    }

    #[test]
    fn to_btree_round_trips() {
        let mut a = TaintArena::new();
        let m = Taint::Meta("sb.f".to_string());
        let x = a.intern(&p("x"));
        let mm = a.intern(&m);
        let sx = a.singleton(x);
        let sm = a.singleton(mm);
        let u = a.union(sx, sm);
        let set = a.to_btree(u);
        assert!(set.contains(&p("x")));
        assert!(set.contains(&m));
        assert_eq!(set.len(), 2);
        assert!(a.to_btree(EMPTY_SET).is_empty());
    }
}
