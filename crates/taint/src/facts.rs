//! Fact types produced by the analysis and consumed by the dependency
//! extractor.

use std::collections::BTreeSet;
use std::fmt;

use cir::BinOp;

/// A taint label: either a configuration parameter or a shared metadata
/// field (the cross-component bridge).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum Taint {
    /// Tainted by the named parameter of the analyzed component.
    Param(String),
    /// Tainted by a metadata field, written as `struct.field`.
    Meta(String),
}

impl Taint {
    /// The parameter name, if this is a parameter taint.
    pub fn as_param(&self) -> Option<&str> {
        match self {
            Taint::Param(p) => Some(p),
            Taint::Meta(_) => None,
        }
    }

    /// The metadata field, if this is a metadata taint.
    pub fn as_meta(&self) -> Option<&str> {
        match self {
            Taint::Meta(m) => Some(m),
            Taint::Param(_) => None,
        }
    }
}

impl fmt::Display for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Taint::Param(p) => write!(f, "param:{p}"),
            Taint::Meta(m) => write!(f, "meta:{m}"),
        }
    }
}

/// An atomic comparison appearing in a branch condition, with the fail
/// behaviour of the enclosing branch.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ComparisonFact {
    /// Function containing the branch.
    pub function: String,
    /// Source line of the branch.
    pub line: u32,
    /// The comparison operator as written (taint side on the left).
    pub op: BinOp,
    /// Taints of the variable side.
    pub taints: BTreeSet<Taint>,
    /// The constant side, when the comparison is against a constant.
    pub rhs_const: Option<i64>,
    /// Taints of the right-hand side when it is a variable.
    pub rhs_taints: BTreeSet<Taint>,
    /// True when the comparison being *true* leads (possibly
    /// approximately, through `&&`/`||` decomposition) to a `fail`.
    pub fail_when_true: bool,
    /// True when being *false* leads to a `fail`.
    pub fail_when_false: bool,
    /// All parameter taints of the *whole* branch condition this atom
    /// came from (used to tell pure self-checks from compound ones).
    pub branch_params: BTreeSet<String>,
    /// The whole branch condition carries a metadata taint.
    pub branch_has_meta: bool,
}

/// A whole branch condition with its merged taint set — the raw material
/// for control-dependency extraction.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BranchFact {
    /// Function containing the branch.
    pub function: String,
    /// Source line.
    pub line: u32,
    /// Union of taints in the condition.
    pub taints: BTreeSet<Taint>,
    /// Taint sets of the condition's conjuncts/disjuncts (the leaves of
    /// its `&&`/`||` tree). Cross-leaf parameter pairs are the raw
    /// material of cross-parameter-dependency extraction.
    pub cond_leaves: Vec<BTreeSet<Taint>>,
    /// The then-successor inevitably fails.
    pub then_fails: bool,
    /// The else-successor inevitably fails.
    pub else_fails: bool,
}

/// A write of a (possibly) tainted value into a shared metadata field.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetaWriteFact {
    /// Function performing the write.
    pub function: String,
    /// Source line.
    pub line: u32,
    /// `struct.field` written.
    pub field: String,
    /// Taints of the written value.
    pub taints: BTreeSet<Taint>,
}

/// A use of metadata-derived data: in a fail guard, in another metadata
/// write, or as an argument of a behaviour-affecting call.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetaUseFact {
    /// Function containing the use.
    pub function: String,
    /// Source line.
    pub line: u32,
    /// The metadata fields feeding the use.
    pub meta: BTreeSet<String>,
    /// Parameter taints mixed into the same value or condition.
    pub co_params: BTreeSet<String>,
    /// The use guards a `fail` path.
    pub in_fail_guard: bool,
    /// The name of the call the value feeds, if any.
    pub callee: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_accessors() {
        let p = Taint::Param("blocksize".to_string());
        let m = Taint::Meta("sb.s_blocks_count".to_string());
        assert_eq!(p.as_param(), Some("blocksize"));
        assert_eq!(p.as_meta(), None);
        assert_eq!(m.as_meta(), Some("sb.s_blocks_count"));
        assert_eq!(m.as_param(), None);
    }

    #[test]
    fn taint_display() {
        assert_eq!(Taint::Param("x".into()).to_string(), "param:x");
        assert_eq!(Taint::Meta("sb.f".into()).to_string(), "meta:sb.f");
    }

    #[test]
    fn taint_ordering_params_before_meta() {
        let mut set = BTreeSet::new();
        set.insert(Taint::Meta("a".into()));
        set.insert(Taint::Param("z".into()));
        let first = set.iter().next().unwrap();
        assert!(matches!(first, Taint::Param(_)));
    }
}
