//! Taint analysis over CIR programs — the analysis engine of the paper's
//! static analyzer (§4.1).
//!
//! The paper applies "the classic taint analysis" to track how each
//! configuration parameter propagates along data-flow paths, maintains a
//! set of tainted variables plus a trace of the instructions that tainted
//! them, and tracks when one variable derives from *multiple* parameters.
//! This crate reproduces exactly that:
//!
//! * [`analyze`] seeds every `param` variable with its own taint label,
//!   propagates through assignments, arithmetic, and (uninterpretedly)
//!   through calls, and records a [`TaintTrace`] per tainted variable;
//! * metadata reads introduce `Taint::Meta` labels — the *shared metadata
//!   structures* that bridge components (§4.1's key observation);
//! * the result exposes the **facts** downstream extraction needs:
//!   comparisons guarding `fail` paths ([`ComparisonFact`]), branch
//!   conditions with their taint sets ([`BranchFact`]), and metadata
//!   writes/uses ([`MetaWriteFact`], [`MetaUseFact`]).
//!
//! Like the paper's prototype, the default analysis is
//! **intra-procedural** (each function analyzed in isolation); the
//! inter-procedural extension the paper lists as future work is
//! implemented behind [`AnalysisOptions::interprocedural`], which
//! propagates taints across call edges and shared variables.
//!
//! Two propagation engines are provided. The default
//! ([`Engine::Worklist`]) is a def-use worklist over interned,
//! hash-consed taint sets; [`Engine::Sweep`]
//! ([`AnalysisOptions::sweep_baseline`]) is the naive whole-program
//! sweep kept as a baseline. Both produce byte-identical
//! [`TaintResult`]s; [`analyze_with_stats`] exposes the work counters
//! that tell them apart.

mod analysis;
mod facts;
pub mod intern;
mod trace;
mod worklist;

pub use analysis::{
    analyze, analyze_with_stats, AnalysisOptions, AnalysisStats, Engine, TaintResult,
};
pub use facts::{BranchFact, ComparisonFact, MetaUseFact, MetaWriteFact, Taint};
pub use intern::{ArenaStats, SetId, TaintArena, TaintId};
pub use trace::{TaintStep, TaintTrace};
