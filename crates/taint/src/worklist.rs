//! The def-use worklist propagation engine.
//!
//! The sweep baseline re-propagates **every** instruction of every
//! function until a global fixpoint; for a taint chain laid out against
//! program order (`x0 = x1; x1 = x2; … xN = param`) each pass moves the
//! taint a single link, so the sweep costs `O(N²)` instruction visits.
//! This engine visits an instruction only when one of its *input* sets
//! changed, walking the def-use edges of [`cir::ProgramIndex`]: the
//! same chain costs `O(N)` visits.
//!
//! **Byte-identical to the sweep.** The worklist is ordered: pending
//! sites are processed in cyclic program order (ascending global site
//! number, wrapping at the end), which is exactly the order a
//! Gauss–Seidel sweep visits them — except that sites whose inputs did
//! not change are skipped. Skipped visits are provably no-ops of the
//! monotone transfer function, so the sequence of (site, newly-inserted
//! taint) events — and with it every taint set, trace step and trace
//! attribution — matches the sweep exactly. The equivalence is enforced
//! by `tests/taint_engine_equivalence.rs`.
//!
//! Taint sets are interned ([`crate::intern`]): propagation is id-set
//! union with a memoized union table instead of `BTreeSet` clone-and-
//! insert.

use std::collections::{BTreeMap, BTreeSet};

use cir::{Program, ProgramIndex, Rvalue, VarId};

use crate::analysis::{render_rvalue, AnalysisStats, TaintMap};
use crate::facts::Taint;
use crate::intern::{ArenaStats, SetId, TaintArena, EMPTY_SET};
use crate::trace::TaintTrace;

/// Precomputed transfer function of one assignment site.
enum Transfer {
    /// A metadata read: generates a constant singleton set.
    Gen(SetId),
    /// Any other rvalue: the union of the operand variables' sets.
    Vars(Vec<VarId>),
}

struct SiteInfo {
    dst: VarId,
    transfer: Transfer,
}

/// The propagation scope: one function in isolation (the paper's
/// prototype) or the whole program through shared globals.
#[derive(Clone, Copy)]
enum Scope {
    Intra(usize),
    Inter,
}

/// Worklist engine over one program. Created once; the taint/set arena
/// and the per-site transfer functions are shared across runs (the
/// intra-procedural mode runs once per function).
pub(crate) struct WorklistEngine<'p> {
    program: &'p Program,
    index: &'p ProgramIndex,
    arena: TaintArena,
    /// Per function, parallel to `FunctionIndex::sites`.
    infos: Vec<Vec<SiteInfo>>,
    /// `(param var, interned singleton)` seeds, in declaration order.
    seeds: Vec<(VarId, SetId)>,
}

impl<'p> WorklistEngine<'p> {
    pub fn new(program: &'p Program, index: &'p ProgramIndex) -> WorklistEngine<'p> {
        let mut arena = TaintArena::new();
        let infos = program
            .functions
            .iter()
            .zip(&index.functions)
            .map(|(f, fidx)| {
                (0..fidx.sites.len() as u32)
                    .map(|site| {
                        let (dst, rv, _) = fidx.resolve(f, site);
                        let transfer = match rv {
                            Rvalue::MetaRead { strct, field } => {
                                let t = arena.intern(&Taint::Meta(format!("{strct}.{field}")));
                                Transfer::Gen(arena.singleton(t))
                            }
                            other => Transfer::Vars(
                                other.operands().iter().filter_map(|o| o.as_var()).collect(),
                            ),
                        };
                        SiteInfo { dst, transfer }
                    })
                    .collect()
            })
            .collect();
        let seeds = program
            .params
            .iter()
            .map(|p| {
                let t = arena.intern(&Taint::Param(p.name.clone()));
                let s = arena.singleton(t);
                (p.var, s)
            })
            .collect();
        WorklistEngine { program, index, arena, infos, seeds }
    }

    /// The union/memoization counters accumulated so far.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats
    }

    fn seed_state(&mut self) -> Vec<SetId> {
        let mut state = vec![EMPTY_SET; self.program.vars.len()];
        for i in 0..self.seeds.len() {
            let (v, s) = self.seeds[i];
            let cur = state[v.0 as usize];
            state[v.0 as usize] = self.arena.union(cur, s);
        }
        state
    }

    /// Analyzes one function in isolation.
    pub fn run_intra(
        &mut self,
        fi: usize,
        stats: &mut AnalysisStats,
    ) -> (TaintMap, BTreeMap<(VarId, Taint), TaintTrace>) {
        let mut state = self.seed_state();
        let traces = self.run(&mut state, Scope::Intra(fi), stats);
        (self.to_map(&state), traces)
    }

    /// Analyzes the whole program to a global fixpoint (taints flow
    /// across functions through the shared global variables).
    pub fn run_inter(
        &mut self,
        stats: &mut AnalysisStats,
    ) -> (TaintMap, BTreeMap<(VarId, Taint), TaintTrace>) {
        let mut state = self.seed_state();
        let traces = self.run(&mut state, Scope::Inter, stats);
        (self.to_map(&state), traces)
    }

    fn run(
        &mut self,
        state: &mut [SetId],
        scope: Scope,
        stats: &mut AnalysisStats,
    ) -> BTreeMap<(VarId, Taint), TaintTrace> {
        let program = self.program;
        let index = self.index;
        let infos = &self.infos;
        let arena = &mut self.arena;

        let mut pending: BTreeSet<u32> = match scope {
            Scope::Intra(fi) => {
                let off = index.offsets[fi];
                (off..off + index.functions[fi].sites.len() as u32).collect()
            }
            Scope::Inter => (0..index.site_count() as u32).collect(),
        };
        let mut traces: BTreeMap<(VarId, Taint), TaintTrace> = BTreeMap::new();
        let mut cursor = 0u32;
        if !pending.is_empty() {
            stats.propagation_rounds += 1;
        }
        loop {
            // cyclic program order: the lowest pending site at or after
            // the cursor, wrapping to the lowest pending site overall —
            // i.e. Gauss–Seidel pass order restricted to changed sites
            let site = match pending.range(cursor..).next() {
                Some(&s) => s,
                None => match pending.iter().next() {
                    Some(&s) => {
                        stats.propagation_rounds += 1;
                        s
                    }
                    None => break,
                },
            };
            pending.remove(&site);
            cursor = site + 1;
            stats.instructions_visited += 1;

            let fi = match scope {
                Scope::Intra(fi) => fi,
                Scope::Inter => index.function_of(site),
            };
            let local = site - index.offsets[fi];
            let info = &infos[fi][local as usize];
            let input = match &info.transfer {
                Transfer::Gen(s) => *s,
                Transfer::Vars(vars) => {
                    let mut acc = EMPTY_SET;
                    for v in vars {
                        acc = arena.union(acc, state[v.0 as usize]);
                    }
                    acc
                }
            };
            let dst = info.dst;
            let old = state[dst.0 as usize];
            let new = arena.union(old, input);
            if new == old {
                continue;
            }
            // first arrival of each new taint at `dst`: record the
            // trace step here, exactly as the sweep's insert() does
            let f = &program.functions[fi];
            let (_, rv, line) = index.functions[fi].resolve(f, local);
            for t in arena.difference(new, old) {
                let taint = arena.taint(t).clone();
                let trace = traces
                    .entry((dst, taint.clone()))
                    .or_insert_with(|| TaintTrace::new(program.var_name(dst), taint));
                trace.push(&f.name, line, render_rvalue(program, dst, rv));
            }
            state[dst.0 as usize] = new;
            // re-enqueue the sites reading `dst`
            match scope {
                Scope::Intra(fi) => {
                    let off = index.offsets[fi];
                    for &u in index.functions[fi].uses_of(dst) {
                        pending.insert(off + u);
                    }
                }
                Scope::Inter => {
                    for &u in index.cross_uses_of(dst) {
                        pending.insert(u);
                    }
                }
            }
        }
        traces
    }

    /// Materializes the dense interned state as the `BTreeMap` form the
    /// shared fact extractor consumes (empty sets are omitted — the
    /// extractor treats missing and empty identically).
    fn to_map(&self, state: &[SetId]) -> TaintMap {
        let mut m = TaintMap::new();
        for (i, &s) in state.iter().enumerate() {
            if s != EMPTY_SET {
                m.insert(VarId(i as u32), self.arena.to_btree(s));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze, analyze_with_stats, AnalysisOptions};

    /// A chain laid out against program order forces the sweep into
    /// O(N) passes; the worklist engine must still match it exactly
    /// while visiting asymptotically fewer instructions.
    fn reverse_chain(n: usize) -> String {
        let mut src = String::from("component c;\nparam int p = option(\"-p\");\nfn f() {\n");
        for i in 0..n {
            src.push_str(&format!("x{i} = x{} + 1;\n", i + 1));
        }
        src.push_str(&format!("x{n} = p;\n"));
        src.push_str("if (x0 > 10) { fail(\"big\"); }\n}\n");
        src
    }

    #[test]
    fn worklist_matches_sweep_on_reverse_chain() {
        let program = cir::compile(&reverse_chain(24)).unwrap();
        let (work, wstats) = analyze_with_stats(&program, AnalysisOptions::default());
        let (sweep, sstats) =
            analyze_with_stats(&program, AnalysisOptions::sweep_baseline());
        assert_eq!(work, sweep);
        assert!(
            wstats.instructions_visited < sstats.instructions_visited,
            "worklist {} !< sweep {}",
            wstats.instructions_visited,
            sstats.instructions_visited
        );
    }

    #[test]
    fn worklist_matches_sweep_interprocedurally() {
        let src = r#"
            component c;
            metadata sb { s_state }
            param bool force = option("-f");
            fn late_writer() { dirty = sb.s_state; shared = dirty; }
            fn reader() {
                seen = shared;
                gate = !force;
                if (seen == 0) { fail("dirty"); }
            }
        "#;
        let program = cir::compile(src).unwrap();
        for interprocedural in [false, true] {
            let work = analyze(
                &program,
                AnalysisOptions { interprocedural, ..AnalysisOptions::default() },
            );
            let sweep = analyze(
                &program,
                AnalysisOptions { interprocedural, ..AnalysisOptions::sweep_baseline() },
            );
            assert_eq!(work, sweep, "interprocedural={interprocedural}");
        }
    }

    #[test]
    fn worklist_visit_count_is_linear_in_chain_length() {
        // doubling the chain should roughly double worklist visits but
        // roughly quadruple sweep visits
        let p1 = cir::compile(&reverse_chain(16)).unwrap();
        let p2 = cir::compile(&reverse_chain(32)).unwrap();
        let (_, w1) = analyze_with_stats(&p1, AnalysisOptions::default());
        let (_, w2) = analyze_with_stats(&p2, AnalysisOptions::default());
        let (_, s1) = analyze_with_stats(&p1, AnalysisOptions::sweep_baseline());
        let (_, s2) = analyze_with_stats(&p2, AnalysisOptions::sweep_baseline());
        assert!(w2.instructions_visited < 3 * w1.instructions_visited);
        assert!(s2.instructions_visited > 3 * s1.instructions_visited);
    }
}
