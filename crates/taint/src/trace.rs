//! Taint traces: the instruction path along which a taint reached a
//! variable (the paper: "when a new variable is added to the set, we add
//! the corresponding instruction to the taint trace too").

use serde::{Deserialize, Serialize};

/// One step of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintStep {
    /// Function containing the instruction.
    pub function: String,
    /// Source line of the instruction.
    pub line: u32,
    /// Rendered form of the instruction (for reports).
    pub what: String,
}

/// The trace for one (variable, taint) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintTrace {
    /// The tainted variable's name.
    pub var: String,
    /// The taint that reached it.
    pub taint: crate::Taint,
    /// Instructions involved, in discovery order.
    pub steps: Vec<TaintStep>,
}

impl TaintTrace {
    /// A trace with no steps yet.
    pub fn new(var: &str, taint: crate::Taint) -> Self {
        TaintTrace { var: var.to_string(), taint, steps: Vec::new() }
    }

    /// Appends a step.
    pub fn push(&mut self, function: &str, line: u32, what: impl Into<String>) {
        self.steps.push(TaintStep { function: function.to_string(), line, what: what.into() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Taint;

    #[test]
    fn trace_accumulates_steps() {
        let mut t = TaintTrace::new("x", Taint::Param("b".into()));
        t.push("main", 3, "x = b + 1");
        t.push("main", 4, "y = x");
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.steps[0].line, 3);
        assert_eq!(t.var, "x");
    }
}
