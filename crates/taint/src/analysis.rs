//! The taint propagation engines and fact extraction.
//!
//! Two propagation engines produce byte-identical [`TaintResult`]s:
//!
//! * [`Engine::Worklist`] (the default) — def-use worklist over
//!   [`cir::ProgramIndex`] with interned, hash-consed taint sets
//!   ([`crate::intern`]); only instructions whose input sets changed are
//!   re-visited. See [`crate::worklist`].
//! * [`Engine::Sweep`] — the naive Gauss–Seidel baseline that
//!   re-propagates every instruction of every function until a global
//!   fixpoint, cloning a `BTreeSet<Taint>` per operand per pass. Kept
//!   as [`AnalysisOptions::sweep_baseline`] for the equivalence tests
//!   and the analyzer benchmark.
//!
//! Fact extraction is shared: both engines materialize the same taint
//! map and feed it through the same extractor, so equality of the
//! propagation fixpoints carries over to facts and traces.

use std::collections::{BTreeMap, BTreeSet};

use cir::{
    BasicBlock, BinOp, Function, FunctionIndex, Instr, Operand, Program, ProgramIndex, Rvalue,
    Terminator, UnOp, VarId,
};

use crate::facts::{BranchFact, ComparisonFact, MetaUseFact, MetaWriteFact, Taint};
use crate::trace::TaintTrace;
use crate::worklist::WorklistEngine;

/// Propagation engine selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Def-use worklist with interned taint sets (the default).
    #[default]
    Worklist,
    /// The naive whole-program sweep (the pre-optimisation engine).
    Sweep,
}

/// Analysis configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Propagate taints across function boundaries (through the shared
    /// global variables). The paper's prototype has this off — "the
    /// static analyzer can handle intra-procedure taint analysis but not
    /// inter-procedure analysis" — and gains CCDs when it is on.
    pub interprocedural: bool,
    /// Which propagation engine to run. Both produce identical results;
    /// the sweep exists as a baseline to race and test against.
    pub engine: Engine,
}

impl AnalysisOptions {
    /// The pre-optimisation configuration: naive sweep propagation,
    /// intra-procedural.
    pub fn sweep_baseline() -> AnalysisOptions {
        AnalysisOptions { interprocedural: false, engine: Engine::Sweep }
    }
}

/// Work counters of one analysis run — *not* part of [`TaintResult`],
/// so engine equality can be asserted on the results while the stats
/// differ (that difference being the point of the worklist engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct AnalysisStats {
    /// Assignment-instruction visits during propagation.
    pub instructions_visited: u64,
    /// Full passes over the propagation scope (sweep) or cyclic wraps
    /// of the ordered worklist (worklist).
    pub propagation_rounds: u64,
    /// Taint-set union/merge operations performed.
    pub set_unions: u64,
    /// Unions answered by the hash-consed memo table (worklist only).
    pub set_unions_memoized: u64,
}

/// Everything the dependency extractor needs.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaintResult {
    /// Atomic comparisons in branch conditions.
    pub comparisons: Vec<ComparisonFact>,
    /// Whole branch conditions.
    pub branches: Vec<BranchFact>,
    /// Tainted writes into shared metadata.
    pub meta_writes: Vec<MetaWriteFact>,
    /// Uses of metadata-derived values.
    pub meta_uses: Vec<MetaUseFact>,
    /// Taint traces (variable × taint provenance).
    pub traces: Vec<TaintTrace>,
    /// Number of distinct tainted variables seen.
    pub tainted_var_count: usize,
    /// Condition decompositions cut off at the depth cap — nonzero
    /// means atoms were dropped and "no dependency" may be spurious.
    pub truncated_conditions: usize,
}

pub(crate) type TaintMap = BTreeMap<VarId, BTreeSet<Taint>>;

/// The depth cap on condition decomposition; truncations are counted
/// in [`TaintResult::truncated_conditions`].
const MAX_COND_DEPTH: u32 = 16;

/// Runs the analysis over one compiled component model.
pub fn analyze(program: &Program, options: AnalysisOptions) -> TaintResult {
    analyze_with_stats(program, options).0
}

/// Like [`analyze`], additionally reporting the engine's work counters.
pub fn analyze_with_stats(
    program: &Program,
    options: AnalysisOptions,
) -> (TaintResult, AnalysisStats) {
    let index = ProgramIndex::build(program);
    let mut stats = AnalysisStats::default();
    let mut result = TaintResult::default();
    let mut worklist = match options.engine {
        Engine::Worklist => Some(WorklistEngine::new(program, &index)),
        Engine::Sweep => None,
    };

    if options.interprocedural {
        // one shared taint map, iterated to a global fixpoint: flows
        // through globals cross function boundaries
        let (taints, traces) = match worklist.as_mut() {
            Some(engine) => engine.run_inter(&mut stats),
            None => sweep_inter(program, &mut stats),
        };
        for (f, fidx) in program.functions.iter().zip(&index.functions) {
            extract_facts(program, f, fidx, &taints, &mut result);
        }
        result.tainted_var_count = taints.values().filter(|s| !s.is_empty()).count();
        result.traces = traces.into_values().collect();
    } else {
        // the paper's prototype: each function in isolation
        let mut total_tainted: BTreeSet<VarId> = BTreeSet::new();
        for (fi, (f, fidx)) in program.functions.iter().zip(&index.functions).enumerate() {
            let (taints, traces) = match worklist.as_mut() {
                Some(engine) => engine.run_intra(fi, &mut stats),
                None => sweep_intra(program, f, &mut stats),
            };
            extract_facts(program, f, fidx, &taints, &mut result);
            total_tainted
                .extend(taints.iter().filter(|(_, s)| !s.is_empty()).map(|(v, _)| *v));
            result.traces.extend(traces.into_values());
        }
        result.tainted_var_count = total_tainted.len();
    }
    if let Some(engine) = &worklist {
        let arena = engine.arena_stats();
        stats.set_unions = arena.unions_performed;
        stats.set_unions_memoized = arena.unions_memoized;
    }
    (result, stats)
}

// ---------------------------------------------------------------------
// the sweep baseline
// ---------------------------------------------------------------------

fn sweep_inter(
    program: &Program,
    stats: &mut AnalysisStats,
) -> (TaintMap, BTreeMap<(VarId, Taint), TaintTrace>) {
    let mut taints = seed(program);
    let mut traces: BTreeMap<(VarId, Taint), TaintTrace> = BTreeMap::new();
    loop {
        stats.propagation_rounds += 1;
        let mut changed = false;
        for f in &program.functions {
            changed |= propagate(program, f, &mut taints, &mut traces, stats);
        }
        if !changed {
            break;
        }
    }
    (taints, traces)
}

fn sweep_intra(
    program: &Program,
    f: &Function,
    stats: &mut AnalysisStats,
) -> (TaintMap, BTreeMap<(VarId, Taint), TaintTrace>) {
    let mut taints = seed(program);
    let mut traces: BTreeMap<(VarId, Taint), TaintTrace> = BTreeMap::new();
    loop {
        stats.propagation_rounds += 1;
        if !propagate(program, f, &mut taints, &mut traces, stats) {
            break;
        }
    }
    (taints, traces)
}

fn seed(program: &Program) -> TaintMap {
    let mut m = TaintMap::new();
    for p in &program.params {
        m.entry(p.var).or_default().insert(Taint::Param(p.name.clone()));
    }
    m
}

fn operand_taints(op: &Operand, taints: &TaintMap) -> BTreeSet<Taint> {
    match op {
        Operand::Var(v) => taints.get(v).cloned().unwrap_or_default(),
        _ => BTreeSet::new(),
    }
}

fn rvalue_taints(rv: &Rvalue, taints: &TaintMap) -> BTreeSet<Taint> {
    match rv {
        Rvalue::MetaRead { strct, field } => {
            let mut s = BTreeSet::new();
            s.insert(Taint::Meta(format!("{strct}.{field}")));
            s
        }
        other => {
            let mut s = BTreeSet::new();
            for op in other.operands() {
                s.extend(operand_taints(op, taints));
            }
            s
        }
    }
}

pub(crate) fn render_rvalue(program: &Program, dst: VarId, rv: &Rvalue) -> String {
    let name = program.var_name(dst);
    match rv {
        Rvalue::Use(_) => format!("{name} = <copy>"),
        Rvalue::Bin { op, .. } => format!("{name} = <{op:?}>"),
        Rvalue::Un { op, .. } => format!("{name} = <{op:?}>"),
        Rvalue::Call { name: callee, .. } => format!("{name} = {callee}(...)"),
        Rvalue::MetaRead { strct, field } => format!("{name} = {strct}.{field}"),
    }
}

fn propagate(
    program: &Program,
    f: &Function,
    taints: &mut TaintMap,
    traces: &mut BTreeMap<(VarId, Taint), TaintTrace>,
    stats: &mut AnalysisStats,
) -> bool {
    let mut changed = false;
    for block in &f.blocks {
        for instr in &block.instrs {
            if let Instr::Assign { dst, value, line } = instr {
                stats.instructions_visited += 1;
                stats.set_unions += match value {
                    Rvalue::MetaRead { .. } => 1,
                    other => other.operands().len() as u64,
                };
                let new = rvalue_taints(value, taints);
                let entry = taints.entry(*dst).or_default();
                for t in new {
                    if entry.insert(t.clone()) {
                        changed = true;
                        let key = (*dst, t.clone());
                        let trace = traces
                            .entry(key)
                            .or_insert_with(|| TaintTrace::new(program.var_name(*dst), t));
                        trace.push(&f.name, *line, render_rvalue(program, *dst, value));
                    }
                }
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------
// fact extraction (shared by both engines)
// ---------------------------------------------------------------------

/// Decomposed atomic comparison (normalised: taint side on the left).
struct Atom {
    op: BinOp,
    lhs_taints: BTreeSet<Taint>,
    rhs_const: Option<i64>,
    rhs_taints: BTreeSet<Taint>,
    negated: bool,
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The flow-insensitive definition list of `v`, resolved through the
/// def-use index (a deliberate source of the same imprecision a real
/// prototype exhibits — and no longer a per-function `Rvalue` clone).
fn defs_of<'f>(f: &'f Function, fidx: &FunctionIndex, v: VarId) -> Vec<&'f Rvalue> {
    fidx.defs_of(v).iter().map(|&site| fidx.resolve(f, site).1).collect()
}

#[allow(clippy::too_many_arguments)]
fn collect_atoms(
    rv: &Rvalue,
    f: &Function,
    fidx: &FunctionIndex,
    taints: &TaintMap,
    negated: bool,
    depth: u32,
    out: &mut Vec<Atom>,
    truncated: &mut usize,
) {
    if depth > MAX_COND_DEPTH {
        *truncated += 1;
        return;
    }
    match rv {
        Rvalue::Bin { op, lhs, rhs } if op.is_comparison() => {
            let lt = operand_taints(lhs, taints);
            let rt = operand_taints(rhs, taints);
            // normalise so the tainted side is on the left
            let (op, lhs_taints, rhs_op, rhs_taints) = if lt.is_empty() && !rt.is_empty() {
                (flip(*op), rt, lhs.clone(), lt)
            } else {
                (*op, lt, rhs.clone(), rt)
            };
            out.push(Atom {
                op,
                lhs_taints,
                rhs_const: rhs_op.as_const_int(),
                rhs_taints,
                negated,
            });
        }
        Rvalue::Bin { op: BinOp::And | BinOp::Or, lhs, rhs } => {
            for side in [lhs, rhs] {
                match side {
                    Operand::Var(v) => {
                        for def in defs_of(f, fidx, *v) {
                            collect_atoms(def, f, fidx, taints, negated, depth + 1, out, truncated);
                        }
                    }
                    _ => { /* constant operand: nothing to decompose */ }
                }
            }
        }
        Rvalue::Un { op: UnOp::Not, operand: Operand::Var(v) } => {
            for def in defs_of(f, fidx, *v) {
                collect_atoms(def, f, fidx, taints, !negated, depth + 1, out, truncated);
            }
        }
        Rvalue::Use(Operand::Var(v)) => {
            for def in defs_of(f, fidx, *v) {
                collect_atoms(def, f, fidx, taints, negated, depth + 1, out, truncated);
            }
        }
        _ => {}
    }
}

fn extract_facts(
    program: &Program,
    f: &Function,
    fidx: &FunctionIndex,
    taints: &TaintMap,
    result: &mut TaintResult,
) {
    for block in &f.blocks {
        extract_block_facts(program, f, fidx, block, taints, result);
    }
}

/// Collects the taint sets of the leaves of a condition's `&&`/`||`
/// tree. A variable whose definitions are plain (not boolean operators)
/// is one leaf with its *merged* taint set — the flow-insensitive
/// approximation the prototype exhibits.
#[allow(clippy::too_many_arguments)]
fn collect_leaves(
    rv: &Rvalue,
    f: &Function,
    fidx: &FunctionIndex,
    taints: &TaintMap,
    depth: u32,
    out: &mut Vec<BTreeSet<Taint>>,
    truncated: &mut usize,
) {
    if depth > MAX_COND_DEPTH {
        *truncated += 1;
        return;
    }
    match rv {
        Rvalue::Bin { op: BinOp::And | BinOp::Or, lhs, rhs } => {
            for side in [lhs, rhs] {
                leaves_of_operand(side, f, fidx, taints, depth + 1, out, truncated);
            }
        }
        Rvalue::Un { op: UnOp::Not, operand } => {
            leaves_of_operand(operand, f, fidx, taints, depth + 1, out, truncated);
        }
        other => {
            let t = rvalue_taints(other, taints);
            if !t.is_empty() {
                out.push(t);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn leaves_of_operand(
    op: &Operand,
    f: &Function,
    fidx: &FunctionIndex,
    taints: &TaintMap,
    depth: u32,
    out: &mut Vec<BTreeSet<Taint>>,
    truncated: &mut usize,
) {
    if let Operand::Var(v) = op {
        let ds = defs_of(f, fidx, *v);
        let all_boolean = !ds.is_empty()
            && ds.iter().all(|d| {
                matches!(
                    d,
                    Rvalue::Bin { op: BinOp::And | BinOp::Or, .. }
                        | Rvalue::Un { op: UnOp::Not, .. }
                )
            });
        if all_boolean {
            for d in ds {
                collect_leaves(d, f, fidx, taints, depth, out, truncated);
            }
        } else if ds.len() == 1 {
            // a single non-boolean definition: decompose one more level
            // (so `has_x = x > 0; if (has_x && ...)` leafs as {x})
            collect_leaves(ds[0], f, fidx, taints, depth, out, truncated);
        } else {
            let t = operand_taints(op, taints);
            if !t.is_empty() {
                out.push(t);
            }
        }
    }
}

fn extract_block_facts(
    _program: &Program,
    f: &Function,
    fidx: &FunctionIndex,
    block: &BasicBlock,
    taints: &TaintMap,
    result: &mut TaintResult,
) {
    // instruction-level facts
    for instr in &block.instrs {
        match instr {
            Instr::MetaWrite { strct, field, src, line } => {
                let t = operand_taints(src, taints);
                result.meta_writes.push(MetaWriteFact {
                    function: f.name.clone(),
                    line: *line,
                    field: format!("{strct}.{field}"),
                    taints: t,
                });
            }
            Instr::CallStmt { name, args, line } => {
                let mut meta = BTreeSet::new();
                let mut co_params = BTreeSet::new();
                for a in args {
                    for t in operand_taints(a, taints) {
                        match t {
                            Taint::Meta(m) => {
                                meta.insert(m);
                            }
                            Taint::Param(p) => {
                                co_params.insert(p);
                            }
                        }
                    }
                }
                if !meta.is_empty() {
                    result.meta_uses.push(MetaUseFact {
                        function: f.name.clone(),
                        line: *line,
                        meta,
                        co_params,
                        in_fail_guard: false,
                        callee: Some(name.clone()),
                    });
                }
            }
            _ => {}
        }
    }

    // branch-level facts
    if let Terminator::Branch { cond, then_bb, else_bb, line } = &block.term {
        let then_fails = f.always_fails(*then_bb);
        let else_fails = f.always_fails(*else_bb);
        let cond_taints = operand_taints(cond, taints);
        let mut cond_leaves = Vec::new();
        leaves_of_operand(
            cond,
            f,
            fidx,
            taints,
            0,
            &mut cond_leaves,
            &mut result.truncated_conditions,
        );
        result.branches.push(BranchFact {
            function: f.name.clone(),
            line: *line,
            taints: cond_taints.clone(),
            cond_leaves,
            then_fails,
            else_fails,
        });
        let branch_params: BTreeSet<String> = cond_taints
            .iter()
            .filter_map(|t| t.as_param().map(str::to_string))
            .collect();
        let branch_has_meta = cond_taints.iter().any(|t| t.as_meta().is_some());

        // decompose into atoms
        let mut atoms = Vec::new();
        if let Operand::Var(v) = cond {
            for def in defs_of(f, fidx, *v) {
                collect_atoms(
                    def,
                    f,
                    fidx,
                    taints,
                    false,
                    0,
                    &mut atoms,
                    &mut result.truncated_conditions,
                );
            }
        }
        for atom in atoms {
            if atom.lhs_taints.is_empty() && atom.rhs_taints.is_empty() {
                continue;
            }
            let (fail_when_true, fail_when_false) = if atom.negated {
                (else_fails, then_fails)
            } else {
                (then_fails, else_fails)
            };
            result.comparisons.push(ComparisonFact {
                function: f.name.clone(),
                line: *line,
                op: atom.op,
                taints: atom.lhs_taints.clone(),
                rhs_const: atom.rhs_const,
                rhs_taints: atom.rhs_taints.clone(),
                fail_when_true,
                fail_when_false,
                branch_params: branch_params.clone(),
                branch_has_meta,
            });
        }

        // metadata-tainted fail guards
        let meta: BTreeSet<String> = cond_taints
            .iter()
            .filter_map(|t| t.as_meta().map(str::to_string))
            .collect();
        if !meta.is_empty() && (then_fails || else_fails) {
            let co_params = cond_taints
                .iter()
                .filter_map(|t| t.as_param().map(str::to_string))
                .collect();
            result.meta_uses.push(MetaUseFact {
                function: f.name.clone(),
                line: *line,
                meta,
                co_params,
                in_fail_guard: true,
                callee: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cir::compile;

    fn run(src: &str) -> TaintResult {
        analyze(&compile(src).unwrap(), AnalysisOptions::default())
    }

    fn run_inter(src: &str) -> TaintResult {
        analyze(
            &compile(src).unwrap(),
            AnalysisOptions { interprocedural: true, ..AnalysisOptions::default() },
        )
    }

    #[test]
    fn range_check_produces_comparisons() {
        let r = run(
            r#"
            component mke2fs;
            param int blocksize = option("-b");
            fn check() {
                if (blocksize < 1024 || blocksize > 65536) { fail("bad blocksize"); }
            }
            "#,
        );
        assert_eq!(r.comparisons.len(), 2);
        for c in &r.comparisons {
            assert!(c.fail_when_true);
            assert!(!c.fail_when_false);
            assert!(c.taints.contains(&Taint::Param("blocksize".into())));
        }
        let consts: BTreeSet<i64> = r.comparisons.iter().filter_map(|c| c.rhs_const).collect();
        assert!(consts.contains(&1024));
        assert!(consts.contains(&65536));
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let r = run(
            r#"
            component c;
            param int b = option("-b");
            fn f() {
                x = b / 2;
                y = x + 1;
                if (y > 100) { fail("big"); }
            }
            "#,
        );
        assert_eq!(r.comparisons.len(), 1);
        assert!(r.comparisons[0].taints.contains(&Taint::Param("b".into())));
        assert!(r.tainted_var_count >= 3); // b, x, y
        assert!(!r.traces.is_empty());
    }

    #[test]
    fn two_param_branch_is_recorded() {
        let r = run(
            r#"
            component mke2fs;
            param bool meta_bg = feature("meta_bg");
            param bool resize_inode = feature("resize_inode");
            fn check() {
                both = meta_bg && resize_inode;
                if (both) { fail("conflict"); }
            }
            "#,
        );
        let b = r
            .branches
            .iter()
            .find(|b| b.then_fails)
            .expect("a failing branch");
        let params: Vec<&str> = b.taints.iter().filter_map(Taint::as_param).collect();
        assert_eq!(params, vec!["meta_bg", "resize_inode"]);
    }

    #[test]
    fn meta_write_taint_recorded() {
        let r = run(
            r#"
            component mke2fs;
            metadata sb { s_log_block_size }
            param int blocksize = option("-b");
            fn apply() {
                shift = log2(blocksize);
                sb.s_log_block_size = shift - 10;
            }
            "#,
        );
        assert_eq!(r.meta_writes.len(), 1);
        let w = &r.meta_writes[0];
        assert_eq!(w.field, "sb.s_log_block_size");
        assert!(w.taints.contains(&Taint::Param("blocksize".into())));
    }

    #[test]
    fn meta_read_guarding_fail_is_a_meta_use() {
        let r = run(
            r#"
            component resize2fs;
            metadata sb { s_blocks_count }
            param int new_size = operand("size");
            fn check() {
                current = sb.s_blocks_count;
                if (new_size > current) { grow(new_size); }
                if (current < 64) { fail("fs too small"); }
            }
            "#,
        );
        let guard = r.meta_uses.iter().find(|u| u.in_fail_guard).expect("a guarded meta use");
        assert!(guard.meta.contains("sb.s_blocks_count"));
        // the comparison new_size > current carries both taints
        let cmp = r
            .comparisons
            .iter()
            .find(|c| c.taints.contains(&Taint::Param("new_size".into())))
            .unwrap();
        assert!(cmp.rhs_taints.contains(&Taint::Meta("sb.s_blocks_count".into())) || !cmp.rhs_taints.is_empty());
    }

    #[test]
    fn meta_flow_into_call_is_a_behavioral_use() {
        let r = run(
            r#"
            component resize2fs;
            metadata sb { s_backup_bgs }
            fn relocate() {
                target = sb.s_backup_bgs;
                move_backup(target);
            }
            "#,
        );
        let use_ = r.meta_uses.iter().find(|u| u.callee.is_some()).expect("a call meta use");
        assert_eq!(use_.callee.as_deref(), Some("move_backup"));
        assert!(use_.meta.contains("sb.s_backup_bgs"));
    }

    #[test]
    fn negated_condition_swaps_fail_polarity() {
        let r = run(
            r#"
            component c;
            param bool ok = feature("ok");
            param int v = option("-v");
            fn f() {
                good = v >= 1;
                if (!good) { fail("bad"); }
            }
            "#,
        );
        let c = &r.comparisons[0];
        assert_eq!(c.op, BinOp::Ge);
        assert!(c.fail_when_false, "v >= 1 false => fail");
        assert!(!c.fail_when_true);
    }

    #[test]
    fn constant_on_left_is_normalised() {
        let r = run(
            r#"
            component c;
            param int v = option("-v");
            fn f() {
                if (4096 < v) { fail("big"); }
            }
            "#,
        );
        let c = &r.comparisons[0];
        // 4096 < v normalises to v > 4096
        assert_eq!(c.op, BinOp::Gt);
        assert_eq!(c.rhs_const, Some(4096));
        assert!(c.taints.contains(&Taint::Param("v".into())));
    }

    #[test]
    fn intra_misses_cross_function_flow_inter_finds_it() {
        let src = r#"
            component e2fsck;
            metadata sb { s_state }
            param bool force = option("-f");
            fn read_state() {
                dirty = sb.s_state;
            }
            fn decide() {
                skip = !force;
                if (dirty == 0) { fail("dirty fs"); }
            }
        "#;
        // intra: 'dirty' in decide() is untainted (assigned in read_state)
        let intra = run(src);
        assert!(
            !intra.meta_uses.iter().any(|u| u.in_fail_guard),
            "intra-procedural analysis must miss the cross-function flow"
        );
        // inter: the taint flows through the shared global
        let inter = run_inter(src);
        assert!(inter.meta_uses.iter().any(|u| u.in_fail_guard));
    }

    #[test]
    fn flow_insensitivity_overapproximates() {
        // x is tainted then overwritten with a constant; a
        // flow-insensitive analysis still reports the comparison —
        // the deliberate false-positive mechanism of the prototype
        let r = run(
            r#"
            component c;
            param int p = option("-p");
            fn f() {
                x = p;
                x = 7;
                if (x > 100) { fail("overflow"); }
            }
            "#,
        );
        assert!(
            r.comparisons.iter().any(|c| c.taints.contains(&Taint::Param("p".into()))),
            "flow-insensitive taint must (spuriously) survive the constant overwrite"
        );
    }

    #[test]
    fn call_results_are_tainted_by_args() {
        let r = run(
            r#"
            component c;
            param int p = option("-p");
            fn f() {
                x = helper(p, 3);
                if (x == 0) { fail("helper rejected"); }
            }
            "#,
        );
        assert!(r.comparisons[0].taints.contains(&Taint::Param("p".into())));
    }

    #[test]
    fn condition_leaves_decompose_conjunctions() {
        let r = run(
            r#"
            component c;
            param bool a = feature("a");
            param bool b = feature("b");
            param int v = option("-v");
            fn f() {
                ok = v > 0;
                if (a && (b || ok)) { fail("no"); }
            }
            "#,
        );
        let branch = r.branches.iter().find(|b| b.then_fails).unwrap();
        // leaves: {a}, {b}, {v}
        assert_eq!(branch.cond_leaves.len(), 3, "{:?}", branch.cond_leaves);
        let flat: Vec<String> = branch
            .cond_leaves
            .iter()
            .flat_map(|l| l.iter().map(|t| t.to_string()))
            .collect();
        assert!(flat.contains(&"param:a".to_string()));
        assert!(flat.contains(&"param:b".to_string()));
        assert!(flat.contains(&"param:v".to_string()));
    }

    #[test]
    fn reused_scratch_variable_merges_into_one_leaf() {
        // the flow-insensitive approximation behind the paper's CPD
        // false positive: a scratch var reassigned across checks carries
        // both taints as ONE leaf (not two)
        let r = run(
            r#"
            component c;
            param bool p1 = feature("p1");
            param bool p2 = feature("p2");
            param bool q = feature("q");
            fn f() {
                t = p1;
                t = p2;
                if (t && q) { fail("no"); }
            }
            "#,
        );
        let branch = r.branches.iter().find(|b| b.then_fails).unwrap();
        assert_eq!(branch.cond_leaves.len(), 2, "{:?}", branch.cond_leaves);
        let merged = branch.cond_leaves.iter().find(|l| l.len() == 2).expect("merged leaf");
        assert!(merged.contains(&Taint::Param("p1".into())));
        assert!(merged.contains(&Taint::Param("p2".into())));
    }

    #[test]
    fn branch_params_and_meta_flags_set() {
        let r = run(
            r#"
            component c;
            metadata sb { f }
            param int v = option("-v");
            fn g() {
                m = sb.f;
                big = v > 10;
                if (big && m) { fail("no"); }
            }
            "#,
        );
        let c = r.comparisons.iter().find(|c| c.rhs_const == Some(10)).unwrap();
        assert!(c.branch_has_meta);
        assert_eq!(c.branch_params.len(), 1);
    }

    #[test]
    fn untainted_comparisons_are_skipped() {
        let r = run(
            r#"
            component c;
            fn f() {
                x = 1;
                if (x > 0) { fail("never"); }
            }
            "#,
        );
        assert!(r.comparisons.is_empty());
    }

    #[test]
    fn deep_condition_chain_counts_truncations() {
        // a !!!…!cond chain deeper than the cap: the decomposition is
        // cut off and the result must say so instead of silently
        // reporting "no dependency"
        let mut src = String::from(
            "component c;\nparam int v = option(\"-v\");\nfn f() {\nc0 = v > 0;\n",
        );
        for i in 0..24 {
            src.push_str(&format!("c{} = !c{i};\n", i + 1));
        }
        src.push_str("if (c24) { fail(\"deep\"); }\n}\n");
        let r = run(&src);
        assert!(
            r.truncated_conditions > 0,
            "expected truncations, got {:?}",
            r.truncated_conditions
        );
        // shallow programs must report zero
        let shallow = run(
            r#"
            component c;
            param int v = option("-v");
            fn f() { if (v > 0) { fail("x"); } }
            "#,
        );
        assert_eq!(shallow.truncated_conditions, 0);
    }

    #[test]
    fn truncation_count_is_engine_independent() {
        let mut src = String::from(
            "component c;\nparam int v = option(\"-v\");\nfn f() {\nc0 = v > 0;\n",
        );
        for i in 0..20 {
            src.push_str(&format!("c{} = !c{i};\n", i + 1));
        }
        src.push_str("if (c20) { fail(\"deep\"); }\n}\n");
        let program = compile(&src).unwrap();
        let work = analyze(&program, AnalysisOptions::default());
        let sweep = analyze(&program, AnalysisOptions::sweep_baseline());
        assert_eq!(work.truncated_conditions, sweep.truncated_conditions);
        assert_eq!(work, sweep);
    }

    #[test]
    fn stats_report_work_done() {
        let program = compile(
            r#"
            component c;
            param int b = option("-b");
            fn f() {
                x = b / 2;
                y = x + 1;
                if (y > 100) { fail("big"); }
            }
            "#,
        )
        .unwrap();
        let (_, sweep) = analyze_with_stats(&program, AnalysisOptions::sweep_baseline());
        let (_, work) = analyze_with_stats(&program, AnalysisOptions::default());
        assert!(sweep.instructions_visited > 0);
        assert!(sweep.propagation_rounds >= 2, "{sweep:?}");
        assert!(work.instructions_visited > 0);
        assert!(work.instructions_visited <= sweep.instructions_visited);
        assert_eq!(sweep.set_unions_memoized, 0);
    }
}
