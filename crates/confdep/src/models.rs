//! The CIR source models of the six Ext4-ecosystem components, written
//! in the `cir` language and transcribing the configuration handling of
//! the real code (e2fsprogs and the ext4 kernel module).
//!
//! Each model is what the paper's analyzer sees after pre-selecting the
//! configuration-handling functions of a component (§4.1). The
//! `resize2fs` model additionally reproduces the prototype's documented
//! imprecision — three spurious self-dependencies and one spurious
//! cross-component dependency — via the same mechanisms a
//! flow-insensitive taint analysis exhibits on the real code.

/// `mke2fs` — create-stage configuration handling.
pub const MKE2FS: &str = include_str!("models/mke2fs.cir");

/// `mount` — option parsing plus the `ext4_fill_super`-side checks.
pub const MOUNT: &str = include_str!("models/mount.cir");

/// The ext4 kernel module's own knobs and feature-driven behaviour.
pub const EXT4: &str = include_str!("models/ext4.cir");

/// `e4defrag` — online defragmentation.
pub const E4DEFRAG: &str = include_str!("models/e4defrag.cir");

/// `resize2fs` — offline resize (the Figure 1 component).
pub const RESIZE2FS: &str = include_str!("models/resize2fs.cir");

/// `e2fsck` — offline checking.
pub const E2FSCK: &str = include_str!("models/e2fsck.cir");

/// `mkfs.f2fs` — create-stage configuration handling of the second
/// (f2fs) ecosystem. Component names use underscores because they
/// double as CIR identifiers.
pub const MKFS_F2FS: &str = include_str!("models/mkfs_f2fs.cir");

/// The f2fs mount path — option parsing plus the `f2fs_fill_super`
/// checks, in one function (unlike ext4's split loader).
pub const F2FS: &str = include_str!("models/f2fs.cir");

/// `fsck.f2fs` — offline checking.
pub const FSCK_F2FS: &str = include_str!("models/fsck_f2fs.cir");

/// `resize.f2fs` — offline resize (the f2fs Figure-1 analog).
pub const RESIZE_F2FS: &str = include_str!("models/resize_f2fs.cir");

/// All Ext4-ecosystem models with their component names, in the
/// paper's order. This set is what the paper's study analyzed; the f2fs
/// models live in [`f2fs_all`] so every headline number stays pinned.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("mke2fs", MKE2FS),
        ("mount", MOUNT),
        ("ext4", EXT4),
        ("e4defrag", E4DEFRAG),
        ("resize2fs", RESIZE2FS),
        ("e2fsck", E2FSCK),
    ]
}

/// All f2fs-ecosystem models with their component names, in stage
/// order.
pub fn f2fs_all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("mkfs_f2fs", MKFS_F2FS),
        ("f2fs", F2FS),
        ("fsck_f2fs", FSCK_F2FS),
        ("resize_f2fs", RESIZE_F2FS),
    ]
}

/// The model for a given component name, across both ecosystems.
pub fn by_name(component: &str) -> Option<&'static str> {
    all()
        .into_iter()
        .chain(f2fs_all())
        .find(|(n, _)| *n == component)
        .map(|(_, src)| src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_compile() {
        for (name, src) in all().into_iter().chain(f2fs_all()) {
            let program = cir::compile(src)
                .unwrap_or_else(|e| panic!("model {name} failed to compile: {e}"));
            assert_eq!(program.component, name);
            assert!(!program.functions.is_empty(), "{name} has no functions");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mke2fs").is_some());
        assert!(by_name("resize2fs").is_some());
        assert!(by_name("mkfs_f2fs").is_some());
        assert!(by_name("f2fs").is_some());
        assert!(by_name("zfs").is_none());
    }

    #[test]
    fn ecosystem_metadata_structs_are_disjoint() {
        // the bridge must never join ext4 and f2fs through a shared
        // field name: the two superblocks are different on-device state
        let ext4_fields: std::collections::BTreeSet<String> = all()
            .into_iter()
            .flat_map(|(_, src)| {
                let p = cir::compile(src).unwrap();
                p.metadata.into_iter().flat_map(|m| m.fields).collect::<Vec<_>>()
            })
            .collect();
        let f2fs_fields: std::collections::BTreeSet<String> = f2fs_all()
            .into_iter()
            .flat_map(|(_, src)| {
                let p = cir::compile(src).unwrap();
                p.metadata.into_iter().flat_map(|m| m.fields).collect::<Vec<_>>()
            })
            .collect();
        assert!(ext4_fields.is_disjoint(&f2fs_fields));
    }

    #[test]
    fn models_declare_realistic_parameter_counts() {
        let counts: Vec<(String, usize)> = all()
            .into_iter()
            .map(|(n, src)| (n.to_string(), cir::compile(src).unwrap().params.len()))
            .collect();
        let get = |n: &str| counts.iter().find(|(c, _)| c == n).unwrap().1;
        assert!(get("mke2fs") >= 25, "mke2fs models a large option surface");
        assert!(get("mount") >= 10);
        assert!(get("resize2fs") >= 8);
        assert!(get("e2fsck") >= 6);
    }

    #[test]
    fn shared_metadata_fields_overlap_across_components() {
        // the bridge only works if writers and readers agree on fields
        let mke2fs = cir::compile(MKE2FS).unwrap();
        let resize = cir::compile(RESIZE2FS).unwrap();
        let m_fields: Vec<&String> = mke2fs.metadata.iter().flat_map(|m| m.fields.iter()).collect();
        let r_fields: Vec<&String> = resize.metadata.iter().flat_map(|m| m.fields.iter()).collect();
        for f in ["s_blocks_count", "s_feat_sparse_super2", "s_feat_64bit"] {
            assert!(m_fields.iter().any(|x| x.as_str() == f), "mke2fs missing {f}");
            assert!(r_fields.iter().any(|x| x.as_str() == f), "resize2fs missing {f}");
        }
    }
}
