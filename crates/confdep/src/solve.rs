//! The constraint solver: from a compiled [`ConstraintSet`] to concrete
//! `mke2fs` + `mount` configurations hitting a requested polarity.
//!
//! ConBugCk's original generator drew values from hard-coded arrays
//! (`BLOCK_SIZES`, `RESERVED`, `MOUNT_SETS`), which leaves most
//! constraint polarities uncovered: nothing in those tables can, say,
//! violate the `journal_size` range or satisfy the
//! `metadata_csum`/`uninit_bg` exclusion with both parameters present.
//! The solver inverts the executable constraint layer instead. Given a
//! target `(constraint, polarity)` it
//!
//! 1. **pins** the subject (and, for control pairs, object) parameters
//!    to candidate typed values derived from the constraint itself and
//!    the `ParamSpec` registry — range bounds, bound ± 1, matching or
//!    mismatching data-type shapes, engage/disengage pairs;
//! 2. **propagates** every other statically-evaluable constraint over
//!    the partial config, repairing collateral violations through the
//!    unpinned participants (SD ranges clamp, control pairs disengage);
//! 3. **renders** the assignment to a concrete `mke2fs` argument vector
//!    plus `mount -o` option string, re-parses it through the lenient
//!    typed views, and **verifies** the target constraint actually
//!    evaluates to the requested polarity — backtracking to the next
//!    candidate pinning when any step fails.
//!
//! The achievable target universe ([`Solver::targets`]) is exactly the
//! set of `(signature, polarity)` pairs the solver can witness this
//! way; the coverage-guided fuzz campaign in `contools` seeds each
//! round from the still-uncovered part of it.

use e2fstools::params::{all_params, ParamSpec, ParamType};
use e2fstools::typed::{TypedConfig, TypedValue};
use serde::{Deserialize, Serialize};

use crate::constraint::{Constraint, ConstraintSet, Verdict};
use crate::model::{DepKind, Endpoint};

/// The requested evaluation outcome of a target constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// The constraint is engaged and holds.
    Satisfy,
    /// The constraint is engaged and fails.
    Violate,
    /// The constraint holds with the subject exactly on a finite range
    /// bound (only meaningful for value-range constraints).
    Boundary,
}

impl Polarity {
    /// All polarities, in coverage-table order.
    pub fn all() -> [Polarity; 3] {
        [Polarity::Satisfy, Polarity::Violate, Polarity::Boundary]
    }

    /// Short lowercase label (`satisfy`/`violate`/`boundary`).
    pub fn label(self) -> &'static str {
        match self {
            Polarity::Satisfy => "satisfy",
            Polarity::Violate => "violate",
            Polarity::Boundary => "boundary",
        }
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A solved whole-configuration state: the typed `mke2fs` and `mount`
/// halves, plus the rendering into the concrete CLI surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolvedConfig {
    /// The `mke2fs` half.
    pub mkfs: TypedConfig,
    /// The `mount` half.
    pub mount: TypedConfig,
}

/// Options the renderer can express as a valued `mke2fs` flag.
const MKFS_VALUED: [(&str, &str); 10] = [
    ("blocksize", "-b"),
    ("cluster_size", "-C"),
    ("blocks_per_group", "-g"),
    ("number_of_groups", "-G"),
    ("inode_ratio", "-i"),
    ("inode_size", "-I"),
    ("reserved_percent", "-m"),
    ("inodes_count", "-N"),
    ("label", "-L"),
    ("uuid", "-U"),
];

/// `mke2fs` options spelled `FLAG key=value` (extended attributes).
const MKFS_KEYED: [(&str, &str, &str); 2] =
    [("journal_size", "-J", "size"), ("resize_headroom", "-E", "resize")];

/// The two-component configuration surface a [`Solver`] generates over:
/// which components play the create and mount roles, how the create
/// half renders to a CLI, which `ParamSpec` registry supplies value
/// domains, and which lenient views re-parse the rendering for
/// verification. [`SolverScope::ext4`] reproduces the original
/// hard-coded `mke2fs`/`mount` surface exactly; other ecosystems
/// construct their own scope (see the `ecosys` crate).
#[derive(Debug, Clone)]
pub struct SolverScope {
    /// The component whose parameters render as create-tool arguments.
    pub create_component: &'static str,
    /// The component whose parameters render as `-o` mount options.
    pub mount_component: &'static str,
    /// Create-side parameters spelled as a valued flag (`-b 4096`).
    pub valued: &'static [(&'static str, &'static str)],
    /// Create-side parameters spelled `FLAG key=value` (`-J size=64`).
    pub keyed: &'static [(&'static str, &'static str, &'static str)],
    /// Create-side parameters spelled as bare trailing operands.
    pub operand_params: &'static [&'static str],
    /// Fixed operands every rendering carries (e.g. a device path),
    /// emitted before the operand parameters.
    pub fixed_operands: &'static [&'static str],
    /// Integer parameters the base skeleton engages in-range.
    pub base_create_ints: &'static [&'static str],
    /// Boolean parameters the base skeleton switches on.
    pub base_create_bools: &'static [&'static str],
    /// Mount-side enums the base skeleton pins to their first member.
    pub base_mount_enums: &'static [&'static str],
    /// The `ParamSpec` registry restricted to the two components.
    pub registry: Vec<ParamSpec>,
    /// Lenient view re-parsing the rendered create arguments.
    pub parse_create: fn(&[String]) -> TypedConfig,
    /// Lenient view re-parsing the rendered mount option string.
    pub parse_mount: fn(&str) -> TypedConfig,
}

impl SolverScope {
    /// The original Ext4 scope: `mke2fs` + `mount`, the e2fstools
    /// registry, and the e2fstools lenient views.
    pub fn ext4() -> Self {
        SolverScope {
            create_component: "mke2fs",
            mount_component: "mount",
            valued: &MKFS_VALUED,
            keyed: &MKFS_KEYED,
            operand_params: &[],
            fixed_operands: &[],
            base_create_ints: &["blocksize", "reserved_percent"],
            base_create_bools: &["extent", "sparse_super", "resize_inode"],
            base_mount_enums: &["data"],
            registry: all_params()
                .into_iter()
                .filter(|p| p.component == "mke2fs" || p.component == "mount")
                .collect(),
            parse_create: TypedConfig::from_mkfs_args_lenient,
            parse_mount: TypedConfig::from_mount_opts_lenient,
        }
    }

    /// Which role (create/mount component name) a component plays in
    /// this scope, or `None` when it is outside the generated surface.
    pub fn scope_of(&self, component: &str) -> Option<&'static str> {
        if component == self.create_component {
            Some(self.create_component)
        } else if component == self.mount_component {
            Some(self.mount_component)
        } else {
            None
        }
    }

    fn valued_opt(&self, param: &str) -> Option<&'static str> {
        self.valued.iter().find(|(p, _)| *p == param).map(|(_, o)| *o)
    }

    fn keyed_opt(&self, param: &str) -> Option<(&'static str, &'static str)> {
        self.keyed.iter().find(|(p, _, _)| *p == param).map(|(_, f, k)| (*f, *k))
    }

    fn is_operand(&self, param: &str) -> bool {
        self.operand_params.contains(&param)
    }
}

impl SolvedConfig {
    /// Renders the assignment as `(mke2fs args, mount option string)`
    /// under the original Ext4 scope — see [`SolvedConfig::render_with`].
    pub fn render(&self) -> Option<(Vec<String>, String)> {
        self.render_with(&SolverScope::ext4())
    }

    /// Renders the assignment as `(create-tool args, mount option
    /// string)` under `scope`.
    ///
    /// Returns `None` when some value has no CLI spelling that survives
    /// the lenient round trip (e.g. a string value on a parameter with
    /// no valued option) — the solver treats that as a failed candidate.
    pub fn render_with(&self, scope: &SolverScope) -> Option<(Vec<String>, String)> {
        let mut args: Vec<String> = Vec::new();
        let mut features: Vec<String> = Vec::new();
        let mut operands: Vec<String> = Vec::new();
        for (name, value) in &self.mkfs.values {
            if let Some(opt) = scope.valued_opt(name) {
                let rendered = match value {
                    TypedValue::Int(i) => i.to_string(),
                    TypedValue::Str(s) => s.clone(),
                    TypedValue::Bool(_) => return None,
                };
                args.push(opt.to_string());
                args.push(rendered);
                continue;
            }
            if let Some((flag, key)) = scope.keyed_opt(name) {
                match value {
                    TypedValue::Int(i) => {
                        args.push(flag.to_string());
                        args.push(format!("{key}={i}"));
                        continue;
                    }
                    TypedValue::Str(s) => {
                        args.push(flag.to_string());
                        args.push(format!("{key}={s}"));
                        continue;
                    }
                    // a boolean on a keyed option falls through to the
                    // feature spelling, matching the original renderer
                    TypedValue::Bool(_) => {}
                }
            }
            if scope.is_operand(name) {
                match value {
                    TypedValue::Int(i) => operands.push(i.to_string()),
                    TypedValue::Str(s) => operands.push(s.clone()),
                    TypedValue::Bool(_) => return None,
                }
                continue;
            }
            match value {
                TypedValue::Bool(true) => features.push(name.clone()),
                TypedValue::Bool(false) => features.push(format!("^{name}")),
                _ => return None, // int/str value on a feature-only parameter
            }
        }
        if !features.is_empty() {
            args.push("-O".to_string());
            args.push(features.join(","));
        }
        for fixed in scope.fixed_operands {
            args.push((*fixed).to_string());
        }
        args.extend(operands);
        let mut tokens: Vec<String> = Vec::new();
        for (name, value) in &self.mount.values {
            match value {
                TypedValue::Bool(true) => tokens.push(name.clone()),
                TypedValue::Bool(false) => tokens.push(format!("no{name}")),
                TypedValue::Int(i) => tokens.push(format!("{name}={i}")),
                TypedValue::Str(s) => tokens.push(format!("{name}={s}")),
            }
        }
        Some((args, tokens.join(",")))
    }
}

/// One pinned parameter of a candidate assignment.
#[derive(Debug, Clone)]
struct Pin {
    component: &'static str, // the scope's create or mount component
    param: String,
    value: TypedValue,
}

/// The constraint solver over one compiled set.
#[derive(Debug)]
pub struct Solver<'a> {
    set: &'a ConstraintSet,
    scope: SolverScope,
}

impl<'a> Solver<'a> {
    /// Builds a solver over `set` with the original Ext4 scope —
    /// byte-identical to the pre-scope solver.
    pub fn new(set: &'a ConstraintSet) -> Self {
        Solver::with_scope(set, SolverScope::ext4())
    }

    /// Builds a solver over `set` generating configurations for the
    /// components `scope` names; the scope's registry supplies value
    /// domains (enum members, integer ranges) the constraints alone do
    /// not carry.
    pub fn with_scope(set: &'a ConstraintSet, scope: SolverScope) -> Self {
        Solver { set, scope }
    }

    /// The constraint set being solved over.
    pub fn constraints(&self) -> &ConstraintSet {
        self.set
    }

    /// The configuration surface being generated over.
    pub fn scope(&self) -> &SolverScope {
        &self.scope
    }

    fn spec(&self, component: &str, param: &str) -> Option<&ParamSpec> {
        self.scope.registry.iter().find(|s| s.component == component && s.name == param)
    }

    /// The achievable target universe: every `(signature, polarity)`
    /// pair the solver can witness with a concrete configuration, in
    /// extraction × polarity order.
    pub fn targets(&self) -> Vec<(String, Polarity)> {
        self.witness_targets()
            .into_iter()
            .map(|(i, polarity, _)| (self.set.constraints()[i].signature().to_string(), polarity))
            .collect()
    }

    /// [`Solver::targets`] with the witnesses attached: every
    /// achievable target as `(constraint position, polarity, solved
    /// configuration)`. One pass computes universe and seeds together,
    /// so campaign setup solves each target exactly once.
    pub fn witness_targets(&self) -> Vec<(usize, Polarity, SolvedConfig)> {
        let mut out = Vec::new();
        for (i, c) in self.set.constraints().iter().enumerate() {
            for polarity in Polarity::all() {
                if let Some(solved) = self.solve(c, polarity) {
                    out.push((i, polarity, solved));
                }
            }
        }
        out
    }

    /// Solves for a configuration whose evaluation of the constraint
    /// with this signature yields `polarity`.
    pub fn solve_signature(&self, signature: &str, polarity: Polarity) -> Option<SolvedConfig> {
        self.solve(self.set.find(signature)?, polarity)
    }

    /// Solves for a configuration whose evaluation of `target` yields
    /// `polarity`: pin candidate values, propagate and repair the other
    /// constraints, render, and verify — backtracking over candidates.
    pub fn solve(&self, target: &Constraint, polarity: Polarity) -> Option<SolvedConfig> {
        for pins in self.candidates(target, polarity) {
            let mut solved = self.base_config();
            let mut pinned: Vec<(&'static str, String)> = Vec::new();
            for pin in &pins {
                let cfg = if pin.component == self.scope.create_component {
                    &mut solved.mkfs
                } else {
                    &mut solved.mount
                };
                cfg.values.insert(pin.param.clone(), pin.value.clone());
                pinned.push((pin.component, pin.param.clone()));
            }
            self.propagate(&mut solved, &pinned);
            let Some((args, opts)) = solved.render_with(&self.scope) else { continue };
            // verify through the exact views the campaign will use
            let mkfs_view = (self.scope.parse_create)(&args);
            let mount_view = (self.scope.parse_mount)(&opts);
            if self.verify(target, polarity, &mkfs_view, &mount_view) {
                return Some(SolvedConfig { mkfs: mkfs_view, mount: mount_view });
            }
        }
        None
    }

    /// Whether the rendered views hit the requested polarity — the
    /// public form of the solver's own verification step, used by the
    /// campaign's coverage tracker.
    pub fn hits(
        &self,
        target: &Constraint,
        polarity: Polarity,
        mkfs: &TypedConfig,
        mount: &TypedConfig,
    ) -> bool {
        self.verify(target, polarity, mkfs, mount)
    }

    /// The polarities a configuration state witnesses for `target`:
    /// `Satisfy` or `Violate` from the evaluation verdict, plus
    /// `Boundary` when a satisfied subject sits exactly on a finite
    /// range bound. Empty when the constraint is not engaged.
    pub fn observed_polarities(
        &self,
        target: &Constraint,
        mkfs: &TypedConfig,
        mount: &TypedConfig,
    ) -> Vec<Polarity> {
        let mut out = Vec::new();
        match target.evaluate(&[mkfs, mount]) {
            Verdict::Satisfied => {
                out.push(Polarity::Satisfy);
                if self.verify(target, Polarity::Boundary, mkfs, mount) {
                    out.push(Polarity::Boundary);
                }
            }
            Verdict::Violated => out.push(Polarity::Violate),
            Verdict::NotApplicable => {}
        }
        out
    }

    /// Whether the rendered views hit the requested polarity.
    fn verify(
        &self,
        target: &Constraint,
        polarity: Polarity,
        mkfs: &TypedConfig,
        mount: &TypedConfig,
    ) -> bool {
        let verdict = target.evaluate(&[mkfs, mount]);
        match polarity {
            Polarity::Satisfy => verdict == Verdict::Satisfied,
            Polarity::Violate => verdict == Verdict::Violated,
            Polarity::Boundary => {
                if verdict != Verdict::Satisfied {
                    return false;
                }
                let d = &target.dependency;
                let Some(scope) = self.scope.scope_of(&d.subject.component) else {
                    return false;
                };
                let cfg = if scope == self.scope.create_component { mkfs } else { mount };
                match cfg.get(crate::constraint::registry_name(&d.subject.component, &d.subject.param))
                {
                    Some(TypedValue::Int(v)) => {
                        d.detail.min == Some(*v) || d.detail.max == Some(*v)
                    }
                    _ => false,
                }
            }
        }
    }

    /// A known-good skeleton the pins are layered over: an in-range
    /// block size and reserved percentage, the baseline feature set, and
    /// an ordered-data mount — every value sourced from the constraint
    /// ranges and the registry rather than hard-coded tables, so solved
    /// *satisfy* configurations double as deep-reaching campaign seeds.
    fn base_config(&self) -> SolvedConfig {
        let create = self.scope.create_component;
        let mut mkfs = TypedConfig::new(create);
        for param in self.scope.base_create_ints {
            mkfs.set_int(param, self.engage_int(create, param));
        }
        for param in self.scope.base_create_bools {
            mkfs.set_bool(param, true);
        }
        let mut mount = TypedConfig::new(self.scope.mount_component);
        for param in self.scope.base_mount_enums {
            if let Some(members) = self.enum_members(self.scope.mount_component, param) {
                if let Some(first) = members.first() {
                    mount.set_str(param, first);
                }
            }
        }
        SolvedConfig { mkfs, mount }
    }

    /// An in-range integer for engaging `param`: prefers the extracted
    /// value-range, falls back to the registry's `Int` domain, clamps
    /// power-of-two parameters onto the lattice the utilities accept.
    fn engage_int(&self, component: &str, param: &str) -> i64 {
        let (min, max) = self
            .set
            .int_range(component, param)
            .or_else(|| match self.spec(component, param) {
                Some(ParamSpec { param_type: ParamType::Int { min, max }, .. }) => {
                    Some((*min, *max))
                }
                _ => None,
            })
            .unwrap_or((i64::MIN, i64::MAX));
        let candidate = if min == i64::MIN && max == i64::MAX {
            16
        } else if min == i64::MIN {
            max.min(16).max(max.min(1))
        } else if max == i64::MAX {
            min.max(16.min(min).max(min))
        } else {
            min + (max - min) / 2
        };
        if param == "blocksize" {
            // the utilities only accept powers of two, and the cost of
            // a deep run scales with the formatted image size (block
            // size times a fixed block count) — so take the smallest
            // in-range power of two rather than a midpoint
            let lo = (min.max(1) as u64).next_power_of_two();
            return (lo as i64).clamp(min.max(1), max);
        }
        candidate.clamp(min.min(max), max)
    }

    fn enum_members(&self, component: &str, param: &str) -> Option<&[String]> {
        match self.spec(component, param) {
            Some(ParamSpec { param_type: ParamType::Enum(members), .. }) => Some(members),
            _ => None,
        }
    }

    /// Whether a pinned value on `(component, param)` has a CLI
    /// rendering of the right shape.
    fn renderable(&self, component: &str, param: &str, value: &TypedValue) -> bool {
        if component == self.scope.mount_component {
            return true;
        }
        if self.scope.valued_opt(param).is_some()
            || self.scope.keyed_opt(param).is_some()
            || self.scope.is_operand(param)
        {
            return !matches!(value, TypedValue::Bool(_));
        }
        matches!(value, TypedValue::Bool(_))
    }

    /// Candidate pin sets for a `(target, polarity)` request, best
    /// first. Empty when the target is out of scope or the polarity has
    /// no witness (behavioural kinds, unbounded boundaries, ...).
    fn candidates(&self, target: &Constraint, polarity: Polarity) -> Vec<Vec<Pin>> {
        let d = &target.dependency;
        let Some(subj_scope) = self.scope.scope_of(&d.subject.component) else {
            return Vec::new();
        };
        let subj = crate::constraint::registry_name(&d.subject.component, &d.subject.param);
        let pin = |component: &'static str, param: &str, value: TypedValue| Pin {
            component,
            param: param.to_string(),
            value,
        };
        let mut out: Vec<Vec<Pin>> = Vec::new();
        match d.kind {
            DepKind::SdValueRange => {
                let (min, max) = (d.detail.min, d.detail.max);
                let must_not = d
                    .detail
                    .relation
                    .as_deref()
                    .is_some_and(|r| r.contains("must not equal"));
                let mut push_int = |v: i64| {
                    out.push(vec![pin(subj_scope, subj, TypedValue::Int(v))]);
                };
                match polarity {
                    Polarity::Satisfy => {
                        let lo = min.unwrap_or(i64::MIN);
                        let hi = max.unwrap_or(i64::MAX);
                        let mid = self.engage_int(&d.subject.component, subj);
                        for v in [mid.clamp(lo.min(hi), hi), lo.max(0).clamp(lo, hi), hi.min(1 << 20).clamp(lo, hi)]
                        {
                            if !(must_not && d.detail.value_set.contains(&v)) {
                                push_int(v);
                            }
                        }
                    }
                    Polarity::Violate => {
                        if let Some(hi) = max {
                            if let Some(v) = hi.checked_add(1) {
                                push_int(v);
                            }
                        }
                        if let Some(lo) = min {
                            if let Some(v) = lo.checked_sub(1) {
                                push_int(v);
                            }
                        }
                        if must_not {
                            for v in &d.detail.value_set {
                                push_int(*v);
                            }
                        }
                    }
                    Polarity::Boundary => {
                        for v in [min, max].into_iter().flatten() {
                            if !(must_not && d.detail.value_set.contains(&v)) {
                                push_int(v);
                            }
                        }
                    }
                }
            }
            DepKind::SdDataType => {
                let Some(ty) = d.detail.data_type.as_deref() else { return Vec::new() };
                let matching: Vec<TypedValue> = match ty {
                    "integer" | "int" | "size" => {
                        vec![TypedValue::Int(self.engage_int(&d.subject.component, subj))]
                    }
                    "boolean" | "bool" | "flag" => vec![TypedValue::Bool(true)],
                    "string" | "enum" | "path" => {
                        let member = self
                            .enum_members(&d.subject.component, subj)
                            .and_then(|m| m.first().cloned())
                            .unwrap_or_else(|| "x".to_string());
                        vec![TypedValue::Str(member)]
                    }
                    _ => Vec::new(), // unknown types satisfy vacuously; no stable witness
                };
                let mismatching: Vec<TypedValue> = match ty {
                    "integer" | "int" | "size" => vec![TypedValue::Str("x".to_string())],
                    "boolean" | "bool" | "flag" => vec![TypedValue::Int(1)],
                    "string" | "enum" | "path" => vec![TypedValue::Int(7)],
                    _ => Vec::new(),
                };
                let chosen = match polarity {
                    Polarity::Satisfy => matching,
                    Polarity::Violate => mismatching,
                    Polarity::Boundary => Vec::new(),
                };
                for value in chosen {
                    if self.renderable(subj_scope, subj, &value) {
                        out.push(vec![pin(subj_scope, subj, value)]);
                    }
                }
            }
            DepKind::CpdControl | DepKind::CcdControl => {
                let Some(Endpoint::Param(obj_ref)) = &d.object else { return Vec::new() };
                let Some(obj_scope) = self.scope.scope_of(&obj_ref.component) else {
                    return Vec::new();
                };
                let obj = crate::constraint::registry_name(&obj_ref.component, &obj_ref.param);
                let engage = |solver: &Self, component: &str, param: &str| -> TypedValue {
                    let is_valued = component == solver.scope.create_component
                        && (solver.scope.valued_opt(param).is_some()
                            || solver.scope.keyed_opt(param).is_some()
                            || solver.scope.is_operand(param));
                    let registry_int = matches!(
                        solver.spec(component, param),
                        Some(ParamSpec { param_type: ParamType::Int { .. } | ParamType::Size, .. })
                    );
                    if is_valued || (component == solver.scope.mount_component && registry_int) {
                        TypedValue::Int(solver.engage_int(component, param))
                    } else {
                        TypedValue::Bool(true)
                    }
                };
                let disengage = TypedValue::Bool(false);
                let requires = d.detail.relation.as_deref() == Some("requires");
                let s_on = engage(self, &d.subject.component, subj);
                let o_on = engage(self, &obj_ref.component, obj);
                if requires {
                    match polarity {
                        Polarity::Satisfy => {
                            out.push(vec![
                                pin(subj_scope, subj, s_on.clone()),
                                pin(obj_scope, obj, o_on.clone()),
                            ]);
                            out.push(vec![
                                pin(subj_scope, subj, disengage.clone()),
                                pin(obj_scope, obj, o_on),
                            ]);
                        }
                        Polarity::Violate => out.push(vec![
                            pin(subj_scope, subj, s_on),
                            pin(obj_scope, obj, disengage),
                        ]),
                        Polarity::Boundary => {}
                    }
                } else {
                    // mutual exclusion (the extractor's combined
                    // "cannot be combined / requires" relation)
                    match polarity {
                        Polarity::Satisfy => {
                            out.push(vec![
                                pin(subj_scope, subj, s_on.clone()),
                                pin(obj_scope, obj, disengage.clone()),
                            ]);
                            out.push(vec![
                                pin(subj_scope, subj, disengage.clone()),
                                pin(obj_scope, obj, o_on.clone()),
                            ]);
                            out.push(vec![
                                pin(subj_scope, subj, disengage.clone()),
                                pin(obj_scope, obj, disengage),
                            ]);
                        }
                        Polarity::Violate => {
                            out.push(vec![pin(subj_scope, subj, s_on), pin(obj_scope, obj, o_on)]);
                        }
                        Polarity::Boundary => {}
                    }
                }
                out.retain(|pins| {
                    pins.iter().all(|p| self.renderable(p.component, &p.param, &p.value))
                });
            }
            // value couplings and behavioural CCDs have no static
            // predicate — nothing to witness
            DepKind::CpdValue | DepKind::CcdValue | DepKind::CcdBehavioral => {}
        }
        out.retain(|pins| {
            pins.iter().all(|p| self.renderable(p.component, &p.param, &p.value))
        });
        out
    }

    /// Repairs a whole-configuration state in place: propagates every
    /// statically-evaluable constraint over the assignment with *no*
    /// pinned parameters, so each violated constraint is repaired
    /// through its participants exactly as during solving — SD ranges
    /// clamp, data types coerce, control pairs disengage. Parameters
    /// that engage no violated constraint are never touched, which
    /// keeps the proposal minimal. The validation engine's `repair`
    /// mode layers a disengage-the-leftovers pass on top for the few
    /// violations propagation alone cannot fix.
    pub fn repair(&self, solved: &mut SolvedConfig) {
        self.propagate(solved, &[]);
    }

    /// Propagates the non-target constraints over the partial config,
    /// repairing collateral violations through unpinned participants: SD
    /// ranges clamp the value into range, data types coerce the shape,
    /// control pairs disengage the unpinned side. Pinned parameters are
    /// never touched; an unrepairable violation is left standing (it is
    /// collateral coverage, not a solving failure).
    fn propagate(&self, solved: &mut SolvedConfig, pinned: &[(&'static str, String)]) {
        let is_pinned = |component: &str, param: &str| {
            pinned.iter().any(|(c, p)| *c == component && p == param)
        };
        for _round in 0..4 {
            let mut changed = false;
            for c in self.set.constraints() {
                let verdict = c.evaluate(&[&solved.mkfs, &solved.mount]);
                if verdict != Verdict::Violated {
                    continue;
                }
                let d = &c.dependency;
                let subj_scope = match self.scope.scope_of(&d.subject.component) {
                    Some(s) => s,
                    None => continue,
                };
                let subj =
                    crate::constraint::registry_name(&d.subject.component, &d.subject.param);
                match d.kind {
                    DepKind::SdValueRange => {
                        if is_pinned(subj_scope, subj) {
                            continue;
                        }
                        let cfg = if subj_scope == self.scope.create_component {
                            &mut solved.mkfs
                        } else {
                            &mut solved.mount
                        };
                        if let Some(&TypedValue::Int(v)) = cfg.get(subj) {
                            let clamped = v.clamp(
                                d.detail.min.unwrap_or(i64::MIN),
                                d.detail.max.unwrap_or(i64::MAX),
                            );
                            cfg.set_int(subj, clamped);
                            changed = true;
                        }
                    }
                    DepKind::SdDataType => {
                        if is_pinned(subj_scope, subj) {
                            continue;
                        }
                        let repaired = match d.detail.data_type.as_deref() {
                            Some("integer" | "int" | "size") => {
                                TypedValue::Int(self.engage_int(&d.subject.component, subj))
                            }
                            Some("string" | "enum" | "path") => TypedValue::Str(
                                self.enum_members(&d.subject.component, subj)
                                    .and_then(|m| m.first().cloned())
                                    .unwrap_or_else(|| "x".to_string()),
                            ),
                            Some("boolean" | "bool" | "flag") => TypedValue::Bool(true),
                            _ => continue,
                        };
                        if self.renderable(subj_scope, subj, &repaired) {
                            let cfg = if subj_scope == self.scope.create_component {
                                &mut solved.mkfs
                            } else {
                                &mut solved.mount
                            };
                            cfg.values.insert(subj.to_string(), repaired);
                            changed = true;
                        }
                    }
                    DepKind::CpdControl | DepKind::CcdControl => {
                        let Some(Endpoint::Param(obj_ref)) = &d.object else { continue };
                        let Some(obj_scope) = self.scope.scope_of(&obj_ref.component) else {
                            continue;
                        };
                        let obj =
                            crate::constraint::registry_name(&obj_ref.component, &obj_ref.param);
                        // prefer repairing through the object, then the
                        // subject; a participant repairs by disengaging
                        // (booleans) or leaving the config (values)
                        let repair_targets =
                            [(obj_scope, obj), (subj_scope, subj)];
                        for (scope, param) in repair_targets {
                            if is_pinned(scope, param) {
                                continue;
                            }
                            let cfg = if scope == self.scope.create_component {
                                &mut solved.mkfs
                            } else {
                                &mut solved.mount
                            };
                            match cfg.get(param) {
                                Some(TypedValue::Bool(true)) => {
                                    cfg.set_bool(param, false);
                                    changed = true;
                                    break;
                                }
                                Some(TypedValue::Int(_) | TypedValue::Str(_)) => {
                                    cfg.values.remove(param);
                                    changed = true;
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Boundary-derived integer pool for `(component, param)` — the
    /// mutation vocabulary that replaces the hard-coded value tables:
    /// range bounds, bounds ± 1, midpoint, and a short power-of-two
    /// ladder from the lower bound.
    pub fn int_pool(&self, component: &str, param: &str) -> Vec<i64> {
        let Some((min, max)) = self.set.int_range(component, param).or_else(|| {
            match self.spec(component, param) {
                Some(ParamSpec { param_type: ParamType::Int { min, max }, .. }) => {
                    Some((*min, *max))
                }
                _ => None,
            }
        }) else {
            return vec![0, 1, 16];
        };
        let mut pool: Vec<i64> = Vec::new();
        if min != i64::MIN {
            pool.extend([min, min.saturating_sub(1), min.saturating_add(1)]);
            let mut p = min.max(1);
            for _ in 0..3 {
                if let Some(next) = p.checked_mul(2) {
                    if max == i64::MAX || next <= max {
                        pool.push(next);
                        p = next;
                    }
                }
            }
        }
        if max != i64::MAX {
            pool.extend([max, max.saturating_add(1), max.saturating_sub(1)]);
        }
        if min != i64::MIN && max != i64::MAX {
            pool.push(min + (max - min) / 2);
        }
        if pool.is_empty() {
            pool.extend([0, 1, 16]);
        }
        pool.sort_unstable();
        pool.dedup();
        pool
    }

    /// Every registered feature-shaped parameter of `component`, plus
    /// the control-pair participants the extractor names that the
    /// registry does not — the feature mutation vocabulary.
    pub fn feature_pool(&self, component: &str) -> Vec<String> {
        let mut pool: Vec<String> = self
            .scope
            .registry
            .iter()
            .filter(|s| {
                s.component == component
                    && matches!(s.param_type, ParamType::Feature | ParamType::Bool)
            })
            .map(|s| s.name.clone())
            .collect();
        for c in self.set.constraints() {
            let d = &c.dependency;
            if !matches!(d.kind, DepKind::CpdControl | DepKind::CcdControl) {
                continue;
            }
            for (comp, param) in std::iter::once((&d.subject.component, &d.subject.param)).chain(
                match &d.object {
                    Some(Endpoint::Param(o)) => Some((&o.component, &o.param)),
                    _ => None,
                },
            ) {
                if comp == component && self.spec(comp, param).is_none() {
                    pool.push(param.clone());
                }
            }
        }
        pool.sort_unstable();
        pool.dedup();
        pool
    }

    /// The enum members of a parameter, for mutation (empty when the
    /// parameter is not enumerated).
    pub fn enum_pool(&self, component: &str, param: &str) -> Vec<String> {
        self.enum_members(component, param).map(<[String]>::to_vec).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_scenario, models, ExtractOptions};

    fn compiled() -> ConstraintSet {
        ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        )
    }

    fn views(solved: &SolvedConfig) -> (TypedConfig, TypedConfig) {
        (solved.mkfs.clone(), solved.mount.clone())
    }

    #[test]
    fn solves_range_polarities() {
        let set = compiled();
        let solver = Solver::new(&set);
        let c = set.find("SdValueRange|mke2fs:blocksize").expect("blocksize range");
        for (polarity, want) in [
            (Polarity::Satisfy, Verdict::Satisfied),
            (Polarity::Violate, Verdict::Violated),
            (Polarity::Boundary, Verdict::Satisfied),
        ] {
            let solved = solver.solve(c, polarity).expect("solvable");
            let (mkfs, mount) = views(&solved);
            assert_eq!(c.evaluate(&[&mkfs, &mount]), want, "{polarity}");
        }
        // boundary really sits on a bound
        let solved = solver.solve(c, Polarity::Boundary).unwrap();
        let v = solved.mkfs.get_int("blocksize").unwrap();
        assert!(v == 1024 || v == 65536, "boundary picked {v}");
    }

    #[test]
    fn solves_control_pair_polarities() {
        let set = compiled();
        let solver = Solver::new(&set);
        let c = set.find("CpdControl|mke2fs|meta_bg~resize_inode").unwrap();
        let violated = solver.solve(c, Polarity::Violate).expect("violable");
        let (mkfs, mount) = views(&violated);
        assert_eq!(c.evaluate(&[&mkfs, &mount]), Verdict::Violated);
        let satisfied = solver.solve(c, Polarity::Satisfy).expect("satisfiable");
        let (mkfs, mount) = views(&satisfied);
        assert_eq!(c.evaluate(&[&mkfs, &mount]), Verdict::Satisfied);
    }

    #[test]
    fn propagation_repairs_base_conflicts() {
        let set = compiled();
        let solver = Solver::new(&set);
        // pinning meta_bg on must disengage the base's resize_inode
        let c = set.find("CpdControl|mke2fs|meta_bg~resize_inode").unwrap();
        let solved = solver.solve(c, Polarity::Satisfy).unwrap();
        assert_eq!(solved.mkfs.get("meta_bg"), Some(&TypedValue::Bool(true)));
        assert_eq!(solved.mkfs.get("resize_inode"), Some(&TypedValue::Bool(false)));
    }

    #[test]
    fn out_of_scope_constraints_are_unsolvable() {
        let set = compiled();
        let solver = Solver::new(&set);
        let c = set.find("SdValueRange|resize2fs:new_size").expect("resize2fs range");
        for polarity in Polarity::all() {
            assert!(solver.solve(c, polarity).is_none(), "{polarity}");
        }
    }

    #[test]
    fn target_universe_is_substantial_and_renderable() {
        let set = compiled();
        let solver = Solver::new(&set);
        let targets = solver.targets();
        assert!(targets.len() >= 60, "only {} achievable targets", targets.len());
        // every target renders to a concrete config hitting its polarity
        for (sig, polarity) in &targets {
            let solved = solver.solve_signature(sig, *polarity).expect("target solvable");
            assert!(solved.render().is_some(), "{sig} {polarity} unrenderable");
        }
    }

    #[test]
    fn ext4_scope_reproduces_the_default_solver() {
        let set = compiled();
        let default = Solver::new(&set);
        let scoped = Solver::with_scope(&set, SolverScope::ext4());
        let dt = default.witness_targets();
        let st = scoped.witness_targets();
        assert_eq!(dt.len(), st.len());
        for ((di, dp, ds), (si, sp, ss)) in dt.iter().zip(st.iter()) {
            assert_eq!((di, dp), (si, sp));
            assert_eq!(ds, ss);
            assert_eq!(ds.render(), ss.render_with(scoped.scope()));
        }
    }

    #[test]
    fn pools_replace_hardcoded_tables() {
        let set = compiled();
        let solver = Solver::new(&set);
        let bs = solver.int_pool("mke2fs", "blocksize");
        assert!(bs.contains(&1024) && bs.contains(&65536) && bs.contains(&65537), "{bs:?}");
        assert!(solver.feature_pool("mke2fs").iter().any(|f| f == "meta_bg"));
        assert!(solver.enum_pool("mount", "data").iter().any(|m| m == "journal"));
    }
}
