//! Content-addressed analysis cache.
//!
//! Compiling and taint-analyzing a component model is a pure function
//! of the model source and the analysis options, so the result can be
//! cached under a fingerprint of exactly those inputs. The extraction
//! pipeline consults a process-wide [`AnalysisCache`] before analyzing
//! a component: re-extracting a scenario whose sources did not change
//! performs **zero** re-analyses (asserted by `tests/analysis_cache.rs`).
//!
//! The fingerprint keys on the source bytes and the
//! `interprocedural` flag only — `disable_bridge` shapes the later
//! bridging pass, not the per-component analysis, so toggling it must
//! (and does) hit the cache.
//!
//! The cache is in-memory; setting `CONFDEP_CACHE_SPILL` spills it to a
//! JSON file (the variable's value, or
//! `target/confdep-analysis-cache.json` when set to `1`) after each
//! scenario extraction, and pre-loads it from the same file on first
//! use — mirroring `crashsim`'s verdict cache.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::extract::{analyze_component, AnalyzedComponent, ExtractOptions};
use crate::ConfdepError;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content fingerprint of one analysis: FNV-1a over the model
/// source plus the option bits that affect per-component analysis.
pub fn fingerprint(src: &str, options: ExtractOptions) -> u64 {
    let h = fnv1a(FNV_OFFSET, src.as_bytes());
    // a separator byte keeps (src, flag) unambiguous
    fnv1a(h, &[0x1f, u8::from(options.interprocedural)])
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups answered without re-analysis.
    pub hits: u64,
    /// Lookups that ran a fresh analysis.
    pub misses: u64,
}

/// Entry format of the JSON spill file.
#[derive(serde::Serialize, serde::Deserialize)]
struct SpillEntry {
    fingerprint: u64,
    component: AnalyzedComponent,
}

/// A content-addressed map from model fingerprints to analysis results.
///
/// Thread-safe; results are shared as `Arc` so concurrent extractions
/// over the same models reuse one analysis.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    entries: Mutex<HashMap<u64, Arc<AnalyzedComponent>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The analysis of `src` under `options`, from cache or computed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Cir`] when the model does not compile
    /// (compile failures are not cached).
    pub fn get_or_analyze(
        &self,
        src: &str,
        options: ExtractOptions,
    ) -> Result<Arc<AnalyzedComponent>, ConfdepError> {
        let fp = fingerprint(src, options);
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // analyze outside the lock so parallel misses on *different*
        // models do not serialize
        let analyzed = Arc::new(analyze_component(src, options)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("cache poisoned");
        let entry = entries.entry(fp).or_insert_with(|| Arc::clone(&analyzed));
        Ok(Arc::clone(entry))
    }

    /// The hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached analyses.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }

    /// Writes the cache as JSON to `path` (entries sorted by
    /// fingerprint, so the file is deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Io`] / [`ConfdepError::Json`] on write or
    /// serialization failure.
    pub fn spill(&self, path: &Path) -> Result<(), ConfdepError> {
        let mut rows: Vec<SpillEntry> = self
            .entries
            .lock()
            .expect("cache poisoned")
            .iter()
            .map(|(&fingerprint, component)| SpillEntry {
                fingerprint,
                component: (**component).clone(),
            })
            .collect();
        rows.sort_by_key(|r| r.fingerprint);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, serde_json::to_string(&rows)?)?;
        Ok(())
    }

    /// Merges the entries of a spill file into this cache. Loaded
    /// entries count as neither hits nor misses.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Io`] / [`ConfdepError::Json`] on read or
    /// parse failure.
    pub fn load(&self, path: &Path) -> Result<usize, ConfdepError> {
        let rows: Vec<SpillEntry> = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        let n = rows.len();
        let mut entries = self.entries.lock().expect("cache poisoned");
        for row in rows {
            entries.entry(row.fingerprint).or_insert_with(|| Arc::new(row.component));
        }
        Ok(n)
    }
}

/// The spill path selected by `CONFDEP_CACHE_SPILL`, if the variable is
/// set: its value, or `target/confdep-analysis-cache.json` for `1`.
pub fn spill_path() -> Option<PathBuf> {
    match std::env::var("CONFDEP_CACHE_SPILL") {
        Ok(v) if v == "1" => Some(PathBuf::from("target/confdep-analysis-cache.json")),
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The process-wide cache used by the scenario extraction pipeline.
/// Pre-loaded from [`spill_path`] on first use when the file exists.
pub fn global() -> &'static AnalysisCache {
    static CACHE: OnceLock<AnalysisCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cache = AnalysisCache::new();
        if let Some(path) = spill_path() {
            if path.exists() {
                let _ = cache.load(&path);
            }
        }
        cache
    })
}

/// Spills the global cache when `CONFDEP_CACHE_SPILL` asks for it;
/// called by the pipeline after each scenario extraction. Spill
/// failures are deliberately non-fatal (the cache is an optimisation).
pub fn maybe_spill_global() {
    if let Some(path) = spill_path() {
        let _ = global().spill(&path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn fingerprint_separates_sources_and_options() {
        let a = fingerprint("component a; fn f() {}", ExtractOptions::default());
        let b = fingerprint("component b; fn f() {}", ExtractOptions::default());
        assert_ne!(a, b);
        let inter = ExtractOptions { interprocedural: true, ..ExtractOptions::default() };
        assert_ne!(a, fingerprint("component a; fn f() {}", inter));
        // disable_bridge does not affect per-component analysis
        let bridged = ExtractOptions { disable_bridge: true, ..ExtractOptions::default() };
        assert_eq!(a, fingerprint("component a; fn f() {}", bridged));
    }

    #[test]
    fn second_lookup_hits() {
        let cache = AnalysisCache::new();
        let opts = ExtractOptions::default();
        let first = cache.get_or_analyze(models::MKE2FS, opts).unwrap();
        let second = cache.get_or_analyze(models::MKE2FS, opts).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = AnalysisCache::new();
        let opts = ExtractOptions::default();
        assert!(cache.get_or_analyze("not a model", opts).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn spill_round_trips() {
        let cache = AnalysisCache::new();
        let opts = ExtractOptions::default();
        let original = cache.get_or_analyze(models::E2FSCK, opts).unwrap();
        let path = std::env::temp_dir().join("confdep-cache-spill-test.json");
        cache.spill(&path).unwrap();

        let restored = AnalysisCache::new();
        assert_eq!(restored.load(&path).unwrap(), 1);
        let hit = restored.get_or_analyze(models::E2FSCK, opts).unwrap();
        assert_eq!(*hit, *original);
        assert_eq!(restored.stats(), CacheStats { hits: 1, misses: 0 });
        std::fs::remove_file(&path).ok();
    }
}
