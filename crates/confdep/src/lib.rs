//! confdep — multi-level configuration-dependency extraction for file
//! systems.
//!
//! This is the core library of the reproduction of *Understanding
//! Configuration Dependencies of File Systems* (HotStorage '22). It
//! combines:
//!
//! * the **taxonomy** of multi-level configuration dependencies the
//!   paper derives in §3 (Self Dependency, Cross-Parameter Dependency,
//!   Cross-Component Dependency, with their sub-categories) —
//!   [`model::Dependency`];
//! * the **source models** of the six Ext4-ecosystem components
//!   (`mke2fs`, `mount`, `ext4`, `e4defrag`, `resize2fs`, `e2fsck`),
//!   written in the CIR language and transcribing the real components'
//!   configuration handling — [`models`];
//! * the **extractor** (§4.1): taint analysis over each component plus
//!   the *shared-metadata bridge* that connects parameters across
//!   components — [`extract`];
//! * the **ground truth** used to score false positives, and the
//!   **evaluation** that regenerates Table 5 — [`ground_truth`],
//!   [`eval`];
//! * JSON **reports** ("the extracted dependencies are stored in JSON
//!   files") — [`report`].
//!
//! # Examples
//!
//! ```
//! use confdep::{extract_component, models};
//!
//! let deps = extract_component(models::MKE2FS)?;
//! assert!(deps.iter().any(|d| d.is_self_dependency()));
//! # Ok::<(), confdep::ConfdepError>(())
//! ```

pub mod cache;
pub mod constraint;
pub mod eval;
pub mod extract;
pub mod ground_truth;
pub mod model;
pub mod models;
pub mod report;
pub mod scenario;
pub mod solve;

pub use cache::{AnalysisCache, CacheStats};
pub use constraint::{Constraint, ConstraintSet, DocVerdict, Verdict};
pub use eval::{CategoryCounts, Evaluation, ScenarioOutcome};
pub use extract::{
    analyze_component, extract_component, extract_scenario, extract_scenario_full,
    extract_scenario_parallel, extract_scenario_threaded, extract_scenario_with_cache,
    AnalyzedComponent, ExtractOptions, ScenarioExtraction,
};
pub use ground_truth::{is_false_positive, is_true_dependency, FALSE_POSITIVE_SIGNATURES};
pub use model::{dedup, DepKind, Dependency, Endpoint, ParamRef};
pub use report::DependencyReport;
pub use scenario::{paper_scenarios, Scenario};
pub use solve::{Polarity, SolvedConfig, Solver, SolverScope};

use std::error::Error;
use std::fmt;

/// Errors from the extraction pipeline.
#[derive(Debug)]
pub enum ConfdepError {
    /// A component model failed to compile.
    Cir(cir::CirError),
    /// Serialization failure.
    Json(serde_json::Error),
    /// I/O failure writing a report.
    Io(std::io::Error),
}

impl fmt::Display for ConfdepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfdepError::Cir(e) => write!(f, "model compilation failed: {e}"),
            ConfdepError::Json(e) => write!(f, "json error: {e}"),
            ConfdepError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for ConfdepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfdepError::Cir(e) => Some(e),
            ConfdepError::Json(e) => Some(e),
            ConfdepError::Io(e) => Some(e),
        }
    }
}

impl From<cir::CirError> for ConfdepError {
    fn from(e: cir::CirError) -> Self {
        ConfdepError::Cir(e)
    }
}

impl From<serde_json::Error> for ConfdepError {
    fn from(e: serde_json::Error) -> Self {
        ConfdepError::Json(e)
    }
}

impl From<std::io::Error> for ConfdepError {
    fn from(e: std::io::Error) -> Self {
        ConfdepError::Io(e)
    }
}
