//! JSON reports — "the extracted dependencies are stored in JSON files
//! which describe both the parameters and the associated constraints"
//! (§4.1).

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::model::Dependency;
use crate::ConfdepError;

/// A serialisable dependency report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyReport {
    /// What was analyzed (component or scenario label).
    pub target: String,
    /// Tool identification.
    pub generated_by: String,
    /// Whether the inter-procedural extension was on.
    pub interprocedural: bool,
    /// The dependencies.
    pub dependencies: Vec<Dependency>,
}

impl DependencyReport {
    /// Builds a report.
    pub fn new(target: &str, interprocedural: bool, dependencies: Vec<Dependency>) -> Self {
        DependencyReport {
            target: target.to_string(),
            generated_by: "confdep 0.1".to_string(),
            interprocedural,
            dependencies,
        }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Json`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, ConfdepError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Json`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, ConfdepError> {
        Ok(serde_json::from_str(s)?)
    }

    /// Writes the report to a file.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Io`] / [`ConfdepError::Json`].
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ConfdepError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads a report from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError::Io`] / [`ConfdepError::Json`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, ConfdepError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_component, models};

    #[test]
    fn json_round_trip() {
        let deps = extract_component(models::MKE2FS).unwrap();
        let report = DependencyReport::new("mke2fs", false, deps);
        let json = report.to_json().unwrap();
        assert!(json.contains("SdValueRange"));
        assert!(json.contains("blocksize"));
        let back = DependencyReport::from_json(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn file_round_trip() {
        let deps = extract_component(models::MKE2FS).unwrap();
        let report = DependencyReport::new("mke2fs", false, deps);
        let mut path = std::env::temp_dir();
        path.push(format!("confdep-report-{}.json", std::process::id()));
        report.save(&path).unwrap();
        let back = DependencyReport::load(&path).unwrap();
        assert_eq!(report, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(DependencyReport::from_json("{not json").is_err());
    }
}
