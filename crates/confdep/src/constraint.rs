//! The constraint compiler: every extracted [`Dependency`] lowered into
//! an executable [`Constraint`] predicate over [`TypedConfig`]s.
//!
//! Before this layer existed, each consumer re-interpreted raw
//! dependencies its own way — ConBugCk substring-matched signatures,
//! ConDocCk pattern-matched manual constraints, ConHandleCk hard-coded
//! label strings. The compiler gives all of them one vocabulary:
//!
//! * [`Constraint::evaluate`] — does a set of typed configurations
//!   satisfy, violate, or simply not engage the dependency?
//! * [`Constraint::doc_verdict`] — does any manual page document it?
//! * [`ConstraintSet`] — the compiled collection, with the query surface
//!   the applications need (feature-conflict and integer-range lookups).

use std::collections::{HashMap, HashSet};

use e2fstools::manual::{DocConstraint, ManualPage};
use e2fstools::typed::{TypedConfig, TypedValue};
use serde::{Deserialize, Serialize};

use crate::model::{DepKind, Dependency, Endpoint};

/// Outcome of evaluating one constraint against typed configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The constrained parameters are engaged and the predicate holds.
    Satisfied,
    /// The constrained parameters are engaged and the predicate fails.
    Violated,
    /// The configurations do not engage the dependency (parameter not
    /// set, component absent, or the kind has no static predicate —
    /// behavioural CCDs only manifest at run time).
    NotApplicable,
}

/// Whether a dependency is documented somewhere in the manual corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocVerdict {
    /// Some manual states the constraint.
    Documented,
    /// The subject's manual exists but no page states the constraint.
    Missing,
    /// The subject component has no manual at all.
    NoManual,
}

/// The extractor names parameters after the modelled CIR variables; the
/// `ParamSpec` registry (and the typed configs lowered from real CLI
/// invocations) use the spec names. This maps the former onto the
/// latter where they diverge. Public so index builders (the convalid
/// validation plan) key constraints under the same names the typed
/// configs carry.
pub fn registry_name<'a>(component: &str, param: &'a str) -> &'a str {
    match (component, param) {
        ("resize2fs", "new_size") => "size",
        ("e2fsck", "assume_yes") => "yes",
        ("e2fsck", "assume_no") => "no",
        ("e2fsck", "blocksize_opt") => "blocksize",
        _ => param,
    }
}

/// One dependency compiled into an executable predicate.
///
/// The dependency's stable signature is computed once at construction
/// and interned in the struct, so the hot lookup paths (`find`, the
/// inverted indexes of the validation engine) borrow a `&str` instead
/// of allocating a fresh `String` per call. `dependency` stays public
/// for read access; constraints are built through [`Constraint::new`]
/// so the interned signature can never go stale.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// The dependency this predicate was lowered from.
    pub dependency: Dependency,
    /// Interned [`Dependency::signature`] of `dependency`.
    signature: String,
}

// Identity is the dependency alone: the interned signature is derived
// state, and the wire format (below) carries only the dependency.
impl PartialEq for Constraint {
    fn eq(&self, other: &Self) -> bool {
        self.dependency == other.dependency
    }
}

impl Eq for Constraint {}

// Keep the wire format of the former derive: `{"dependency": ...}`.
// The interned signature is recomputed on deserialisation.
impl Serialize for Constraint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("dependency".to_string(), self.dependency.to_value())])
    }
}

impl<'de> Deserialize<'de> for Constraint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let inner = serde::__private::map_field(value, "dependency")?;
        Ok(Constraint::new(Dependency::from_value(inner)?))
    }
}

impl Constraint {
    /// Compiles a dependency into its executable form, interning its
    /// signature.
    pub fn new(dependency: Dependency) -> Self {
        let signature = dependency.signature();
        Constraint { dependency, signature }
    }

    /// The underlying dependency's stable signature (interned at
    /// construction — no allocation per call).
    pub fn signature(&self) -> &str {
        &self.signature
    }

    /// Looks up the subject parameter's typed value among `cfgs` — the
    /// first config of the subject's component *that carries the
    /// parameter*. (Stopping at the first component match was a latent
    /// single-ecosystem assumption: a multi-ecosystem state can hold
    /// several configs per component name, e.g. a remount.)
    fn subject_value<'a>(&self, cfgs: &[&'a TypedConfig]) -> Option<&'a TypedValue> {
        let subj = &self.dependency.subject;
        let name = registry_name(&subj.component, &subj.param);
        cfgs.iter()
            .filter(|c| c.component == subj.component)
            .find_map(|c| c.get(name))
    }

    /// Looks up the object parameter's typed value among `cfgs` (same
    /// falls-through-duplicates rule as [`Constraint::subject_value`]).
    fn object_value<'a>(&self, cfgs: &[&'a TypedConfig]) -> Option<&'a TypedValue> {
        match &self.dependency.object {
            Some(Endpoint::Param(obj)) => {
                let name = registry_name(&obj.component, &obj.param);
                cfgs.iter()
                    .filter(|c| c.component == obj.component)
                    .find_map(|c| c.get(name))
            }
            _ => None,
        }
    }

    /// Evaluates the predicate against a set of typed configurations
    /// (one per component, e.g. the `mke2fs` invocation plus the `mount`
    /// option string of a generated state).
    pub fn evaluate(&self, cfgs: &[&TypedConfig]) -> Verdict {
        let d = &self.dependency;
        match d.kind {
            DepKind::SdValueRange => match self.subject_value(cfgs) {
                Some(TypedValue::Int(v)) => {
                    if d.detail.min.is_some_and(|min| *v < min)
                        || d.detail.max.is_some_and(|max| *v > max)
                    {
                        return Verdict::Violated;
                    }
                    let must_not_equal =
                        d.detail.relation.as_deref().is_some_and(|r| r.contains("must not equal"));
                    if must_not_equal && d.detail.value_set.contains(v) {
                        return Verdict::Violated;
                    }
                    Verdict::Satisfied
                }
                _ => Verdict::NotApplicable,
            },
            DepKind::SdDataType => match (self.subject_value(cfgs), d.detail.data_type.as_deref())
            {
                (Some(v), Some(ty)) => {
                    let ok = match ty {
                        "integer" | "int" | "size" => matches!(v, TypedValue::Int(_)),
                        "boolean" | "bool" | "flag" => matches!(v, TypedValue::Bool(_)),
                        "string" | "enum" | "path" => matches!(v, TypedValue::Str(_)),
                        _ => true,
                    };
                    if ok {
                        Verdict::Satisfied
                    } else {
                        Verdict::Violated
                    }
                }
                _ => Verdict::NotApplicable,
            },
            DepKind::CpdControl | DepKind::CcdControl => {
                let (Some(s), Some(o)) = (self.subject_value(cfgs), self.object_value(cfgs))
                else {
                    return Verdict::NotApplicable;
                };
                // agreement constraints (the cross-ecosystem pass over
                // shared mount parameters): both sides engaged must
                // carry the same value
                if d.detail.relation.as_deref().is_some_and(|r| r.contains("must agree")) {
                    return if s == o { Verdict::Satisfied } else { Verdict::Violated };
                }
                let s_on = engaged(s);
                let o_on = engaged(o);
                // the extractor cannot orient a guard into "conflicts"
                // vs "requires" (its relation string says both); treat
                // the pair as mutually exclusive — exactly how ConBugCk
                // has always repaired feature sets — unless the relation
                // is unambiguously a requirement
                let requires = d.detail.relation.as_deref() == Some("requires");
                let conflict = if requires { s_on && !o_on } else { s_on && o_on };
                if conflict {
                    Verdict::Violated
                } else {
                    Verdict::Satisfied
                }
            }
            // value couplings and behavioural CCDs have no closed-form
            // static predicate: the coupling manifests when the ecosystem
            // runs (ConHandleCk's injection cases exercise exactly these)
            DepKind::CpdValue | DepKind::CcdValue | DepKind::CcdBehavioral => {
                Verdict::NotApplicable
            }
        }
    }

    /// Checks the manual corpus for a statement of this dependency —
    /// the single documentation matcher ConDocCk reports through.
    pub fn doc_verdict(&self, pages: &[&ManualPage]) -> DocVerdict {
        let d = &self.dependency;
        let Some(page) = pages.iter().find(|p| p.component == d.subject.component) else {
            return DocVerdict::NoManual;
        };
        let p = &d.subject.param;
        let documented = match d.kind {
            DepKind::SdDataType => page
                .all_constraints()
                .iter()
                .any(|c| matches!(c, DocConstraint::DataType { param, .. } if param == p)),
            DepKind::SdValueRange => page.all_constraints().iter().any(|c| match c {
                DocConstraint::ValueRange { param, .. } => param == p,
                DocConstraint::DataType { param, ty } => param == p && ty == "enum",
                _ => false,
            }),
            DepKind::CpdControl | DepKind::CpdValue => match &d.object {
                Some(Endpoint::Param(q)) => pair_documented(page, p, &q.param),
                _ => false,
            },
            DepKind::CcdControl | DepKind::CcdValue | DepKind::CcdBehavioral => {
                let obj_param = match &d.object {
                    Some(Endpoint::Param(q)) => Some(q.param.as_str()),
                    _ => None,
                };
                cross_documented(pages, p, obj_param)
            }
        };
        if documented {
            DocVerdict::Documented
        } else {
            DocVerdict::Missing
        }
    }
}

/// Whether a typed value counts as "engaged" for control dependencies.
fn engaged(v: &TypedValue) -> bool {
    match v {
        TypedValue::Bool(b) => *b,
        TypedValue::Int(_) | TypedValue::Str(_) => true,
    }
}

fn pair_documented(page: &ManualPage, a: &str, b: &str) -> bool {
    page.all_constraints().iter().any(|c| match c {
        DocConstraint::Conflicts { param, other } | DocConstraint::Requires { param, other } => {
            (param == a && other == b) || (param == b && other == a)
        }
        _ => false,
    })
}

fn cross_documented(pages: &[&ManualPage], subj_param: &str, obj_param: Option<&str>) -> bool {
    pages.iter().any(|page| {
        page.all_constraints().iter().any(|c| match c {
            DocConstraint::CrossComponent { param, other, .. } => match obj_param {
                Some(q) => {
                    (param == subj_param && other == q) || (param == q && other == subj_param)
                }
                None => param == subj_param || other == subj_param,
            },
            _ => false,
        })
    })
}

/// A compiled collection of constraints, preserving extraction order.
///
/// `compile` also builds the lookup index the hot queries use —
/// signature → position, the symmetric CPD-control conflict pairs, and
/// the first value-range per parameter — so [`ConstraintSet::find`],
/// [`ConstraintSet::conflicting`] and [`ConstraintSet::int_range`] are
/// hash lookups instead of linear scans over the whole set. The index
/// is derived state: it is skipped by serde and rebuilt-on-equality is
/// irrelevant (`PartialEq` compares the constraints only), and every
/// query falls back to the scan when the index is stale (a
/// deserialised or `Default` set).
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
    index: SetIndex,
}

// The index is derived state: serialize the constraints only, and leave
// a deserialised set unindexed (queries fall back to the linear scans).
impl Serialize for ConstraintSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("constraints".to_string(), self.constraints.to_value())])
    }
}

impl<'de> Deserialize<'de> for ConstraintSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let inner = serde::__private::map_field(value, "constraints")?;
        let constraints = Vec::<Constraint>::from_value(inner)?;
        Ok(ConstraintSet { constraints, index: SetIndex::default() })
    }
}

/// Derived lookup tables over a compiled set (see [`ConstraintSet`]).
#[derive(Debug, Clone, Default)]
struct SetIndex {
    /// Signature → position in `constraints`. Built over `len` entries;
    /// `len != constraints.len()` marks the index stale.
    by_signature: HashMap<String, usize>,
    /// Exact unordered CPD-control parameter pairs, both orientations
    /// (the fast path for `conflicting`).
    conflict_pairs: HashSet<(String, String)>,
    /// The `a~b` pair fragment of every CPD-control signature, for the
    /// substring probe the legacy scan performs (`inode_size~x` also
    /// conflicts with `size~x`). A handful of short strings instead of
    /// re-rendering every signature per query.
    conflict_fragments: Vec<String>,
    /// `(component, param)` → first value-range constraint position.
    ranges: HashMap<(String, String), usize>,
    /// Number of constraints the index was built over.
    len: usize,
}

impl SetIndex {
    fn build(constraints: &[Constraint]) -> Self {
        let mut index = SetIndex { len: constraints.len(), ..SetIndex::default() };
        for (i, c) in constraints.iter().enumerate() {
            index.by_signature.entry(c.signature().to_string()).or_insert(i);
            let d = &c.dependency;
            match d.kind {
                DepKind::CpdControl => {
                    if let Some(Endpoint::Param(o)) = &d.object {
                        index
                            .conflict_pairs
                            .insert((d.subject.param.clone(), o.param.clone()));
                        index
                            .conflict_pairs
                            .insert((o.param.clone(), d.subject.param.clone()));
                        // the signature sorts the two parameters; keep
                        // the same orientation for the substring probe
                        let (x, y) = if d.subject.param <= o.param {
                            (&d.subject.param, &o.param)
                        } else {
                            (&o.param, &d.subject.param)
                        };
                        index.conflict_fragments.push(format!("{x}~{y}"));
                    }
                }
                DepKind::SdValueRange => {
                    index
                        .ranges
                        .entry((d.subject.component.clone(), d.subject.param.clone()))
                        .or_insert(i);
                }
                _ => {}
            }
        }
        index
    }
}

impl PartialEq for ConstraintSet {
    fn eq(&self, other: &Self) -> bool {
        self.constraints == other.constraints
    }
}

impl Eq for ConstraintSet {}

impl ConstraintSet {
    /// Compiles each dependency into its executable form and builds the
    /// lookup index over the result.
    pub fn compile(deps: Vec<Dependency>) -> Self {
        let constraints: Vec<Constraint> = deps.into_iter().map(Constraint::new).collect();
        let index = SetIndex::build(&constraints);
        ConstraintSet { constraints, index }
    }

    /// Whether the derived index matches the constraint list (false for
    /// deserialised or `Default` sets, whose queries fall back to the
    /// linear scans).
    fn indexed(&self) -> bool {
        self.index.len == self.constraints.len()
    }

    /// The compiled constraints, in extraction order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The underlying dependencies, in extraction order.
    pub fn dependencies(&self) -> impl Iterator<Item = &Dependency> {
        self.constraints.iter().map(|c| &c.dependency)
    }

    /// Number of compiled constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints were compiled.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Finds the constraint with the given dependency signature.
    pub fn find(&self, signature: &str) -> Option<&Constraint> {
        if self.indexed() {
            return self.index.by_signature.get(signature).map(|&i| &self.constraints[i]);
        }
        self.constraints.iter().find(|c| c.signature() == signature)
    }

    /// True when a control dependency forbids combining the two
    /// parameters within one component (the query ConBugCk repairs
    /// feature sets with).
    pub fn conflicting(&self, a: &str, b: &str) -> bool {
        if self.indexed() {
            // exact-pair fast path first (both orientations stored),
            // then the substring probe over the few pair fragments —
            // the legacy scan matches `size~x` against `inode_size~x`
            if self.index.conflict_pairs.contains(&(a.to_string(), b.to_string())) {
                return true;
            }
            let (ab, ba) = (format!("{a}~{b}"), format!("{b}~{a}"));
            return self
                .index
                .conflict_fragments
                .iter()
                .any(|frag| frag.contains(&ab) || frag.contains(&ba));
        }
        self.constraints.iter().any(|c| {
            c.dependency.kind == DepKind::CpdControl && {
                let s = c.signature();
                s.contains(&format!("{a}~{b}")) || s.contains(&format!("{b}~{a}"))
            }
        })
    }

    /// The extracted integer range of a parameter, if any — the first
    /// matching value-range constraint, in extraction order (the query
    /// ConBugCk samples values with).
    pub fn int_range(&self, component: &str, param: &str) -> Option<(i64, i64)> {
        let bounds = |c: &Constraint| {
            (
                c.dependency.detail.min.unwrap_or(i64::MIN),
                c.dependency.detail.max.unwrap_or(i64::MAX),
            )
        };
        if self.indexed() {
            return self
                .index
                .ranges
                .get(&(component.to_string(), param.to_string()))
                .map(|&i| bounds(&self.constraints[i]));
        }
        self.constraints
            .iter()
            .find(|c| {
                c.dependency.kind == DepKind::SdValueRange
                    && c.dependency.subject.component == component
                    && c.dependency.subject.param == param
            })
            .map(bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DepDetail, ParamRef};
    use crate::{extract_scenario, models, ExtractOptions};

    fn compiled() -> ConstraintSet {
        ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        )
    }

    #[test]
    fn compiles_all_extracted_dependencies() {
        let set = compiled();
        assert_eq!(set.len(), 64);
        assert!(!set.is_empty());
        assert!(set.find("CpdControl|mke2fs|meta_bg~resize_inode").is_some());
    }

    #[test]
    fn registry_name_aliasing_is_scoped_per_component() {
        // regression (multi-ecosystem rethread): the model-variable →
        // spec-name aliases are keyed by the owning component, and
        // component names are namespaced per ecosystem — so an ext4
        // alias can never rewrite a same-named parameter of an f2fs
        // component (or any other ecosystem's)
        assert_eq!(registry_name("resize2fs", "new_size"), "size");
        assert_eq!(registry_name("resize_f2fs", "new_size"), "new_size");
        assert_eq!(registry_name("e2fsck", "assume_yes"), "yes");
        assert_eq!(registry_name("fsck_f2fs", "assume_yes"), "assume_yes");
        assert_eq!(registry_name("e2fsck", "blocksize_opt"), "blocksize");
        assert_eq!(registry_name("mkfs_f2fs", "blocksize_opt"), "blocksize_opt");
    }

    #[test]
    fn range_lookup_matches_detail() {
        let set = compiled();
        let (min, max) = set.int_range("mke2fs", "reserved_percent").expect("range extracted");
        assert!(min <= 0 && max >= 50, "({min}, {max})");
        assert!(set.int_range("mke2fs", "no_such_param").is_none());
    }

    #[test]
    fn conflict_lookup_is_symmetric() {
        let set = compiled();
        assert!(set.conflicting("meta_bg", "resize_inode"));
        assert!(set.conflicting("resize_inode", "meta_bg"));
        assert!(!set.conflicting("extent", "has_journal"));
    }

    #[test]
    fn range_constraint_evaluates_typed_configs() {
        let set = compiled();
        let c = set
            .find("SdValueRange|mke2fs:reserved_percent")
            .expect("reserved_percent range extracted");
        let mut bad = TypedConfig::new("mke2fs");
        bad.set_int("reserved_percent", 80);
        assert_eq!(c.evaluate(&[&bad]), Verdict::Violated);
        let mut good = TypedConfig::new("mke2fs");
        good.set_int("reserved_percent", 5);
        assert_eq!(c.evaluate(&[&good]), Verdict::Satisfied);
        let unrelated = TypedConfig::new("mount");
        assert_eq!(c.evaluate(&[&unrelated]), Verdict::NotApplicable);
    }

    #[test]
    fn control_constraint_evaluates_typed_configs() {
        let set = compiled();
        let c = set.find("CpdControl|mke2fs|meta_bg~resize_inode").unwrap();
        let mut both = TypedConfig::new("mke2fs");
        both.set_bool("meta_bg", true);
        both.set_bool("resize_inode", true);
        assert_eq!(c.evaluate(&[&both]), Verdict::Violated);
        let mut one = TypedConfig::new("mke2fs");
        one.set_bool("meta_bg", true);
        one.set_bool("resize_inode", false);
        assert_eq!(c.evaluate(&[&one]), Verdict::Satisfied);
    }

    #[test]
    fn registry_name_aliases_are_scoped_per_component() {
        // the alias table keys on (component, param): a second
        // ecosystem reusing a parameter name must not inherit an ext4
        // alias
        assert_eq!(registry_name("resize2fs", "new_size"), "size");
        assert_eq!(registry_name("resize_f2fs", "new_size"), "new_size");
        assert_eq!(registry_name("fsck_f2fs", "assume_yes"), "assume_yes");
    }

    #[test]
    fn lookup_falls_through_configs_missing_the_param() {
        // two configs for the same component: the first does not carry
        // the parameter, the second does — the lookup must not stop at
        // the first component match
        let set = compiled();
        let c = set.find("SdValueRange|mke2fs:reserved_percent").unwrap();
        let without = TypedConfig::new("mke2fs");
        let mut with = TypedConfig::new("mke2fs");
        with.set_int("reserved_percent", 80);
        assert_eq!(c.evaluate(&[&without, &with]), Verdict::Violated);
    }

    #[test]
    fn agreement_constraints_compare_values() {
        // the cross-ecosystem "must agree" form of a control CCD
        let c = Constraint::new(Dependency {
            kind: DepKind::CcdControl,
            subject: ParamRef::new("mount", "discard"),
            object: Some(Endpoint::Param(ParamRef::new("f2fs", "discard"))),
            detail: DepDetail {
                relation: Some("shared mount parameters must agree".to_string()),
                bridge_field: Some("shared:discard".to_string()),
                ..DepDetail::default()
            },
            evidence: vec![],
        });
        let mut ext4 = TypedConfig::new("mount");
        ext4.set_bool("discard", true);
        let mut f2fs = TypedConfig::new("f2fs");
        f2fs.set_bool("discard", true);
        assert_eq!(c.evaluate(&[&ext4, &f2fs]), Verdict::Satisfied);
        f2fs.set_bool("discard", false);
        assert_eq!(c.evaluate(&[&ext4, &f2fs]), Verdict::Violated);
        let alone = TypedConfig::new("mount");
        assert_eq!(c.evaluate(&[&alone, &f2fs]), Verdict::NotApplicable);
    }

    #[test]
    fn behavioural_constraints_are_runtime_only() {
        let c = Constraint::new(Dependency {
            kind: DepKind::CcdBehavioral,
            subject: ParamRef::new("mke2fs", "sparse_super2"),
            object: Some(Endpoint::Component("resize2fs".to_string())),
            detail: DepDetail::default(),
            evidence: vec![],
        });
        let cfg = TypedConfig::new("mke2fs");
        assert_eq!(c.evaluate(&[&cfg]), Verdict::NotApplicable);
    }
}
