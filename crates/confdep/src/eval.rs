//! The Table 5 evaluation: run the extractor per scenario, score against
//! the ground truth, and aggregate unique totals.

use serde::{Deserialize, Serialize};

use crate::extract::ExtractOptions;
use crate::ground_truth::is_false_positive;
use crate::model::{dedup, Dependency};
use crate::scenario::{paper_scenarios, Scenario};
use crate::ConfdepError;

/// Extraction counts for one category (SD, CPD, or CCD).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounts {
    /// Dependencies extracted.
    pub extracted: usize,
    /// Of those, labelled false positives.
    pub false_positives: usize,
}

impl CategoryCounts {
    /// False-positive rate (0 when nothing was extracted).
    pub fn fp_rate(&self) -> f64 {
        if self.extracted == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.extracted as f64
        }
    }

    fn from_deps<'a>(deps: impl Iterator<Item = &'a Dependency>) -> Self {
        let mut c = CategoryCounts::default();
        for d in deps {
            c.extracted += 1;
            if is_false_positive(d) {
                c.false_positives += 1;
            }
        }
        c
    }
}

/// The extraction outcome for one scenario row of Table 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario id (or `"unique"` for the totals row).
    pub id: String,
    /// Row label.
    pub label: String,
    /// Self-dependency counts.
    pub sd: CategoryCounts,
    /// Cross-parameter counts.
    pub cpd: CategoryCounts,
    /// Cross-component counts.
    pub ccd: CategoryCounts,
    /// The extracted dependencies.
    pub deps: Vec<Dependency>,
}

impl ScenarioOutcome {
    fn from_deps(id: &str, label: &str, deps: Vec<Dependency>) -> Self {
        ScenarioOutcome {
            id: id.to_string(),
            label: label.to_string(),
            sd: CategoryCounts::from_deps(deps.iter().filter(|d| d.is_self_dependency())),
            cpd: CategoryCounts::from_deps(deps.iter().filter(|d| d.is_cross_parameter())),
            ccd: CategoryCounts::from_deps(deps.iter().filter(|d| d.is_cross_component())),
            deps,
        }
    }

    /// Total dependencies extracted in this row.
    pub fn total(&self) -> usize {
        self.sd.extracted + self.cpd.extracted + self.ccd.extracted
    }

    /// Total false positives in this row.
    pub fn total_fp(&self) -> usize {
        self.sd.false_positives + self.cpd.false_positives + self.ccd.false_positives
    }
}

/// The full Table 5 evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// One row per scenario, in paper order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// The "Total Unique" row.
    pub unique: ScenarioOutcome,
}

impl Evaluation {
    /// Runs the whole evaluation with the given analysis options.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError`] if a model fails to compile.
    pub fn run(options: ExtractOptions) -> Result<Self, ConfdepError> {
        Self::run_scenarios(&paper_scenarios(), options)
    }

    /// Runs the evaluation over custom scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError`] if a model fails to compile.
    pub fn run_scenarios(
        scenarios: &[Scenario],
        options: ExtractOptions,
    ) -> Result<Self, ConfdepError> {
        let mut rows = Vec::new();
        let mut all = Vec::new();
        for sc in scenarios {
            let deps = sc.extract(options)?;
            all.extend(deps.clone());
            rows.push(ScenarioOutcome::from_deps(&sc.id, &sc.label, deps));
        }
        let unique = ScenarioOutcome::from_deps("unique", "Total Unique", dedup(all));
        Ok(Evaluation { scenarios: rows, unique })
    }

    /// Overall false-positive rate (the paper's 7.8%).
    pub fn overall_fp_rate(&self) -> f64 {
        if self.unique.total() == 0 {
            0.0
        } else {
            self.unique.total_fp() as f64 / self.unique.total() as f64
        }
    }

    /// Precision: true dependencies / extracted.
    pub fn precision(&self) -> f64 {
        1.0 - self.overall_fp_rate()
    }

    /// Recall against the labelled universe (extracted trues plus the
    /// known misses of `ground_truth::known_missed_by_prototype`) — the
    /// false-negative metric the paper lists as future evaluation work.
    pub fn recall(&self) -> f64 {
        let trues = self.unique.total() - self.unique.total_fp();
        let missed = crate::ground_truth::known_missed_by_prototype()
            .iter()
            .filter(|(sig, _)| !self.unique.deps.iter().any(|d| &d.signature() == sig))
            .count();
        if trues + missed == 0 {
            0.0
        } else {
            trues as f64 / (trues + missed) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_headline_numbers() {
        let eval = Evaluation::run(ExtractOptions::default()).unwrap();
        // "the preliminary prototype is able to extract 64 multi-level
        //  dependencies ... including 32 SD, 26 CPD, and 6 CCD ... with a
        //  low false positive rate (7.8%, 5/64)"
        assert_eq!(eval.unique.sd.extracted, 32);
        assert_eq!(eval.unique.cpd.extracted, 26);
        assert_eq!(eval.unique.ccd.extracted, 6);
        assert_eq!(eval.unique.total(), 64);
        assert_eq!(eval.unique.total_fp(), 5);
        assert!((eval.overall_fp_rate() - 0.078).abs() < 0.001);
    }

    #[test]
    fn table5_per_category_fp() {
        let eval = Evaluation::run(ExtractOptions::default()).unwrap();
        assert_eq!(eval.unique.sd.false_positives, 3); // 9.4%
        assert_eq!(eval.unique.cpd.false_positives, 1); // 3.9%
        assert_eq!(eval.unique.ccd.false_positives, 1); // 16.7%
        assert!((eval.unique.sd.fp_rate() - 0.094).abs() < 0.001);
        assert!((eval.unique.cpd.fp_rate() - 0.038).abs() < 0.01);
        assert!((eval.unique.ccd.fp_rate() - 0.167).abs() < 0.001);
    }

    #[test]
    fn ccds_only_in_the_resize2fs_scenario() {
        let eval = Evaluation::run(ExtractOptions::default()).unwrap();
        assert_eq!(eval.scenarios[0].ccd.extracted, 0);
        assert_eq!(eval.scenarios[1].ccd.extracted, 0);
        assert_eq!(eval.scenarios[2].ccd.extracted, 6);
        assert_eq!(eval.scenarios[3].ccd.extracted, 0);
    }

    #[test]
    fn scenario_rows_are_monotone_with_components() {
        let eval = Evaluation::run(ExtractOptions::default()).unwrap();
        // S3 adds resize2fs: strictly more dependencies than S1
        assert!(eval.scenarios[2].total() > eval.scenarios[0].total());
        // S2 (e4defrag) adds nothing the prototype can see
        assert_eq!(eval.scenarios[1].total(), eval.scenarios[0].total());
    }

    #[test]
    fn precision_and_recall_metrics() {
        let intra = Evaluation::run(ExtractOptions::default()).unwrap();
        assert!((intra.precision() - 0.922).abs() < 0.001); // 59/64
        // 59 of 67 labelled trues (59 found + 8 known misses)
        assert!((intra.recall() - 59.0 / 67.0).abs() < 0.001);
        // the inter-procedural extension raises recall
        let inter = Evaluation::run(ExtractOptions {
            interprocedural: true,
            ..ExtractOptions::default()
        })
        .unwrap();
        assert!(inter.recall() > intra.recall());
    }

    #[test]
    fn interprocedural_extension_grows_the_table() {
        let intra = Evaluation::run(ExtractOptions::default()).unwrap();
        let inter = Evaluation::run(ExtractOptions {
            interprocedural: true,
            ..ExtractOptions::default()
        })
        .unwrap();
        assert!(inter.unique.ccd.extracted > intra.unique.ccd.extracted);
        assert!(inter.unique.total() > intra.unique.total());
    }

    #[test]
    fn serde_round_trip() {
        let eval = Evaluation::run(ExtractOptions::default()).unwrap();
        let json = serde_json::to_string(&eval).unwrap();
        let back: Evaluation = serde_json::from_str(&json).unwrap();
        assert_eq!(back.unique.total(), 64);
    }
}
