//! Ground truth for scoring the extractor (the paper's false-positive
//! accounting in Table 5, and the 59 true dependencies that feed the
//! §4.3 applications).
//!
//! The labels were assigned by inspecting each extracted dependency
//! against the modelled component semantics (as the paper's authors did
//! against the real code): a dependency is a **false positive** when the
//! flagged relation does not actually constrain the configuration —
//! e.g., a file-descriptor status check misread as a value range of the
//! path parameter, or a benign progress-output flow misread as
//! behavioural.

use crate::model::Dependency;

/// Signatures of the extractor's known false positives.
///
/// * `resize2fs:device`, `resize2fs:undo_file` — status-code checks on
///   `open_device`/`open_undo` return values misattributed as value
///   ranges of the path parameters;
/// * `resize2fs:new_size` — a reused scratch variable carries the size
///   taint into an unrelated suffix check (flow-insensitivity);
/// * `mke2fs dir_index~uninit_bg` — the same scratch-variable merge
///   pairing `dir_index` with an unrelated feature conflict;
/// * `mke2fs:label → resize2fs` — the volume label only feeds progress
///   output; no resize behaviour depends on it.
pub const FALSE_POSITIVE_SIGNATURES: [&str; 5] = [
    "SdValueRange|resize2fs:device",
    "SdValueRange|resize2fs:new_size",
    "SdValueRange|resize2fs:undo_file",
    "CpdControl|mke2fs|dir_index~uninit_bg",
    "CcdBehavioral|mke2fs:label|resize2fs:<behavior>",
];

/// True if the dependency is in the labelled false-positive set.
pub fn is_false_positive(d: &Dependency) -> bool {
    let sig = d.signature();
    FALSE_POSITIVE_SIGNATURES.contains(&sig.as_str())
}

/// True if the dependency is a labelled true dependency.
pub fn is_true_dependency(d: &Dependency) -> bool {
    !is_false_positive(d)
}

/// Real dependencies that the intra-procedural prototype *misses*
/// (false negatives), because their flows cross function boundaries —
/// the paper's stated limitation and its motivation for the
/// inter-procedural extension. Format: (signature, why the prototype
/// misses it).
pub fn known_missed_by_prototype() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "CcdControl|mke2fs:inline_data|mount:dax",
            "ext4_fill_super loads the feature word in a helper before checking dax",
        ),
        (
            "CcdControl|mke2fs:blocksize|mount:dax",
            "the block-size/page-size check uses a value staged by a helper",
        ),
        (
            "CcdControl|mke2fs:has_journal|mount:data",
            "data=journal validation reads a feature loaded in a helper",
        ),
        (
            "CcdBehavioral|mke2fs:extent|e4defrag:<behavior>",
            "the EOPNOTSUPP path tests a feature bit loaded by load_fs_info()",
        ),
        (
            "CcdBehavioral|mke2fs:sparse_super|e2fsck:<behavior>",
            "backup-superblock search depends on a feature loaded by load_state()",
        ),
        (
            "CpdControl|e2fsck|assume_yes~preen",
            "the -p/-y conflict tests flags staged by parse_args()",
        ),
        (
            "CpdControl|e2fsck|assume_no~assume_yes",
            "the -n/-y conflict tests flags staged by parse_args()",
        ),
        (
            "CpdControl|e2fsck|blocksize_opt~superblock",
            "the -B-requires--b check tests flags staged by parse_args()",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_scenario, models, ExtractOptions};

    #[test]
    fn exactly_five_false_positives_in_full_extraction() {
        let deps = extract_scenario(&models::all(), ExtractOptions::default()).unwrap();
        let fps: Vec<String> =
            deps.iter().filter(|d| is_false_positive(d)).map(|d| d.signature()).collect();
        assert_eq!(fps.len(), 5, "found FPs: {fps:#?}");
    }

    #[test]
    fn fifty_nine_true_dependencies() {
        // §4.3: "based on the 59 extracted true dependencies ..."
        let deps = extract_scenario(&models::all(), ExtractOptions::default()).unwrap();
        let trues = deps.iter().filter(|d| is_true_dependency(d)).count();
        assert_eq!(trues, 59);
    }

    #[test]
    fn missed_dependencies_are_found_interprocedurally() {
        let opts = ExtractOptions { interprocedural: true, ..ExtractOptions::default() };
        let deps = extract_scenario(&models::all(), opts).unwrap();
        let sigs: Vec<String> = deps.iter().map(|d| d.signature()).collect();
        let mut found = 0;
        for (missed, _why) in known_missed_by_prototype() {
            if sigs.iter().any(|s| s == missed) {
                found += 1;
            }
        }
        assert!(
            found >= 5,
            "the inter-procedural extension should recover most misses; found {found} of {}; sigs: {sigs:#?}",
            known_missed_by_prototype().len()
        );
    }

    #[test]
    fn intra_misses_all_of_them() {
        let deps = extract_scenario(&models::all(), ExtractOptions::default()).unwrap();
        let sigs: Vec<String> = deps.iter().map(|d| d.signature()).collect();
        for (missed, why) in known_missed_by_prototype() {
            assert!(
                !sigs.iter().any(|s| s == missed),
                "prototype unexpectedly found {missed} ({why})"
            );
        }
    }
}
