//! The four usage scenarios of Table 3 / Table 5.

use serde::{Deserialize, Serialize};

use crate::extract::{extract_scenario, ExtractOptions};
use crate::model::Dependency;
use crate::{models, ConfdepError};

/// One usage scenario: a pipeline of components (key configuration
/// utilities in the paper appear in bold in Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Short id (`S1`..`S4`).
    pub id: String,
    /// The paper's row label.
    pub label: String,
    /// Components whose models are analyzed for this scenario.
    pub components: Vec<String>,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(id: &str, label: &str, components: &[&str]) -> Self {
        Scenario {
            id: id.to_string(),
            label: label.to_string(),
            components: components.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Runs extraction over this scenario's components.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError`] if a model is missing or fails to
    /// compile.
    pub fn extract(&self, options: ExtractOptions) -> Result<Vec<Dependency>, ConfdepError> {
        let mut sources = Vec::new();
        for c in &self.components {
            let src = models::by_name(c).ok_or_else(|| {
                ConfdepError::Cir(cir::CirError::Lower(format!("no model for component '{c}'")))
            })?;
            sources.push((c.as_str(), src));
        }
        extract_scenario(&sources, options)
    }
}

/// The four scenarios of Table 3 and Table 5, in row order.
pub fn paper_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "S1",
            "mke2fs - mount - Ext4",
            &["mke2fs", "mount", "ext4"],
        ),
        Scenario::new(
            "S2",
            "mke2fs - mount - Ext4 - e4defrag",
            &["mke2fs", "mount", "ext4", "e4defrag"],
        ),
        Scenario::new(
            "S3",
            "mke2fs - mount - Ext4 - umount - resize2fs",
            &["mke2fs", "mount", "ext4", "resize2fs"],
        ),
        Scenario::new(
            "S4",
            "mke2fs - mount - Ext4 - umount - e2fsck",
            &["mke2fs", "mount", "ext4", "e2fsck"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_scenarios_in_paper_order() {
        let s = paper_scenarios();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].id, "S1");
        assert!(s[2].label.contains("resize2fs"));
        assert!(s[3].label.contains("e2fsck"));
        for sc in &s {
            assert!(sc.components.contains(&"mke2fs".to_string()));
        }
    }

    #[test]
    fn unknown_component_errors() {
        let s = Scenario::new("X", "bogus", &["nope"]);
        assert!(s.extract(ExtractOptions::default()).is_err());
    }

    #[test]
    fn scenarios_extract_without_error() {
        for sc in paper_scenarios() {
            let deps = sc.extract(ExtractOptions::default()).unwrap();
            assert!(!deps.is_empty(), "{} extracted nothing", sc.id);
        }
    }
}
