//! The multi-level configuration-dependency taxonomy (Table 4 of the
//! paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The seven sub-categories of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// SD: the parameter must have a specific data type.
    SdDataType,
    /// SD: the parameter must lie in a specific value range / set.
    SdValueRange,
    /// CPD: a parameter can be enabled iff another parameter of the same
    /// component is enabled/disabled.
    CpdControl,
    /// CPD: a parameter's value depends on another parameter's value.
    CpdValue,
    /// CCD: a parameter can be enabled iff a parameter of *another*
    /// component is enabled/disabled.
    CcdControl,
    /// CCD: a parameter's value depends on another component's
    /// parameter.
    CcdValue,
    /// CCD: a component's behaviour depends on another component's
    /// parameter.
    CcdBehavioral,
}

impl DepKind {
    /// The major category: `"SD"`, `"CPD"`, or `"CCD"`.
    pub fn category(self) -> &'static str {
        match self {
            DepKind::SdDataType | DepKind::SdValueRange => "SD",
            DepKind::CpdControl | DepKind::CpdValue => "CPD",
            DepKind::CcdControl | DepKind::CcdValue | DepKind::CcdBehavioral => "CCD",
        }
    }

    /// Human-readable sub-category name as in Table 4.
    pub fn sub_category(self) -> &'static str {
        match self {
            DepKind::SdDataType => "Data Type",
            DepKind::SdValueRange => "Value Range",
            DepKind::CpdControl => "Control",
            DepKind::CpdValue => "Value",
            DepKind::CcdControl => "Control",
            DepKind::CcdValue => "Value",
            DepKind::CcdBehavioral => "Behavioral",
        }
    }

    /// All seven kinds in Table 4 order.
    pub fn all() -> [DepKind; 7] {
        [
            DepKind::SdDataType,
            DepKind::SdValueRange,
            DepKind::CpdControl,
            DepKind::CpdValue,
            DepKind::CcdControl,
            DepKind::CcdValue,
            DepKind::CcdBehavioral,
        ]
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.category(), self.sub_category())
    }
}

/// A parameter of a specific component.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamRef {
    /// Component (`mke2fs`, `mount`, ...).
    pub component: String,
    /// Parameter name.
    pub param: String,
}

impl ParamRef {
    /// Convenience constructor.
    pub fn new(component: &str, param: &str) -> Self {
        ParamRef { component: component.to_string(), param: param.to_string() }
    }
}

impl fmt::Display for ParamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.component, self.param)
    }
}

/// The other end of a dependency.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// Another parameter.
    Param(ParamRef),
    /// A whole component's behaviour (CCD-behavioral).
    Component(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Param(p) => write!(f, "{p}"),
            Endpoint::Component(c) => write!(f, "{c}:<behavior>"),
        }
    }
}

/// Extra detail attached to a dependency.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepDetail {
    /// For `SdDataType`: the required type.
    pub data_type: Option<String>,
    /// For `SdValueRange`: inclusive lower bound, if known.
    pub min: Option<i64>,
    /// For `SdValueRange`: inclusive upper bound, if known.
    pub max: Option<i64>,
    /// Values the parameter must (or must not) equal.
    pub value_set: Vec<i64>,
    /// Free-form relation text ("cannot be combined", "requires", ...).
    pub relation: Option<String>,
    /// The shared metadata field that bridges a CCD.
    pub bridge_field: Option<String>,
}

/// One extracted (or ground-truth) dependency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependency {
    /// Sub-category.
    pub kind: DepKind,
    /// The constrained parameter.
    pub subject: ParamRef,
    /// The other end (absent for SD).
    pub object: Option<Endpoint>,
    /// Detail.
    pub detail: DepDetail,
    /// Short evidence strings (function:line of the facts involved).
    pub evidence: Vec<String>,
}

impl Dependency {
    /// A stable signature used for dedup and ground-truth matching.
    /// Symmetric for the pairwise CPD kinds (the pair `{a, b}` is one
    /// dependency regardless of orientation).
    pub fn signature(&self) -> String {
        match (&self.kind, &self.object) {
            (DepKind::CpdControl | DepKind::CpdValue, Some(Endpoint::Param(o))) => {
                let (a, b) = if self.subject.param <= o.param {
                    (&self.subject.param, &o.param)
                } else {
                    (&o.param, &self.subject.param)
                };
                format!("{:?}|{}|{}~{}", self.kind, self.subject.component, a, b)
            }
            (_, Some(o)) => format!("{:?}|{}|{}", self.kind, self.subject, o),
            (_, None) => format!("{:?}|{}", self.kind, self.subject),
        }
    }

    /// True for SD kinds.
    pub fn is_self_dependency(&self) -> bool {
        self.kind.category() == "SD"
    }

    /// True for CPD kinds.
    pub fn is_cross_parameter(&self) -> bool {
        self.kind.category() == "CPD"
    }

    /// True for CCD kinds.
    pub fn is_cross_component(&self) -> bool {
        self.kind.category() == "CCD"
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.subject)?;
        if let Some(o) = &self.object {
            write!(f, " ~ {o}")?;
        }
        if let Some(rel) = &self.detail.relation {
            write!(f, " ({rel})")?;
        }
        Ok(())
    }
}

/// Removes duplicates by [`Dependency::signature`], keeping the first
/// occurrence (whose evidence is extended with later ones').
pub fn dedup(deps: Vec<Dependency>) -> Vec<Dependency> {
    let mut out: Vec<Dependency> = Vec::new();
    for d in deps {
        if let Some(existing) = out.iter_mut().find(|e| e.signature() == d.signature()) {
            for ev in d.evidence {
                if !existing.evidence.contains(&ev) {
                    existing.evidence.push(ev);
                }
            }
        } else {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(kind: DepKind, subj: (&str, &str), obj: Option<(&str, &str)>) -> Dependency {
        Dependency {
            kind,
            subject: ParamRef::new(subj.0, subj.1),
            object: obj.map(|(c, p)| Endpoint::Param(ParamRef::new(c, p))),
            detail: DepDetail::default(),
            evidence: vec![],
        }
    }

    #[test]
    fn categories() {
        assert_eq!(DepKind::SdDataType.category(), "SD");
        assert_eq!(DepKind::CpdValue.category(), "CPD");
        assert_eq!(DepKind::CcdBehavioral.category(), "CCD");
        assert_eq!(DepKind::all().len(), 7);
    }

    #[test]
    fn cpd_signature_is_symmetric() {
        let a = dep(DepKind::CpdControl, ("mke2fs", "meta_bg"), Some(("mke2fs", "resize_inode")));
        let b = dep(DepKind::CpdControl, ("mke2fs", "resize_inode"), Some(("mke2fs", "meta_bg")));
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn ccd_signature_is_directional() {
        let a = dep(DepKind::CcdControl, ("mke2fs", "x"), Some(("resize2fs", "y")));
        let b = dep(DepKind::CcdControl, ("resize2fs", "y"), Some(("mke2fs", "x")));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn dedup_merges_evidence() {
        let mut a = dep(DepKind::SdValueRange, ("mke2fs", "blocksize"), None);
        a.evidence.push("check:3".to_string());
        let mut b = a.clone();
        b.evidence = vec!["check:9".to_string()];
        let out = dedup(vec![a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].evidence, vec!["check:3", "check:9"]);
    }

    #[test]
    fn category_predicates() {
        assert!(dep(DepKind::SdDataType, ("c", "p"), None).is_self_dependency());
        assert!(dep(DepKind::CpdControl, ("c", "p"), Some(("c", "q"))).is_cross_parameter());
        assert!(dep(DepKind::CcdValue, ("c", "p"), Some(("d", "q"))).is_cross_component());
    }

    #[test]
    fn display_renders() {
        let mut d = dep(DepKind::CpdControl, ("mke2fs", "meta_bg"), Some(("mke2fs", "resize_inode")));
        d.detail.relation = Some("cannot be combined".to_string());
        let s = d.to_string();
        assert!(s.contains("meta_bg"));
        assert!(s.contains("cannot be combined"));
    }

    #[test]
    fn serde_round_trip() {
        let d = dep(DepKind::CcdBehavioral, ("mke2fs", "sparse_super2"), None);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dependency = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
