//! The dependency extractor (§4.1): taint facts → multi-level
//! configuration dependencies, with the shared-metadata bridge
//! connecting components.
//!
//! Scenario extraction is **incremental and parallel by default**:
//! components are analyzed on a [`conpool::parallel_map`] worker pool,
//! each analysis going through the content-addressed
//! [`crate::cache::AnalysisCache`] — re-extracting a scenario whose
//! sources did not change re-analyzes nothing.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cir::{BinOp, ParamSource, ParamTy, Program};
use taint::{AnalysisOptions, ComparisonFact, Taint, TaintResult};

use crate::cache::{self, AnalysisCache};
use crate::model::{dedup, DepDetail, DepKind, Dependency, Endpoint, ParamRef};
use crate::ConfdepError;

/// Extraction configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractOptions {
    /// Enable the inter-procedural taint extension (off in the paper's
    /// prototype).
    pub interprocedural: bool,
    /// Disable the shared-metadata bridge (ablation: without it the
    /// analyzer extracts no cross-component dependencies at all).
    pub disable_bridge: bool,
}

/// A compiled component with its analysis result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyzedComponent {
    /// The compiled model.
    pub program: Program,
    /// The taint analysis output.
    pub taint: TaintResult,
}

/// A scenario's analyzed components plus the extracted dependencies —
/// what callers that also need the per-component facts (benchmarks,
/// the CLI's truncation warning) consume.
#[derive(Debug, Clone)]
pub struct ScenarioExtraction {
    /// The analyzed components, in input order (shared with the cache).
    pub components: Vec<Arc<AnalyzedComponent>>,
    /// The deduplicated dependencies.
    pub deps: Vec<Dependency>,
}

/// Compiles and analyzes one component model (uncached; the cached path
/// is [`crate::cache::AnalysisCache::get_or_analyze`]).
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when the model does not compile.
pub fn analyze_component(src: &str, options: ExtractOptions) -> Result<AnalyzedComponent, ConfdepError> {
    let program = cir::compile(src)?;
    let taint = taint::analyze(
        &program,
        AnalysisOptions { interprocedural: options.interprocedural, ..AnalysisOptions::default() },
    );
    Ok(AnalyzedComponent { program, taint })
}

/// Extracts the intra-component dependencies (SD + CPD) of one model.
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when the model does not compile.
pub fn extract_component(src: &str) -> Result<Vec<Dependency>, ConfdepError> {
    let analyzed = analyze_component(src, ExtractOptions::default())?;
    Ok(dedup(component_deps(&analyzed)))
}

/// Extracts everything for a set of components: per-component SD/CPD
/// plus bridged CCDs across the set. Analyses run on the worker pool
/// (one thread per core) through the process-wide analysis cache.
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when any model does not compile.
pub fn extract_scenario(
    sources: &[(&str, &str)],
    options: ExtractOptions,
) -> Result<Vec<Dependency>, ConfdepError> {
    extract_scenario_threaded(sources, options, 0)
}

/// [`extract_scenario`] with an explicit worker count (`0` = one per
/// core, `1` = sequential). Results are independent of `threads`.
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when any model does not compile.
pub fn extract_scenario_threaded(
    sources: &[(&str, &str)],
    options: ExtractOptions,
    threads: usize,
) -> Result<Vec<Dependency>, ConfdepError> {
    Ok(extract_scenario_full(sources, options, threads)?.deps)
}

/// Backwards-compatible alias of the parallel path (parallelism is the
/// default now).
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when any model does not compile.
pub fn extract_scenario_parallel(
    sources: &[(&str, &str)],
    options: ExtractOptions,
) -> Result<Vec<Dependency>, ConfdepError> {
    extract_scenario_threaded(sources, options, 0)
}

/// The full pipeline: parallel cached analysis, then dependency
/// extraction; returns the analyzed components alongside the deps.
/// Uses (and spills, when `CONFDEP_CACHE_SPILL` is set) the global
/// analysis cache.
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when any model does not compile.
pub fn extract_scenario_full(
    sources: &[(&str, &str)],
    options: ExtractOptions,
    threads: usize,
) -> Result<ScenarioExtraction, ConfdepError> {
    let extraction =
        extract_scenario_with_cache(sources, options, threads, cache::global())?;
    cache::maybe_spill_global();
    Ok(extraction)
}

/// [`extract_scenario_full`] against a caller-owned cache (tests use a
/// fresh cache for deterministic hit/miss counts).
///
/// # Errors
///
/// Returns [`ConfdepError::Cir`] when any model does not compile.
pub fn extract_scenario_with_cache(
    sources: &[(&str, &str)],
    options: ExtractOptions,
    threads: usize,
    cache: &AnalysisCache,
) -> Result<ScenarioExtraction, ConfdepError> {
    let results: Vec<Result<Arc<AnalyzedComponent>, ConfdepError>> = conpool::parallel_map(
        sources.to_vec(),
        threads,
        |_, (_, src)| cache.get_or_analyze(src, options),
    );
    let mut components = Vec::with_capacity(results.len());
    for r in results {
        components.push(r?);
    }
    let mut deps = Vec::new();
    for a in &components {
        deps.extend(component_deps(a));
    }
    if !options.disable_bridge {
        deps.extend(bridge_deps(&components));
    }
    Ok(ScenarioExtraction { components, deps: dedup(deps) })
}

// ---------------------------------------------------------------------
// intra-component extraction
// ---------------------------------------------------------------------

fn param_set(taints: &BTreeSet<Taint>) -> BTreeSet<String> {
    taints.iter().filter_map(|t| t.as_param().map(str::to_string)).collect()
}

fn component_deps(a: &AnalyzedComponent) -> Vec<Dependency> {
    let mut deps = Vec::new();
    let component = &a.program.component;

    // --- SD: value ranges -------------------------------------------
    // an atom is a pure self-check when the whole branch condition
    // involves exactly one parameter and no metadata
    let mut range_atoms: BTreeMap<String, Vec<&ComparisonFact>> = BTreeMap::new();
    for c in &a.taint.comparisons {
        if !(c.fail_when_true || c.fail_when_false) {
            continue;
        }
        let params = param_set(&c.taints);
        if params.len() != 1 || !c.rhs_taints.is_empty() || c.rhs_const.is_none() {
            continue;
        }
        let p = params.into_iter().next().expect("len checked");
        if c.branch_has_meta || c.branch_params.len() != 1 {
            continue;
        }
        range_atoms.entry(p).or_default().push(c);
    }
    for (param, atoms) in &range_atoms {
        let mut detail = DepDetail::default();
        for c in atoms {
            let k = c.rhs_const.expect("filtered above");
            // a comparison that fails when true excludes that side of
            // the constant; derive the permitted bound
            match (c.op, c.fail_when_true) {
                (BinOp::Lt, true) | (BinOp::Ge, false) => bump_min(&mut detail, k),
                (BinOp::Le, true) | (BinOp::Gt, false) => bump_min(&mut detail, k + 1),
                (BinOp::Gt, true) | (BinOp::Le, false) => bump_max(&mut detail, k),
                (BinOp::Ge, true) | (BinOp::Lt, false) => bump_max(&mut detail, k - 1),
                (BinOp::Ne, true) | (BinOp::Eq, false) => detail.value_set.push(k),
                (BinOp::Eq, true) | (BinOp::Ne, false) => {
                    detail.relation = Some(format!("must not equal {k}"));
                }
                _ => {}
            }
        }
        detail.value_set.sort_unstable();
        detail.value_set.dedup();
        let mut evidence: Vec<String> =
            atoms.iter().map(|c| format!("{}:{}", c.function, c.line)).collect();
        evidence.dedup();
        deps.push(Dependency {
            kind: DepKind::SdValueRange,
            subject: ParamRef::new(component, param),
            object: None,
            detail,
            evidence,
        });
    }

    // --- SD: data types ----------------------------------------------
    // a numeric/enum CLI option that the code compares (anywhere) must
    // parse as that type
    for p in &a.program.params {
        if p.source != ParamSource::Option {
            continue;
        }
        if !matches!(p.ty, ParamTy::Int | ParamTy::Size | ParamTy::Enum) {
            continue;
        }
        let used: Vec<String> = a
            .taint
            .comparisons
            .iter()
            .filter(|c| param_set(&c.taints).contains(&p.name) || param_set(&c.rhs_taints).contains(&p.name))
            .map(|c| format!("{}:{}", c.function, c.line))
            .collect();
        if used.is_empty() {
            continue;
        }
        deps.push(Dependency {
            kind: DepKind::SdDataType,
            subject: ParamRef::new(component, &p.name),
            object: None,
            detail: DepDetail { data_type: Some(p.ty.as_str().to_string()), ..DepDetail::default() },
            evidence: used,
        });
    }

    // --- CPD: control (cross-leaf pairs in failing branches) ----------
    for b in &a.taint.branches {
        if !(b.then_fails || b.else_fails) {
            continue;
        }
        let leaf_params: Vec<BTreeSet<String>> =
            b.cond_leaves.iter().map(param_set).collect();
        for i in 0..leaf_params.len() {
            for j in (i + 1)..leaf_params.len() {
                for p in &leaf_params[i] {
                    for q in &leaf_params[j] {
                        if p == q {
                            continue;
                        }
                        deps.push(Dependency {
                            kind: DepKind::CpdControl,
                            subject: ParamRef::new(component, p),
                            object: Some(Endpoint::Param(ParamRef::new(component, q))),
                            detail: DepDetail {
                                relation: Some("cannot be combined / requires".to_string()),
                                ..DepDetail::default()
                            },
                            evidence: vec![format!("{}:{}", b.function, b.line)],
                        });
                    }
                }
            }
        }
    }

    // --- CPD: value (param-vs-param comparisons in failing branches) --
    for c in &a.taint.comparisons {
        if !(c.fail_when_true || c.fail_when_false) {
            continue;
        }
        let lhs = param_set(&c.taints);
        let rhs = param_set(&c.rhs_taints);
        for p in &lhs {
            for q in &rhs {
                if p == q {
                    continue;
                }
                deps.push(Dependency {
                    kind: DepKind::CpdValue,
                    subject: ParamRef::new(component, p),
                    object: Some(Endpoint::Param(ParamRef::new(component, q))),
                    detail: DepDetail {
                        relation: Some(format!("value constraint ({:?})", c.op)),
                        ..DepDetail::default()
                    },
                    evidence: vec![format!("{}:{}", c.function, c.line)],
                });
            }
        }
    }

    deps
}

fn bump_min(d: &mut DepDetail, k: i64) {
    d.min = Some(d.min.map_or(k, |m| m.max(k)));
}

fn bump_max(d: &mut DepDetail, k: i64) {
    d.max = Some(d.max.map_or(k, |m| m.min(k)));
}

// ---------------------------------------------------------------------
// cross-component bridging (the paper's key idea)
// ---------------------------------------------------------------------

fn bridge_deps(analyzed: &[Arc<AnalyzedComponent>]) -> Vec<Dependency> {
    let mut deps = Vec::new();

    // writers: metadata field -> (component, params that taint the write)
    let mut writers: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for a in analyzed {
        for w in &a.taint.meta_writes {
            for p in param_set(&w.taints) {
                writers
                    .entry(w.field.clone())
                    .or_default()
                    .push((a.program.component.clone(), p));
            }
        }
    }

    for a in analyzed {
        let reader = &a.program.component;
        for u in &a.taint.meta_uses {
            for field in &u.meta {
                let Some(ws) = writers.get(field) else { continue };
                for (writer_component, writer_param) in ws {
                    if writer_component == reader {
                        continue;
                    }
                    let subject = ParamRef::new(writer_component, writer_param);
                    if u.in_fail_guard {
                        // value CCD when the guard compares the metadata
                        // against something; control CCD otherwise
                        let is_value = a.taint.comparisons.iter().any(|c| {
                            c.function == u.function
                                && c.line == u.line
                                && (c.rhs_taints.contains(&Taint::Meta(field.clone()))
                                    || c.taints.contains(&Taint::Meta(field.clone())))
                        });
                        let kind = if is_value { DepKind::CcdValue } else { DepKind::CcdControl };
                        if u.co_params.is_empty() {
                            deps.push(Dependency {
                                kind: DepKind::CcdBehavioral,
                                subject: subject.clone(),
                                object: Some(Endpoint::Component(reader.clone())),
                                detail: DepDetail {
                                    bridge_field: Some(field.clone()),
                                    relation: Some("guards an error path".to_string()),
                                    ..DepDetail::default()
                                },
                                evidence: vec![format!("{}:{}", u.function, u.line)],
                            });
                        }
                        for q in &u.co_params {
                            deps.push(Dependency {
                                kind,
                                subject: subject.clone(),
                                object: Some(Endpoint::Param(ParamRef::new(reader, q))),
                                detail: DepDetail {
                                    bridge_field: Some(field.clone()),
                                    relation: Some(
                                        "constrains the other component's parameter".to_string(),
                                    ),
                                    ..DepDetail::default()
                                },
                                evidence: vec![format!("{}:{}", u.function, u.line)],
                            });
                        }
                    } else {
                        // flows into a call: the reader's behaviour
                        // depends on the writer's parameter
                        deps.push(Dependency {
                            kind: DepKind::CcdBehavioral,
                            subject: subject.clone(),
                            object: Some(Endpoint::Component(reader.clone())),
                            detail: DepDetail {
                                bridge_field: Some(field.clone()),
                                relation: u
                                    .callee
                                    .as_ref()
                                    .map(|c| format!("selects behaviour via {c}(...)")),
                                ..DepDetail::default()
                            },
                            evidence: vec![format!("{}:{}", u.function, u.line)],
                        });
                    }
                }
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn count_kind(deps: &[Dependency], cat: &str) -> usize {
        deps.iter().filter(|d| d.kind.category() == cat).count()
    }

    #[test]
    fn mke2fs_extracts_sd_and_cpd() {
        let deps = extract_component(models::MKE2FS).unwrap();
        assert!(count_kind(&deps, "SD") > 10);
        assert!(count_kind(&deps, "CPD") > 10);
        assert_eq!(count_kind(&deps, "CCD"), 0, "single component cannot yield CCDs");
        // the paper's flagship CPD
        assert!(deps.iter().any(|d| {
            d.kind == DepKind::CpdControl
                && d.signature().contains("meta_bg")
                && d.signature().contains("resize_inode")
        }));
        // blocksize range 1024..=65536
        let bs = deps
            .iter()
            .find(|d| d.kind == DepKind::SdValueRange && d.subject.param == "blocksize")
            .expect("blocksize range");
        assert_eq!(bs.detail.min, Some(1024));
        assert_eq!(bs.detail.max, Some(65536));
        // inode_size value set {128, 256}
        let is = deps
            .iter()
            .find(|d| d.kind == DepKind::SdValueRange && d.subject.param == "inode_size")
            .expect("inode_size set");
        assert_eq!(is.detail.value_set, vec![128, 256]);
    }

    #[test]
    fn figure1_ccd_extracted_via_bridge() {
        let deps = extract_scenario(
            &[("mke2fs", models::MKE2FS), ("resize2fs", models::RESIZE2FS)],
            ExtractOptions::default(),
        )
        .unwrap();
        // the Figure 1 pair: mke2fs size ~ resize2fs size via
        // sb.s_blocks_count
        let fig1 = deps.iter().find(|d| {
            d.is_cross_component()
                && d.subject == ParamRef::new("mke2fs", "size")
                && matches!(&d.object, Some(Endpoint::Param(p)) if p.param == "new_size")
        });
        assert!(fig1.is_some(), "Figure 1 CCD must be extracted");
        assert_eq!(
            fig1.unwrap().detail.bridge_field.as_deref(),
            Some("sb.s_blocks_count")
        );
        // sparse_super2 behavioral CCD
        assert!(deps.iter().any(|d| {
            d.kind == DepKind::CcdBehavioral && d.subject.param == "sparse_super2"
        }));
    }

    #[test]
    fn bridge_ablation_kills_ccds() {
        let opts = ExtractOptions { disable_bridge: true, ..ExtractOptions::default() };
        let deps = extract_scenario(
            &[("mke2fs", models::MKE2FS), ("resize2fs", models::RESIZE2FS)],
            opts,
        )
        .unwrap();
        assert_eq!(count_kind(&deps, "CCD"), 0);
        assert!(count_kind(&deps, "SD") > 0);
    }

    #[test]
    fn interprocedural_finds_more() {
        let srcs = models::all();
        let intra = extract_scenario(&srcs, ExtractOptions::default()).unwrap();
        let inter = extract_scenario(
            &srcs,
            ExtractOptions { interprocedural: true, ..ExtractOptions::default() },
        )
        .unwrap();
        assert!(
            count_kind(&inter, "CCD") > count_kind(&intra, "CCD"),
            "inter-procedural analysis must find more CCDs ({} vs {})",
            count_kind(&inter, "CCD"),
            count_kind(&intra, "CCD")
        );
        assert!(count_kind(&inter, "CPD") > count_kind(&intra, "CPD"));
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let srcs = models::all();
        let seq = extract_scenario(&srcs, ExtractOptions::default()).unwrap();
        let par = extract_scenario_parallel(&srcs, ExtractOptions::default()).unwrap();
        let mut a: Vec<String> = seq.iter().map(|d| d.signature()).collect();
        let mut b: Vec<String> = par.iter().map(|d| d.signature()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn e4defrag_alone_contributes_nothing_intra() {
        let deps = extract_component(models::E4DEFRAG).unwrap();
        assert!(deps.is_empty(), "unexpected: {deps:#?}");
    }

    #[test]
    fn e2fsck_alone_contributes_nothing_intra() {
        let deps = extract_component(models::E2FSCK).unwrap();
        assert!(deps.is_empty(), "unexpected: {deps:#?}");
    }

    #[test]
    fn f2fs_scenario_extracts_all_three_levels() {
        // the second ecosystem, with the checker pipeline unchanged:
        // the same intra-procedural extractor pulls >= 25 dependencies
        // spanning SD, CPD and CCD out of the four f2fs models
        let deps = extract_scenario(&models::f2fs_all(), ExtractOptions::default()).unwrap();
        assert!(deps.len() >= 25, "only {} f2fs deps: {deps:#?}", deps.len());
        assert!(count_kind(&deps, "SD") >= 8, "SD: {}", count_kind(&deps, "SD"));
        assert!(count_kind(&deps, "CPD") >= 8, "CPD: {}", count_kind(&deps, "CPD"));
        assert!(count_kind(&deps, "CCD") >= 6, "CCD: {}", count_kind(&deps, "CCD"));
        // the f2fs Figure-1 analog: mkfs.f2fs sectors ~ resize.f2fs
        // target via fsb.f_sectors
        let fig1 = deps.iter().find(|d| {
            d.is_cross_component()
                && d.subject == ParamRef::new("mkfs_f2fs", "sectors")
                && matches!(&d.object, Some(Endpoint::Param(p)) if p.param == "target_sectors")
        });
        assert!(fig1.is_some(), "f2fs Figure-1 CCD must be extracted");
        // active_logs value set {2, 4, 6}
        let logs = deps
            .iter()
            .find(|d| d.kind == DepKind::SdValueRange && d.subject.param == "active_logs")
            .expect("active_logs set");
        assert_eq!(logs.detail.value_set, vec![2, 4, 6]);
        // the geometry CPD: segs_per_sec ~ secs_per_zone
        assert!(deps.iter().any(|d| {
            d.kind == DepKind::CpdValue
                && d.signature().contains("segs_per_sec")
                && d.signature().contains("secs_per_zone")
        }));
        // format->mount feature CCD: compression gates compress_algorithm
        assert!(deps.iter().any(|d| {
            d.is_cross_component()
                && d.subject == ParamRef::new("mkfs_f2fs", "compression")
                && matches!(&d.object, Some(Endpoint::Param(p)) if p.param == "compress_algorithm")
        }));
    }

    #[test]
    fn joint_extraction_creates_no_cross_ecosystem_bridges() {
        // feeding both ecosystems to one extraction must not invent
        // ext4<->f2fs CCDs: the metadata structs are disjoint, so every
        // bridge stays inside its ecosystem
        let mut srcs = models::all();
        srcs.extend(models::f2fs_all());
        let deps = extract_scenario(&srcs, ExtractOptions::default()).unwrap();
        let f2fs: &[&str] = &["mkfs_f2fs", "f2fs", "fsck_f2fs", "resize_f2fs"];
        for d in deps.iter().filter(|d| d.is_cross_component()) {
            if let Some(Endpoint::Param(obj)) = &d.object {
                assert_eq!(
                    f2fs.contains(&d.subject.component.as_str()),
                    f2fs.contains(&obj.component.as_str()),
                    "cross-ecosystem bridge: {}",
                    d.signature()
                );
            }
        }
        // and the joint run must not change the ext4 result
        let ext4_only = extract_scenario(&models::all(), ExtractOptions::default()).unwrap();
        let mut joint_ext4: Vec<String> = deps
            .iter()
            .filter(|d| !f2fs.contains(&d.subject.component.as_str()))
            .map(|d| d.signature())
            .collect();
        let mut expected: Vec<String> = ext4_only.iter().map(|d| d.signature()).collect();
        joint_ext4.sort();
        expected.sort();
        assert_eq!(joint_ext4, expected);
    }
}
