//! Benchmark and table-regeneration harness.
//!
//! One binary per table/figure of the paper:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `repro_table1` | Table 1 — configuration methods of 8 file systems |
//! | `repro_table2` | Table 2 — configuration coverage of test suites |
//! | `repro_table3` | Table 3 — bug distribution over usage scenarios |
//! | `repro_table4` | Table 4 — the dependency taxonomy (132 critical deps) |
//! | `repro_table5` | Table 5 — extraction results with false positives |
//! | `repro_fig1`   | Figure 1 — the sparse_super2 resize corruption |
//! | `repro_fig2`   | Figure 2 — the four configuration stages |
//! | `repro_sec43`  | §4.3 — ConDocCk (12 issues) + ConHandleCk (1 bad case) |
//! | `ablation`     | bridge / inter-procedural / ConBugCk ablations |
//!
//! Criterion performance benches live under `benches/`.
//!
//! [`synth`] generates seeded synthetic CIR programs for the analyzer
//! benchmark (`repro_analyzer`) and the engine-equivalence property
//! tests.

pub mod synth;

pub use synth::{synth_model, SplitMix64, SynthSpec};

/// Renders an ASCII table: a header row plus data rows, columns padded.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.iter().map(|s| s.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a percentage like the paper ("97.0%").
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats "count (pct%)" cells.
pub fn count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        "-".to_string()
    } else {
        format!("{} ({:.1}%)", count, 100.0 * count as f64 / total as f64)
    }
}

/// Formats "count (FP pct%)" cells for Table 5; "-" when nothing was
/// extracted.
pub fn fp_cell(extracted: usize, fp: usize) -> String {
    if extracted == 0 {
        "0 / -".to_string()
    } else if fp == 0 {
        format!("{extracted} / 0")
    } else {
        format!("{extracted} / {fp} ({:.1}%)", 100.0 * fp as f64 / extracted as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["x".into(), "y".into()], vec!["wide-cell".into(), "z".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-header"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(97.0), "97.0%");
        assert_eq!(count_pct(65, 67), "65 (97.0%)");
        assert_eq!(count_pct(0, 0), "-");
    }

    #[test]
    fn fp_cells() {
        assert_eq!(fp_cell(0, 0), "0 / -");
        assert_eq!(fp_cell(24, 0), "24 / 0");
        assert_eq!(fp_cell(32, 3), "32 / 3 (9.4%)");
    }
}
